//! Causal trace context carried in wire envelopes (DESIGN.md §17).
//!
//! A [`TraceCtx`] names one request's journey through the pipeline: a
//! 64-bit trace id derived **deterministically** from `(train, origin,
//! payload digest)` — no randomness, no wall clock — so two runs of the
//! same simulated seed produce byte-identical trace dumps, and every
//! layer (consensus, export, archive, serving) re-derives the same id
//! from the data it already holds instead of threading state around.
//!
//! On the wire the context rides in a *tagged envelope* in front of the
//! canonical message bytes: one magic byte that no legacy frame can
//! start with, then the 16-byte context, then the unchanged inner
//! encoding. Frames without the magic byte decode as before with a
//! default (untraced) context, so old recordings and mixed-version
//! clusters keep working.

use crate::{Decode, Encode, Reader, WireError, Writer};

/// First byte of a traced envelope. Legacy top-level messages
/// (`NodeMessage`, export messages) start with a small enum tag (0–2),
/// so this value is unreachable in the old format and cleanly
/// distinguishes enveloped frames from bare ones.
pub const TRACE_ENVELOPE_MAGIC: u8 = 0xC7;

/// The causal context of one in-flight message: which end-to-end trace
/// it belongs to and which span caused it to be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceCtx {
    /// Trace id ([`derive_trace_id`]); 0 means untraced.
    pub trace_id: u64,
    /// Span id of the sender-side span that caused this message; 0 when
    /// unknown.
    pub parent_span: u64,
}

impl TraceCtx {
    /// The untraced context (all zeros) — what legacy frames decode to.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: 0,
    };

    /// Whether this context actually names a trace.
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }
}

impl Encode for TraceCtx {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.trace_id);
        w.write_u64(self.parent_span);
    }
}

impl Decode for TraceCtx {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TraceCtx {
            trace_id: r.read_u64()?,
            parent_span: r.read_u64()?,
        })
    }
}

/// FNV-1a 64-bit — the simplest well-distributed deterministic hash
/// that needs no dependency and no key material. Trace ids are
/// correlation handles, not security tokens; collisions merely merge
/// two lifecycles in a dump.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Derives the trace id of one request from its stable identity:
/// the train it was recorded on, the node that read it off the bus, and
/// the digest of its payload (the same content identity consensus uses
/// for duplicate filtering). Never returns 0, so a derived id is always
/// [`TraceCtx::is_traced`].
pub fn derive_trace_id(train: u64, origin: u64, payload_digest: &[u8]) -> u64 {
    let mut hash = fnv1a(FNV_OFFSET, &train.to_le_bytes());
    hash = fnv1a(hash, &origin.to_le_bytes());
    hash = fnv1a(hash, payload_digest);
    if hash == 0 {
        1
    } else {
        hash
    }
}

/// Derives a span id from the trace, pipeline stage, and recording
/// node — a pure function, so any layer can name another layer's span
/// (e.g. a child naming its parent) without coordination. Never 0.
pub fn derive_span_id(trace_id: u64, stage: &str, node: u64) -> u64 {
    let mut hash = fnv1a(FNV_OFFSET, &trace_id.to_le_bytes());
    hash = fnv1a(hash, stage.as_bytes());
    hash = fnv1a(hash, &node.to_le_bytes());
    if hash == 0 {
        1
    } else {
        hash
    }
}

/// Wraps canonical message bytes in a traced envelope:
/// `magic ‖ TraceCtx ‖ inner`.
pub fn encode_traced(ctx: TraceCtx, inner: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.write_u8(TRACE_ENVELOPE_MAGIC);
    ctx.encode(&mut w);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(inner);
    bytes
}

/// Splits a frame into its trace context and inner message bytes.
///
/// Frames starting with [`TRACE_ENVELOPE_MAGIC`] must carry a complete
/// context; anything else is a legacy bare frame and decodes to
/// [`TraceCtx::NONE`] with the whole input as the inner message. The
/// caller decodes the returned slice with [`crate::from_bytes`], which
/// preserves strict-prefix and trailing-garbage rejection.
///
/// # Errors
///
/// [`WireError::UnexpectedEof`] if the magic byte is present but the
/// context is truncated.
pub fn decode_traced(bytes: &[u8]) -> Result<(TraceCtx, &[u8]), WireError> {
    match bytes.first() {
        Some(&TRACE_ENVELOPE_MAGIC) => {
            let mut r = Reader::new(&bytes[1..]);
            let ctx = TraceCtx::decode(&mut r)?;
            let consumed = 1 + (bytes.len() - 1 - r.remaining());
            Ok((ctx, &bytes[consumed..]))
        }
        _ => Ok((TraceCtx::NONE, bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn ctx_round_trips_and_rejects_strict_prefixes() {
        let ctx = TraceCtx {
            trace_id: 0xDEAD_BEEF_0123_4567,
            parent_span: 42,
        };
        let bytes = to_bytes(&ctx);
        assert_eq!(bytes.len(), 16, "fixed-width context");
        assert_eq!(from_bytes::<TraceCtx>(&bytes).unwrap(), ctx);
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<TraceCtx>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn ctx_rejects_trailing_garbage() {
        let mut bytes = to_bytes(&TraceCtx::NONE);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<TraceCtx>(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn derivation_is_deterministic_and_sensitive_to_every_input() {
        let digest = [7u8; 32];
        let id = derive_trace_id(3, 1, &digest);
        assert_eq!(id, derive_trace_id(3, 1, &digest));
        assert_ne!(id, 0);
        assert_ne!(id, derive_trace_id(4, 1, &digest));
        assert_ne!(id, derive_trace_id(3, 2, &digest));
        assert_ne!(id, derive_trace_id(3, 1, &[8u8; 32]));
        let span = derive_span_id(id, "decide", 2);
        assert_ne!(span, 0);
        assert_ne!(span, derive_span_id(id, "decide", 3));
        assert_ne!(span, derive_span_id(id, "commit", 2));
    }

    #[test]
    fn envelope_round_trips() {
        let ctx = TraceCtx {
            trace_id: 9,
            parent_span: 4,
        };
        let inner = to_bytes(&123u64);
        let framed = encode_traced(ctx, &inner);
        assert_eq!(framed[0], TRACE_ENVELOPE_MAGIC);
        let (back, rest) = decode_traced(&framed).unwrap();
        assert_eq!(back, ctx);
        assert_eq!(from_bytes::<u64>(rest).unwrap(), 123);
    }

    #[test]
    fn bare_frames_decode_with_the_default_ctx() {
        // A legacy frame (no envelope) — e.g. a tag byte 0/1 message.
        let inner = to_bytes(&55u64);
        let (ctx, rest) = decode_traced(&inner).unwrap();
        assert_eq!(ctx, TraceCtx::NONE);
        assert_eq!(rest, &inner[..]);
        // Even the empty frame: envelope detection never consumes it.
        let (ctx, rest) = decode_traced(&[]).unwrap();
        assert_eq!(ctx, TraceCtx::NONE);
        assert!(rest.is_empty());
    }

    #[test]
    fn truncated_envelope_ctx_is_rejected() {
        let framed = encode_traced(TraceCtx::NONE, &to_bytes(&1u8));
        for cut in 1..17 {
            assert!(
                matches!(
                    decode_traced(&framed[..cut]),
                    Err(WireError::UnexpectedEof { .. })
                ),
                "envelope cut at {cut} must reject"
            );
        }
    }
}
