//! Fleet identity: the [`TrainId`] newtype.
//!
//! The paper records a single train, but a deployment archives a fleet:
//! every vehicle runs its own chain and PBFT group, and the shared data
//! center must keep their juridical records strictly apart. `TrainId`
//! is the identity dimension threaded through every layer — export
//! messages, certified segments, archive shards, telemetry labels. It
//! lives in `zugchain-wire` because this is the lowest crate every other
//! layer already depends on.
//!
//! `TrainId(0)` ([`TrainId::DEFAULT`]) is the single-train identity all
//! pre-fleet code paths keep using; it encodes, verifies and shards
//! exactly like any other id, so single-train behaviour is just the
//! one-shard special case.

use std::fmt;

use crate::{Decode, Encode, Reader, WireError, Writer};

/// Identity of one train (one chain + PBFT group) within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TrainId(pub u64);

impl TrainId {
    /// The implicit identity of pre-fleet, single-train deployments.
    pub const DEFAULT: TrainId = TrainId(0);

    /// Canonical 8-byte little-endian form, used wherever the id is
    /// bound into a digest (e.g. archive Merkle leaves).
    #[must_use]
    pub fn to_le_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Parses the decimal form produced by [`fmt::Display`].
    ///
    /// # Errors
    ///
    /// Returns `None` for anything but a plain decimal `u64`.
    #[must_use]
    pub fn parse(s: &str) -> Option<TrainId> {
        s.trim().parse::<u64>().ok().map(TrainId)
    }
}

impl fmt::Display for TrainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Encode for TrainId {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.0);
    }
}

impl Decode for TrainId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TrainId(r.read_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn round_trip_and_fixed_width() {
        let id = TrainId(0x0102_0304_0506_0708);
        let bytes = to_bytes(&id);
        assert_eq!(bytes.len(), 8, "TrainId is fixed-width");
        assert_eq!(from_bytes::<TrainId>(&bytes).unwrap(), id);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(TrainId::default(), TrainId::DEFAULT);
        assert_eq!(TrainId::DEFAULT.0, 0);
    }

    #[test]
    fn display_parse_round_trip() {
        let id = TrainId(417);
        assert_eq!(TrainId::parse(&id.to_string()), Some(id));
        assert_eq!(TrainId::parse("  99 "), Some(TrainId(99)));
        assert_eq!(TrainId::parse("ICE-417"), None);
        assert_eq!(TrainId::parse(""), None);
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&TrainId(7));
        for len in 0..bytes.len() {
            assert!(from_bytes::<TrainId>(&bytes[..len]).is_err());
        }
    }
}
