use std::fmt;

/// Errors produced while decoding the ZugChain wire format.
///
/// Encoding is infallible; only decoding of untrusted bytes can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes were still available.
        available: usize,
    },
    /// A varint used more bytes than permitted for its target width.
    VarintOverflow,
    /// A varint was not minimally encoded (canonical form violation).
    NonCanonicalVarint,
    /// A length prefix exceeded the configured decode limit.
    LengthLimitExceeded {
        /// The declared length.
        declared: u64,
        /// The maximum permitted length.
        limit: u64,
    },
    /// A presence byte for `Option<T>` was neither 0 nor 1.
    InvalidOptionTag(u8),
    /// An enum discriminant did not match any known variant.
    InvalidDiscriminant {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The offending discriminant value.
        value: u64,
    },
    /// A byte string declared as UTF-8 was not valid UTF-8.
    InvalidUtf8,
    /// The value decoded correctly but bytes remained in the input.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A fixed-size field (digest, key, signature) had the wrong length.
    InvalidLength {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        actual: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, available } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {available} available"
            ),
            WireError::VarintOverflow => write!(f, "varint overflows target integer width"),
            WireError::NonCanonicalVarint => write!(f, "varint is not minimally encoded"),
            WireError::LengthLimitExceeded { declared, limit } => {
                write!(f, "declared length {declared} exceeds decode limit {limit}")
            }
            WireError::InvalidOptionTag(tag) => {
                write!(f, "invalid option presence byte {tag}, expected 0 or 1")
            }
            WireError::InvalidDiscriminant { type_name, value } => {
                write!(f, "invalid discriminant {value} for {type_name}")
            }
            WireError::InvalidUtf8 => write!(f, "byte string is not valid utf-8"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            WireError::InvalidLength { expected, actual } => {
                write!(f, "invalid field length: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for WireError {}
