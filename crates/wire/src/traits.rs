use crate::{Reader, WireError, Writer};

/// Types that serialize canonically to the ZugChain wire format.
///
/// Implementations must be deterministic: the same value always produces
/// the same bytes. This invariant is load-bearing — block hashes and
/// message signatures are computed over encoded bytes.
pub trait Encode {
    /// Appends this value's canonical encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Size in bytes of the canonical encoding.
    ///
    /// The default implementation encodes into a scratch buffer; override
    /// for hot paths if needed.
    fn encoded_len(&self) -> usize {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.len()
    }
}

/// Types that deserialize from the ZugChain wire format.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from malformed or truncated input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.write_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_u8()
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut Writer) {
        w.write_u16(*self);
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_u16()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.write_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_u64()
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.write_i64(*self);
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_i64()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.write_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_f64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.write_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::InvalidDiscriminant {
                type_name: "bool",
                value: u64::from(other),
            }),
        }
    }
}

impl Encode for [u8] {
    fn encode(&self, w: &mut Writer) {
        w.write_bytes(self);
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.write_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.read_bytes()?.to_vec())
    }
}

impl Encode for str {
    fn encode(&self, w: &mut Writer) {
        w.write_bytes(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.write_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.read_bytes()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.write_u8(0),
            Some(value) => {
                w.write_u8(1);
                value.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidOptionTag(tag)),
        }
    }
}

// Sequences of non-byte elements. `Vec<u8>` has a dedicated, denser impl
// above; Rust's coherence rules allow both because this impl is bounded by
// a local trait the byte impls don't go through.
macro_rules! impl_seq {
    ($ty:ty) => {
        impl Encode for Vec<$ty> {
            fn encode(&self, w: &mut Writer) {
                w.write_varint(self.len() as u64);
                for item in self {
                    item.encode(w);
                }
            }
        }

        impl Decode for Vec<$ty> {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let len = r.read_varint()?;
                if len > crate::reader::MAX_FIELD_LEN {
                    return Err(WireError::LengthLimitExceeded {
                        declared: len,
                        limit: crate::reader::MAX_FIELD_LEN,
                    });
                }
                let mut items = Vec::with_capacity((len as usize).min(1024));
                for _ in 0..len {
                    items.push(<$ty>::decode(r)?);
                }
                Ok(items)
            }
        }
    };
}

impl_seq!(u64);

/// Encodes a sequence of encodable items with a varint count prefix.
///
/// Used by higher-level crates for `Vec<T>` fields of domain types, since a
/// blanket `impl Encode for Vec<T>` would conflict with the dense `Vec<u8>`
/// impl.
pub fn encode_seq<T: Encode>(items: &[T], w: &mut Writer) {
    w.write_varint(items.len() as u64);
    for item in items {
        item.encode(w);
    }
}

/// Decodes a sequence written by [`encode_seq`].
///
/// # Errors
///
/// Length-limit and element decode errors.
pub fn decode_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>, WireError> {
    let len = r.read_varint()?;
    if len > crate::reader::MAX_FIELD_LEN {
        return Err(WireError::LengthLimitExceeded {
            declared: len,
            limit: crate::reader::MAX_FIELD_LEN,
        });
    }
    let mut items = Vec::with_capacity((len as usize).min(1024));
    for _ in 0..len {
        items.push(T::decode(r)?);
    }
    Ok(items)
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, w: &mut Writer) {
        w.write_raw(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.read_raw(N)?;
        Ok(bytes.try_into().expect("read_raw returns exactly N bytes"))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn option_round_trip() {
        assert_eq!(
            from_bytes::<Option<u64>>(&to_bytes(&Some(9u64))).unwrap(),
            Some(9)
        );
        assert_eq!(
            from_bytes::<Option<u64>>(&to_bytes(&None::<u64>)).unwrap(),
            None
        );
    }

    #[test]
    fn option_rejects_bad_tag() {
        assert_eq!(
            from_bytes::<Option<u64>>(&[2]),
            Err(WireError::InvalidOptionTag(2))
        );
    }

    #[test]
    fn bool_rejects_bad_discriminant() {
        assert!(matches!(
            from_bytes::<bool>(&[7]),
            Err(WireError::InvalidDiscriminant { .. })
        ));
    }

    #[test]
    fn string_round_trip_and_utf8_rejection() {
        let s = "Notbremse aktiviert".to_string();
        assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
        // Length 1, invalid UTF-8 byte.
        assert_eq!(
            from_bytes::<String>(&[1, 0xff]),
            Err(WireError::InvalidUtf8)
        );
    }

    #[test]
    fn fixed_array_round_trip() {
        let a = [7u8; 32];
        assert_eq!(from_bytes::<[u8; 32]>(&to_bytes(&a)).unwrap(), a);
        assert_eq!(to_bytes(&a).len(), 32, "fixed arrays have no length prefix");
    }

    #[test]
    fn seq_helpers_round_trip() {
        let items = vec!["a".to_string(), "bb".to_string()];
        let mut w = crate::Writer::new();
        encode_seq(&items, &mut w);
        let bytes = w.into_bytes();
        let mut r = crate::Reader::new(&bytes);
        let back: Vec<String> = decode_seq(&mut r).unwrap();
        assert_eq!(back, items);
    }
}
