use crate::WireError;

/// Maximum length a single length-prefixed field may declare.
///
/// Bounds allocation when decoding untrusted bytes (e.g. consensus messages
/// from a Byzantine replica). 16 MiB is far above any legitimate ZugChain
/// message: MVB payloads are ≤8 kB and blocks bundle tens of requests.
pub const MAX_FIELD_LEN: u64 = 16 * 1024 * 1024;

/// A cursor over a byte slice for decoding the ZugChain wire format.
///
/// # Examples
///
/// ```
/// use zugchain_wire::Reader;
///
/// # fn main() -> Result<(), zugchain_wire::WireError> {
/// let mut r = Reader::new(&[3, b'a', b'b', b'c']);
/// assert_eq!(r.read_bytes()?, b"abc");
/// assert!(r.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` if all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if the input is exhausted.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than 2 bytes remain.
    pub fn read_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn read_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn read_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian IEEE-754 `f64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn read_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a canonical LEB128 varint.
    ///
    /// # Errors
    ///
    /// * [`WireError::UnexpectedEof`] if the input ends mid-varint.
    /// * [`WireError::VarintOverflow`] if more than 10 groups are used.
    /// * [`WireError::NonCanonicalVarint`] if the encoding is not minimal.
    pub fn read_varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                // Reject e.g. `0x80 0x00` for 0: a non-final zero group.
                if byte == 0 && shift != 0 {
                    return Err(WireError::NonCanonicalVarint);
                }
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads a varint-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Varint errors, [`WireError::LengthLimitExceeded`] if the declared
    /// length exceeds [`MAX_FIELD_LEN`], or [`WireError::UnexpectedEof`].
    pub fn read_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.read_varint()?;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthLimitExceeded {
                declared: len,
                limit: MAX_FIELD_LEN,
            });
        }
        self.take(len as usize)
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn read_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Writer;

    #[test]
    fn varint_round_trip_boundaries() {
        for value in [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.write_varint(value);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.read_varint().unwrap(), value);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_rejects_non_minimal_encoding() {
        // 0 encoded with a redundant continuation group.
        let mut r = Reader::new(&[0x80, 0x00]);
        assert_eq!(r.read_varint(), Err(WireError::NonCanonicalVarint));
    }

    #[test]
    fn varint_rejects_overflow() {
        // 11 continuation bytes.
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_varint(), Err(WireError::VarintOverflow));
        // 10 bytes but top bits exceed u64.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn eof_is_reported_with_counts() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.read_u32().unwrap_err();
        assert_eq!(
            err,
            WireError::UnexpectedEof {
                needed: 4,
                available: 2
            }
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.write_varint(MAX_FIELD_LEN + 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.read_bytes(),
            Err(WireError::LengthLimitExceeded { .. })
        ));
    }
}
