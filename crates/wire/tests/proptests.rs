//! Property-based tests for the canonical wire format.

use proptest::prelude::*;
use zugchain_wire::{from_bytes, to_bytes, Reader, Writer};

proptest! {
    #[test]
    fn varint_round_trips(value: u64) {
        let mut w = Writer::new();
        w.write_varint(value);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.read_varint().unwrap(), value);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn varint_encoding_is_minimal(value: u64) {
        let mut w = Writer::new();
        w.write_varint(value);
        let expected_len = if value == 0 { 1 } else { (64 - value.leading_zeros() as usize).div_ceil(7) };
        prop_assert_eq!(w.len(), expected_len);
    }

    #[test]
    fn integers_round_trip(a: u8, b: u16, c: u32, d: u64, e: i64) {
        prop_assert_eq!(from_bytes::<u8>(&to_bytes(&a)).unwrap(), a);
        prop_assert_eq!(from_bytes::<u16>(&to_bytes(&b)).unwrap(), b);
        prop_assert_eq!(from_bytes::<u32>(&to_bytes(&c)).unwrap(), c);
        prop_assert_eq!(from_bytes::<u64>(&to_bytes(&d)).unwrap(), d);
        prop_assert_eq!(from_bytes::<i64>(&to_bytes(&e)).unwrap(), e);
    }

    #[test]
    fn f64_round_trips_bit_exact(bits: u64) {
        let value = f64::from_bits(bits);
        let back = from_bytes::<f64>(&to_bytes(&value)).unwrap();
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn byte_strings_round_trip(data: Vec<u8>) {
        prop_assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&data)).unwrap(), data);
    }

    #[test]
    fn strings_round_trip(s: String) {
        prop_assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
    }

    #[test]
    fn encoding_is_deterministic(data: Vec<u8>, n: u64) {
        let first = to_bytes(&(n, data.clone()));
        let second = to_bytes(&(n, data));
        prop_assert_eq!(first, second);
    }

    /// Decoding arbitrary garbage must never panic — it is fed to replicas
    /// by potentially Byzantine peers.
    #[test]
    fn decoding_garbage_never_panics(bytes: Vec<u8>) {
        let _ = from_bytes::<u64>(&bytes);
        let _ = from_bytes::<String>(&bytes);
        let _ = from_bytes::<Vec<u8>>(&bytes);
        let _ = from_bytes::<Option<(u64, Vec<u8>)>>(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = r.read_varint();
    }

    #[test]
    fn tuples_preserve_field_order(a: u64, s: String) {
        let bytes = to_bytes(&(a, s.clone()));
        let (back_a, back_s): (u64, String) = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back_a, a);
        prop_assert_eq!(back_s, s);
    }
}
