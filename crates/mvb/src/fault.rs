use rand::{RngExt as _, SeedableRng as _};

use crate::Telegram;

/// Per-tap bus fault rates.
///
/// All probabilities are in `[0, 1]` and applied independently per
/// telegram. These model the unreliable reception §III-B describes: a
/// replica may miss signals in a cycle, receive them late (during a
/// different cycle), or see corrupted bits — so nodes can observe
/// *diverging* input for the same cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapFaults {
    /// Probability that a telegram is not received by this tap at all.
    pub drop_probability: f64,
    /// Probability that a telegram is delayed into the next cycle's
    /// observation instead of the current one.
    pub delay_probability: f64,
    /// Probability that one bit of the payload is flipped on reception.
    pub bit_flip_probability: f64,
    /// Probability that a telegram is received twice (link-layer
    /// retransmission after a lost acknowledgement): once in the current
    /// cycle and once more in the next cycle's observation.
    pub duplicate_probability: f64,
    /// Probability that a received telegram is displaced within its
    /// cycle's observation (device polling order jitter), so consumers
    /// cannot rely on in-cycle arrival order.
    pub reorder_probability: f64,
}

impl TapFaults {
    /// A perfectly reliable tap.
    pub const NONE: TapFaults = TapFaults {
        drop_probability: 0.0,
        delay_probability: 0.0,
        bit_flip_probability: 0.0,
        duplicate_probability: 0.0,
        reorder_probability: 0.0,
    };

    /// Typical background fault rates for a healthy MVB: errors occur but
    /// are rare (bit flips "still occur despite its robust design",
    /// paper §II-A).
    pub const BACKGROUND: TapFaults = TapFaults {
        drop_probability: 0.001,
        delay_probability: 0.002,
        bit_flip_probability: 0.0005,
        duplicate_probability: 0.001,
        reorder_probability: 0.002,
    };

    /// Returns `true` if all rates are zero.
    pub fn is_none(&self) -> bool {
        self.drop_probability == 0.0
            && self.delay_probability == 0.0
            && self.bit_flip_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.reorder_probability == 0.0
    }
}

impl Default for TapFaults {
    fn default() -> Self {
        TapFaults::NONE
    }
}

/// The fault plan of the whole bus: one [`TapFaults`] entry per tap plus a
/// seeded RNG, so fault sequences are reproducible.
#[derive(Debug)]
pub struct BusFaultPlan {
    taps: Vec<TapFaults>,
    rng: rand::rngs::StdRng,
    /// Telegrams delayed at each tap, delivered with the next cycle.
    delayed: Vec<Vec<Telegram>>,
}

impl BusFaultPlan {
    /// Creates a plan with `n_taps` fault-free taps.
    pub fn reliable(n_taps: usize, seed: u64) -> Self {
        Self::new(vec![TapFaults::NONE; n_taps], seed)
    }

    /// Creates a plan from explicit per-tap fault rates.
    pub fn new(taps: Vec<TapFaults>, seed: u64) -> Self {
        let delayed = taps.iter().map(|_| Vec::new()).collect();
        Self {
            taps,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            delayed,
        }
    }

    /// Number of taps covered by the plan.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// Sets the fault rates for one tap.
    ///
    /// # Panics
    ///
    /// Panics if `tap` is out of range.
    pub fn set_tap(&mut self, tap: usize, faults: TapFaults) {
        self.taps[tap] = faults;
    }

    /// Applies this tap's faults to the telegrams broadcast in one cycle,
    /// returning what the tap actually observes: possibly a subset, with
    /// delayed telegrams from earlier cycles prepended and bit flips
    /// applied.
    ///
    /// # Panics
    ///
    /// Panics if `tap` is out of range.
    pub fn observe(&mut self, tap: usize, telegrams: &[Telegram]) -> Vec<Telegram> {
        let faults = self.taps[tap];
        // Deliver anything that was delayed into this cycle first: this is
        // the reordering §III-B describes (signals of one bus cycle
        // received during a different one).
        let mut observed: Vec<Telegram> = std::mem::take(&mut self.delayed[tap]);
        for telegram in telegrams {
            if faults.drop_probability > 0.0 && self.rng.random_bool(faults.drop_probability) {
                continue;
            }
            let mut telegram = telegram.clone();
            if faults.bit_flip_probability > 0.0
                && !telegram.payload.is_empty()
                && self.rng.random_bool(faults.bit_flip_probability)
            {
                let byte = self.rng.random_range(0..telegram.payload.len());
                let bit = self.rng.random_range(0..8u8);
                telegram.payload[byte] ^= 1 << bit;
            }
            if faults.duplicate_probability > 0.0
                && self.rng.random_bool(faults.duplicate_probability)
            {
                self.delayed[tap].push(telegram.clone());
            }
            if faults.delay_probability > 0.0 && self.rng.random_bool(faults.delay_probability) {
                self.delayed[tap].push(telegram);
            } else {
                observed.push(telegram);
            }
        }
        if faults.reorder_probability > 0.0 && observed.len() > 1 {
            for i in 0..observed.len() {
                if self.rng.random_bool(faults.reorder_probability) {
                    let j = self.rng.random_range(0..observed.len());
                    observed.swap(i, j);
                }
            }
        }
        observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortAddress;

    fn telegrams(n: usize) -> Vec<Telegram> {
        (0..n)
            .map(|i| Telegram::new(PortAddress(i as u16), 0, 0, vec![0xAA, 0xBB]))
            .collect()
    }

    #[test]
    fn fault_free_tap_observes_everything() {
        let mut plan = BusFaultPlan::reliable(2, 1);
        let input = telegrams(5);
        assert_eq!(plan.observe(0, &input), input);
        assert_eq!(plan.observe(1, &input), input);
    }

    #[test]
    fn dropping_tap_loses_telegrams() {
        let mut plan = BusFaultPlan::new(
            vec![TapFaults {
                drop_probability: 1.0,
                ..TapFaults::NONE
            }],
            1,
        );
        assert!(plan.observe(0, &telegrams(5)).is_empty());
    }

    #[test]
    fn delayed_telegrams_arrive_next_cycle() {
        let mut plan = BusFaultPlan::new(
            vec![TapFaults {
                delay_probability: 1.0,
                ..TapFaults::NONE
            }],
            1,
        );
        let first = telegrams(3);
        assert!(plan.observe(0, &first).is_empty());
        // Next cycle: previous telegrams arrive (and this cycle's get delayed).
        let second = plan.observe(0, &telegrams(2));
        assert_eq!(second, first);
    }

    #[test]
    fn bit_flips_corrupt_payload_but_keep_length() {
        let mut plan = BusFaultPlan::new(
            vec![TapFaults {
                bit_flip_probability: 1.0,
                ..TapFaults::NONE
            }],
            1,
        );
        let input = telegrams(1);
        let observed = plan.observe(0, &input);
        assert_eq!(observed.len(), 1);
        assert_eq!(observed[0].payload.len(), input[0].payload.len());
        assert_ne!(observed[0].payload, input[0].payload);
        // Exactly one bit differs.
        let diff: u32 = observed[0]
            .payload
            .iter()
            .zip(&input[0].payload)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn taps_fail_independently() {
        let mut plan = BusFaultPlan::new(
            vec![
                TapFaults {
                    drop_probability: 1.0,
                    ..TapFaults::NONE
                },
                TapFaults::NONE,
            ],
            1,
        );
        let input = telegrams(4);
        assert!(plan.observe(0, &input).is_empty());
        assert_eq!(plan.observe(1, &input), input);
    }

    #[test]
    fn duplicated_telegrams_reappear_next_cycle() {
        let mut plan = BusFaultPlan::new(
            vec![TapFaults {
                duplicate_probability: 1.0,
                ..TapFaults::NONE
            }],
            1,
        );
        let first = telegrams(3);
        // Current cycle still sees every telegram exactly once…
        assert_eq!(plan.observe(0, &first), first);
        // …and the retransmitted copies land in the next cycle, ahead of
        // that cycle's own (also duplicated) telegrams.
        let second = plan.observe(0, &telegrams(2));
        assert_eq!(second.len(), 3 + 2);
        assert_eq!(&second[..3], &first[..]);
    }

    #[test]
    fn reordering_permutes_but_never_loses_telegrams() {
        let mut plan = BusFaultPlan::new(
            vec![TapFaults {
                reorder_probability: 1.0,
                ..TapFaults::NONE
            }],
            7,
        );
        let input = telegrams(8);
        let mut reordered_at_least_once = false;
        for _ in 0..10 {
            let observed = plan.observe(0, &input);
            assert_eq!(observed.len(), input.len());
            let mut sorted = observed.clone();
            sorted.sort_by_key(|t| t.port.0);
            assert_eq!(sorted, input, "a permutation of the input");
            reordered_at_least_once |= observed != input;
        }
        assert!(reordered_at_least_once);
    }

    #[test]
    fn fault_sequences_are_reproducible() {
        let run = |seed| {
            let mut plan = BusFaultPlan::new(
                vec![TapFaults {
                    drop_probability: 0.5,
                    ..TapFaults::NONE
                }],
                seed,
            );
            (0..20)
                .map(|_| plan.observe(0, &telegrams(10)).len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}
