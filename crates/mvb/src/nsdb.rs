use std::collections::BTreeMap;
use std::fmt;

use crate::PortAddress;

/// Data type of a configured signal, as declared in the NSDB.
///
/// Widths follow the process-data variables the JRU records per IEC 62625:
/// booleans for discrete events (brake applied, doors released), scaled
/// integers for analog values (speed, pressure), and raw byte strings for
/// opaque pre-encrypted payloads that ZugChain logs as-is (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// One discrete on/off value, encoded in 1 byte.
    Bool,
    /// Unsigned 16-bit scaled value (e.g. speed in 0.01 km/h steps).
    U16,
    /// Unsigned 32-bit scaled value (e.g. odometer in metres).
    U32,
    /// Signed 16-bit scaled value (e.g. acceleration).
    I16,
    /// Opaque bytes logged without interpretation (already encrypted at the
    /// source, per the paper).
    Opaque {
        /// Fixed payload width in bytes.
        width: u16,
    },
}

impl SignalKind {
    /// Encoded width of the signal value in bytes.
    pub fn width(&self) -> usize {
        match self {
            SignalKind::Bool => 1,
            SignalKind::U16 | SignalKind::I16 => 2,
            SignalKind::U32 => 4,
            SignalKind::Opaque { width } => *width as usize,
        }
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalKind::Bool => write!(f, "bool"),
            SignalKind::U16 => write!(f, "u16"),
            SignalKind::U32 => write!(f, "u32"),
            SignalKind::I16 => write!(f, "i16"),
            SignalKind::Opaque { width } => write!(f, "opaque[{width}]"),
        }
    }
}

/// One signal entry of the node supervisor database (NSDB).
///
/// The real NSDB is a proprietary per-device file specifying which signals
/// a component writes or reads; the paper discovers data type and cycle
/// time of signals dynamically from the bus configuration file. This
/// structure carries the fields that discovery yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDescriptor {
    /// Human-readable signal name (e.g. `"v_actual"`).
    pub name: String,
    /// Port on which the signal's source device answers polls.
    pub port: PortAddress,
    /// Value encoding.
    pub kind: SignalKind,
    /// Polling period in bus cycles (1 = every cycle).
    pub period_cycles: u32,
}

/// The bus configuration table: which ports carry which signals, at which
/// rate.
///
/// # Examples
///
/// ```
/// use zugchain_mvb::{Nsdb, SignalDescriptor, SignalKind, PortAddress};
///
/// let mut nsdb = Nsdb::new();
/// nsdb.add(SignalDescriptor {
///     name: "v_actual".into(),
///     port: PortAddress(0x100),
///     kind: SignalKind::U16,
///     period_cycles: 1,
/// });
/// assert_eq!(nsdb.lookup(PortAddress(0x100)).unwrap().name, "v_actual");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Nsdb {
    by_port: BTreeMap<PortAddress, SignalDescriptor>,
}

impl Nsdb {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a signal. Replaces any previous descriptor on the same
    /// port (the last write wins, mirroring configuration-file reload).
    pub fn add(&mut self, descriptor: SignalDescriptor) {
        self.by_port.insert(descriptor.port, descriptor);
    }

    /// Looks up the signal configured on `port`.
    pub fn lookup(&self, port: PortAddress) -> Option<&SignalDescriptor> {
        self.by_port.get(&port)
    }

    /// All ports that must be polled during cycle `cycle`, in port order.
    ///
    /// A port with `period_cycles = p` is polled when `cycle % p == 0`,
    /// mirroring the MVB basic-period schedule.
    pub fn ports_due(&self, cycle: u64) -> impl Iterator<Item = &SignalDescriptor> {
        self.by_port
            .values()
            .filter(move |d| cycle % u64::from(d.period_cycles.max(1)) == 0)
    }

    /// Number of configured signals.
    pub fn len(&self) -> usize {
        self.by_port.len()
    }

    /// Returns `true` if no signals are configured.
    pub fn is_empty(&self) -> bool {
        self.by_port.is_empty()
    }

    /// Iterates over all descriptors in port order.
    pub fn iter(&self) -> impl Iterator<Item = &SignalDescriptor> {
        self.by_port.values()
    }

    /// The default JRU signal set used throughout the evaluation: the
    /// IEC 62625 events the introduction names (speed, brake activation,
    /// door activity, ATP intervention, emergency stop, odometer).
    pub fn jru_default() -> Self {
        let mut nsdb = Nsdb::new();
        let signals = [
            ("v_actual", 0x100u16, SignalKind::U16, 1),
            ("v_target", 0x101, SignalKind::U16, 1),
            ("odometer_m", 0x102, SignalKind::U32, 1),
            ("accel_actual", 0x103, SignalKind::I16, 1),
            ("brake_pipe_pressure", 0x110, SignalKind::U16, 1),
            ("brake_applied", 0x111, SignalKind::Bool, 1),
            ("emergency_brake", 0x112, SignalKind::Bool, 1),
            ("doors_released", 0x120, SignalKind::Bool, 2),
            ("doors_closed", 0x121, SignalKind::Bool, 2),
            ("atp_intervention", 0x130, SignalKind::Bool, 1),
            ("atp_cab_signal", 0x131, SignalKind::U16, 2),
            ("driver_command", 0x140, SignalKind::U16, 1),
            ("pantograph_up", 0x150, SignalKind::Bool, 4),
            ("traction_effort", 0x151, SignalKind::I16, 2),
        ];
        for (name, port, kind, period) in signals {
            nsdb.add(SignalDescriptor {
                name: name.to_string(),
                port: PortAddress(port),
                kind,
                period_cycles: period,
            });
        }
        nsdb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jru_default_has_core_signals() {
        let nsdb = Nsdb::jru_default();
        assert!(nsdb.len() >= 10);
        let names: Vec<&str> = nsdb.iter().map(|d| d.name.as_str()).collect();
        for required in [
            "v_actual",
            "brake_applied",
            "emergency_brake",
            "doors_released",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn period_schedule_filters_ports() {
        let nsdb = Nsdb::jru_default();
        let every_cycle = nsdb.ports_due(1).count();
        let cycle_zero = nsdb.ports_due(0).count();
        // Cycle 0 polls everything; odd cycles skip period-2 and period-4 ports.
        assert!(cycle_zero > every_cycle);
        assert!(nsdb.ports_due(1).all(|d| d.period_cycles == 1));
        assert!(nsdb.ports_due(2).any(|d| d.period_cycles == 2));
    }

    #[test]
    fn add_replaces_existing_port() {
        let mut nsdb = Nsdb::new();
        let port = PortAddress(0x1);
        nsdb.add(SignalDescriptor {
            name: "a".into(),
            port,
            kind: SignalKind::Bool,
            period_cycles: 1,
        });
        nsdb.add(SignalDescriptor {
            name: "b".into(),
            port,
            kind: SignalKind::U16,
            period_cycles: 1,
        });
        assert_eq!(nsdb.len(), 1);
        assert_eq!(nsdb.lookup(port).unwrap().name, "b");
    }

    #[test]
    fn signal_widths() {
        assert_eq!(SignalKind::Bool.width(), 1);
        assert_eq!(SignalKind::U16.width(), 2);
        assert_eq!(SignalKind::I16.width(), 2);
        assert_eq!(SignalKind::U32.width(), 4);
        assert_eq!(SignalKind::Opaque { width: 64 }.width(), 64);
    }
}
