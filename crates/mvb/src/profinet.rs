//! A ProfiNet-style bus, demonstrating that ZugChain is independent of
//! the underlying bus technology (paper §II-A: "our approach is
//! independent of the underlying bus technology and can be extended to
//! any bus, e.g., ProfiNet").
//!
//! Unlike the polled MVB, ProfiNet IO combines **cyclic** provider-pushed
//! process data with **acyclic alarms**: urgent events (an emergency
//! brake, an ATP intervention) are pushed immediately instead of waiting
//! for the next poll. Both kinds surface as ordinary [`Telegram`]s, so
//! the entire ZugChain pipeline — parsing, filtering, consolidation,
//! ordering — is reused unchanged.

use crate::{BusFaultPlan, CycleOutput, Device, Nsdb, PortAddress, TapObservation, Telegram};

/// Ports that raise acyclic alarms when their value changes to "active".
///
/// Mirrors typical ProfiNet alarm configuration: discrete safety signals
/// get event semantics on top of the cyclic image.
#[derive(Debug, Clone)]
pub struct AlarmConfig {
    /// Ports whose rising edge (`0 → non-zero`) raises an alarm frame.
    pub alarm_ports: Vec<PortAddress>,
}

impl Default for AlarmConfig {
    fn default() -> Self {
        Self {
            // emergency_brake and atp_intervention in the JRU default map.
            alarm_ports: vec![PortAddress(0x112), PortAddress(0x130)],
        }
    }
}

/// A ProfiNet-IO-style bus: cyclic data exchange plus acyclic alarms,
/// observed by `n` taps through the same fault model as the MVB.
///
/// # Examples
///
/// ```
/// use zugchain_mvb::{profinet::ProfinetBus, Nsdb, SignalGenerator};
///
/// let mut bus = ProfinetBus::new(Nsdb::jru_default(), 64, 4, 1);
/// bus.attach_device(Box::new(SignalGenerator::new(3)));
/// let out = bus.run_cycle();
/// assert_eq!(out.observations.len(), 4);
/// ```
#[derive(Debug)]
pub struct ProfinetBus {
    nsdb: Nsdb,
    cycle_ms: u64,
    devices: Vec<Box<dyn Device>>,
    faults: BusFaultPlan,
    alarms: AlarmConfig,
    /// Last cyclic value per alarm port, for edge detection.
    last_values: std::collections::HashMap<PortAddress, Vec<u8>>,
    cycle: u64,
    alarms_raised: u64,
}

impl ProfinetBus {
    /// Creates a bus with `n_taps` fault-free taps.
    pub fn new(nsdb: Nsdb, cycle_ms: u64, n_taps: usize, seed: u64) -> Self {
        Self {
            nsdb,
            cycle_ms: cycle_ms.max(1), // ProfiNet RT supports ≥1 ms cycles
            devices: Vec::new(),
            faults: BusFaultPlan::reliable(n_taps, seed),
            alarms: AlarmConfig::default(),
            last_values: std::collections::HashMap::new(),
            cycle: 0,
            alarms_raised: 0,
        }
    }

    /// Overrides the alarm configuration.
    pub fn set_alarms(&mut self, alarms: AlarmConfig) {
        self.alarms = alarms;
    }

    /// Replaces the fault plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan's tap count differs.
    pub fn set_fault_plan(&mut self, plan: BusFaultPlan) {
        assert_eq!(plan.tap_count(), self.faults.tap_count());
        self.faults = plan;
    }

    /// Attaches a provider device.
    pub fn attach_device(&mut self, device: Box<dyn Device>) {
        self.devices.push(device);
    }

    /// The configured cycle time in milliseconds.
    pub fn cycle_ms(&self) -> u64 {
        self.cycle_ms
    }

    /// Acyclic alarm frames raised so far.
    pub fn alarms_raised(&self) -> u64 {
        self.alarms_raised
    }

    /// Executes one IO cycle: providers push their cyclic data; rising
    /// edges on alarm ports additionally raise an acyclic alarm frame in
    /// the *same* cycle (event semantics — no wait for the next poll of a
    /// slower-period port).
    pub fn run_cycle(&mut self) -> CycleOutput {
        let cycle = self.cycle;
        let time_ms = cycle * self.cycle_ms;
        self.cycle += 1;

        let mut on_wire = Vec::new();
        // Cyclic provider data: unlike the MVB there is no master poll —
        // every provider pushes every configured port each cycle (the
        // reduction ratio is modelled by the NSDB period, as on real
        // ProfiNet).
        for descriptor in self.nsdb.ports_due(cycle) {
            for device in &mut self.devices {
                if let Some(payload) = device.poll(descriptor.port, cycle, time_ms) {
                    on_wire.push(Telegram::new(descriptor.port, cycle, time_ms, payload));
                    break;
                }
            }
        }

        // Acyclic alarms: rising edge on an alarm port pushes an extra
        // frame immediately, even if the port's cyclic period would have
        // skipped this cycle.
        for port in self.alarms.alarm_ports.clone() {
            let current = self
                .devices
                .iter_mut()
                .find_map(|device| device.poll(port, cycle, time_ms));
            let Some(current) = current else { continue };
            let was_active = self
                .last_values
                .get(&port)
                .is_some_and(|v| v.iter().any(|b| *b != 0));
            let is_active = current.iter().any(|b| *b != 0);
            if is_active && !was_active {
                self.alarms_raised += 1;
                // Alarm frames appear on the wire even when the cyclic
                // image already carried the port this cycle: urgency
                // beats deduplication at the bus level (ZugChain's
                // content filter handles the rest).
                if !on_wire.iter().any(|t| t.port == port) {
                    on_wire.push(Telegram::new(port, cycle, time_ms, current.clone()));
                }
            }
            self.last_values.insert(port, current);
        }

        let observations = (0..self.faults.tap_count())
            .map(|tap| TapObservation {
                tap,
                telegrams: self.faults.observe(tap, &on_wire),
            })
            .collect();

        CycleOutput {
            cycle,
            time_ms,
            on_wire,
            observations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SignalDescriptor, SignalGenerator, SignalKind};

    /// A device that raises the emergency flag from a given cycle on.
    #[derive(Debug)]
    struct EmergencyAt {
        cycle: u64,
    }

    impl Device for EmergencyAt {
        fn poll(&mut self, port: PortAddress, cycle: u64, _time_ms: u64) -> Option<Vec<u8>> {
            (port == PortAddress(0x112)).then(|| vec![u8::from(cycle >= self.cycle)])
        }

        fn ports(&self) -> Vec<PortAddress> {
            vec![PortAddress(0x112)]
        }
    }

    fn emergency_only_nsdb(period: u32) -> Nsdb {
        let mut nsdb = Nsdb::new();
        nsdb.add(SignalDescriptor {
            name: "emergency_brake".into(),
            port: PortAddress(0x112),
            kind: SignalKind::Bool,
            period_cycles: period,
        });
        nsdb
    }

    #[test]
    fn cyclic_data_flows_like_mvb() {
        let mut bus = ProfinetBus::new(Nsdb::jru_default(), 16, 4, 1);
        bus.attach_device(Box::new(SignalGenerator::new(5)));
        let out = bus.run_cycle();
        assert!(!out.on_wire.is_empty());
        for obs in &out.observations {
            assert_eq!(obs.telegrams, out.on_wire, "fault-free taps agree");
        }
    }

    #[test]
    fn rising_edge_raises_exactly_one_alarm() {
        // The port is cyclic with period 8, but the alarm must fire in
        // the cycle of the edge (cycle 3), not at the next cyclic slot.
        let mut bus = ProfinetBus::new(emergency_only_nsdb(8), 16, 1, 1);
        bus.attach_device(Box::new(EmergencyAt { cycle: 3 }));

        let mut alarm_cycle = None;
        for _ in 0..8 {
            let out = bus.run_cycle();
            if out
                .on_wire
                .iter()
                .any(|t| t.port == PortAddress(0x112) && t.payload == [1])
                && alarm_cycle.is_none()
            {
                alarm_cycle = Some(out.cycle);
            }
        }
        assert_eq!(alarm_cycle, Some(3), "alarm in the edge cycle");
        assert_eq!(bus.alarms_raised(), 1, "level-high does not re-alarm");
    }

    #[test]
    fn alarm_does_not_duplicate_cyclic_frame() {
        // Period 1: the cyclic image already carries the port; the alarm
        // must not put a second frame for the same port on the wire.
        let mut bus = ProfinetBus::new(emergency_only_nsdb(1), 16, 1, 1);
        bus.attach_device(Box::new(EmergencyAt { cycle: 2 }));
        for _ in 0..4 {
            let out = bus.run_cycle();
            let frames = out
                .on_wire
                .iter()
                .filter(|t| t.port == PortAddress(0x112))
                .count();
            assert_eq!(frames, 1, "cycle {}", out.cycle);
        }
        assert_eq!(bus.alarms_raised(), 1);
    }

    #[test]
    fn faults_apply_to_profinet_taps_too() {
        use crate::TapFaults;
        let mut bus = ProfinetBus::new(Nsdb::jru_default(), 16, 2, 3);
        bus.attach_device(Box::new(SignalGenerator::new(5)));
        let mut plan = BusFaultPlan::reliable(2, 3);
        plan.set_tap(
            1,
            TapFaults {
                drop_probability: 1.0,
                ..TapFaults::NONE
            },
        );
        bus.set_fault_plan(plan);
        let out = bus.run_cycle();
        assert!(!out.observations[0].telegrams.is_empty());
        assert!(out.observations[1].telegrams.is_empty());
    }

    #[test]
    fn supports_fast_cycles() {
        let bus = ProfinetBus::new(Nsdb::jru_default(), 1, 1, 0);
        assert_eq!(bus.cycle_ms(), 1, "ProfiNet RT reaches 1 ms cycles");
    }
}
