use crate::{BusFaultPlan, Device, Nsdb, Telegram, MIN_CYCLE_MS};

/// Static configuration of the simulated bus.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Cycle time in milliseconds. Clamped to [`MIN_CYCLE_MS`].
    pub cycle_ms: u64,
    /// Signal configuration (ports, widths, polling periods).
    pub nsdb: Nsdb,
}

impl BusConfig {
    /// The default JRU configuration at the given cycle time.
    ///
    /// Cycle times below the MVB minimum of 32 ms are clamped.
    pub fn jru_default(cycle_ms: u64) -> Self {
        Self {
            cycle_ms: cycle_ms.max(MIN_CYCLE_MS),
            nsdb: Nsdb::jru_default(),
        }
    }

    /// A configuration with a custom NSDB.
    pub fn with_nsdb(cycle_ms: u64, nsdb: Nsdb) -> Self {
        Self {
            cycle_ms: cycle_ms.max(MIN_CYCLE_MS),
            nsdb,
        }
    }
}

/// What one tap (ZugChain node) observed during a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapObservation {
    /// Index of the observing tap.
    pub tap: usize,
    /// Telegrams received, after fault injection.
    pub telegrams: Vec<Telegram>,
}

/// The result of running one bus cycle.
#[derive(Debug, Clone)]
pub struct CycleOutput {
    /// Cycle index that was executed.
    pub cycle: u64,
    /// Bus time at the start of the cycle, in milliseconds.
    pub time_ms: u64,
    /// Ground truth: every telegram actually transmitted on the wire.
    pub on_wire: Vec<Telegram>,
    /// Per-tap observations after fault injection, indexed by tap.
    pub observations: Vec<TapObservation>,
}

/// The simulated MVB: a bus master polling devices on a time-triggered
/// schedule, observed by `n` taps with per-tap fault injection.
///
/// # Examples
///
/// ```
/// use zugchain_mvb::{Bus, BusConfig, PayloadDevice, PortAddress, Nsdb, SignalDescriptor, SignalKind};
///
/// let mut nsdb = Nsdb::new();
/// nsdb.add(SignalDescriptor {
///     name: "payload".into(),
///     port: PortAddress(0x200),
///     kind: SignalKind::Opaque { width: 128 },
///     period_cycles: 1,
/// });
/// let mut bus = Bus::new(BusConfig::with_nsdb(64, nsdb), 4, 1);
/// bus.attach_device(Box::new(PayloadDevice::new(PortAddress(0x200), 128, 2)));
///
/// let out = bus.run_cycle();
/// assert_eq!(out.on_wire.len(), 1);
/// assert_eq!(out.on_wire[0].payload.len(), 128);
/// ```
#[derive(Debug)]
pub struct Bus {
    config: BusConfig,
    devices: Vec<Box<dyn Device>>,
    faults: BusFaultPlan,
    cycle: u64,
}

impl Bus {
    /// Creates a bus with `n_taps` fault-free taps.
    pub fn new(config: BusConfig, n_taps: usize, seed: u64) -> Self {
        Self {
            config,
            devices: Vec::new(),
            faults: BusFaultPlan::reliable(n_taps, seed),
            cycle: 0,
        }
    }

    /// Replaces the fault plan (must cover the same number of taps).
    ///
    /// # Panics
    ///
    /// Panics if the plan's tap count differs from the bus's.
    pub fn set_fault_plan(&mut self, plan: BusFaultPlan) {
        assert_eq!(
            plan.tap_count(),
            self.faults.tap_count(),
            "fault plan must cover every tap"
        );
        self.faults = plan;
    }

    /// Attaches a follower device to the bus.
    pub fn attach_device(&mut self, device: Box<dyn Device>) {
        self.devices.push(device);
    }

    /// The configured cycle time in milliseconds.
    pub fn cycle_ms(&self) -> u64 {
        self.config.cycle_ms
    }

    /// The next cycle index that [`run_cycle`](Self::run_cycle) will execute.
    pub fn next_cycle(&self) -> u64 {
        self.cycle
    }

    /// Current bus time in milliseconds (start of the next cycle).
    pub fn time_ms(&self) -> u64 {
        self.cycle * self.config.cycle_ms
    }

    /// Executes one bus cycle: the master polls every port due this cycle,
    /// devices answer, and each tap observes the resulting telegrams
    /// through its fault filter.
    pub fn run_cycle(&mut self) -> CycleOutput {
        let cycle = self.cycle;
        let time_ms = self.time_ms();
        self.cycle += 1;

        let mut on_wire = Vec::new();
        for descriptor in self.config.nsdb.ports_due(cycle) {
            // First device that serves the port answers; a real MVB has
            // exactly one source per port.
            for device in &mut self.devices {
                if let Some(payload) = device.poll(descriptor.port, cycle, time_ms) {
                    on_wire.push(Telegram::new(descriptor.port, cycle, time_ms, payload));
                    break;
                }
            }
        }

        let observations = (0..self.faults.tap_count())
            .map(|tap| TapObservation {
                tap,
                telegrams: self.faults.observe(tap, &on_wire),
            })
            .collect();

        CycleOutput {
            cycle,
            time_ms,
            on_wire,
            observations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        PayloadDevice, PortAddress, SignalDescriptor, SignalGenerator, SignalKind, TapFaults,
    };

    #[test]
    fn cycle_time_is_clamped_to_mvb_minimum() {
        let bus = Bus::new(BusConfig::jru_default(8), 1, 0);
        assert_eq!(bus.cycle_ms(), MIN_CYCLE_MS);
    }

    #[test]
    fn master_polls_only_due_ports() {
        let mut bus = Bus::new(BusConfig::jru_default(64), 1, 0);
        bus.attach_device(Box::new(SignalGenerator::new(1)));
        let cycle0 = bus.run_cycle();
        let cycle1 = bus.run_cycle();
        // Cycle 0 polls all ports including period-2/period-4 ones.
        assert!(cycle0.on_wire.len() > cycle1.on_wire.len());
    }

    #[test]
    fn all_taps_see_identical_data_without_faults() {
        let mut bus = Bus::new(BusConfig::jru_default(64), 4, 0);
        bus.attach_device(Box::new(SignalGenerator::new(1)));
        let out = bus.run_cycle();
        for observation in &out.observations {
            assert_eq!(observation.telegrams, out.on_wire);
        }
    }

    #[test]
    fn faulty_tap_diverges_from_ground_truth() {
        let mut bus = Bus::new(BusConfig::jru_default(64), 2, 3);
        bus.attach_device(Box::new(SignalGenerator::new(1)));
        let mut plan = BusFaultPlan::reliable(2, 3);
        plan.set_tap(
            1,
            TapFaults {
                drop_probability: 1.0,
                ..TapFaults::NONE
            },
        );
        bus.set_fault_plan(plan);
        let out = bus.run_cycle();
        assert_eq!(out.observations[0].telegrams, out.on_wire);
        assert!(out.observations[1].telegrams.is_empty());
    }

    #[test]
    fn unserved_ports_produce_no_telegrams() {
        // NSDB configures a port, but no device answers it.
        let mut nsdb = Nsdb::new();
        nsdb.add(SignalDescriptor {
            name: "ghost".into(),
            port: PortAddress(0x999),
            kind: SignalKind::Bool,
            period_cycles: 1,
        });
        let mut bus = Bus::new(BusConfig::with_nsdb(64, nsdb), 1, 0);
        let out = bus.run_cycle();
        assert!(out.on_wire.is_empty());
    }

    #[test]
    fn time_advances_by_cycle_length() {
        let mut bus = Bus::new(BusConfig::jru_default(128), 1, 0);
        bus.attach_device(Box::new(PayloadDevice::new(PortAddress(0x100), 8, 0)));
        assert_eq!(bus.run_cycle().time_ms, 0);
        assert_eq!(bus.run_cycle().time_ms, 128);
        assert_eq!(bus.run_cycle().time_ms, 256);
        assert_eq!(bus.next_cycle(), 3);
    }
}
