//! Simulated Multifunction Vehicle Bus (MVB) for ZugChain.
//!
//! The paper's testbed reads train signals from a real MVB (IEC 61375-3-1)
//! through a proprietary Siemens library, with a SIBAS-KLIP bus master and a
//! DDC signal generator producing ATP data. None of that hardware is
//! available here, so this crate builds the closest synthetic equivalent
//! (`DESIGN.md` §3) — which matches the paper's own methodology for its
//! parameter sweeps: *"We instead simulate receiving messages over the
//! bus."*
//!
//! The simulation reproduces the properties the ZugChain design actually
//! depends on (paper §II-A, §III-B):
//!
//! * **Time-triggered master/follower schedule.** A bus master polls
//!   configured ports each cycle (minimum cycle 32 ms, common value 64 ms).
//! * **Shared, unauthenticated medium.** Every attached tap (ZugChain node)
//!   observes the same telegrams; data sources are indistinguishable.
//! * **Unreliability.** Telegrams can be dropped per-tap, delayed into a
//!   later cycle, or corrupted by bit flips — so nodes can receive
//!   *diverging* input for the same cycle.
//! * **Configuration by NSDB.** Which signals exist, their ports, widths and
//!   cycle times come from a node supervisor database-like table.
//!
//! # Examples
//!
//! ```
//! use zugchain_mvb::{Bus, BusConfig, SignalGenerator};
//!
//! let config = BusConfig::jru_default(64);
//! let mut bus = Bus::new(config, 4, 1);
//! bus.attach_device(Box::new(SignalGenerator::new(7)));
//!
//! // Run one cycle: every tap observes the same telegrams (no faults here).
//! let cycle = bus.run_cycle();
//! assert_eq!(cycle.observations.len(), 4);
//! assert!(!cycle.observations[0].telegrams.is_empty());
//! ```

#![warn(missing_docs)]

mod bus;
mod device;
mod fault;
mod nsdb;
pub mod profinet;
mod telegram;

pub use bus::{Bus, BusConfig, CycleOutput, TapObservation};
pub use device::{Device, PayloadDevice, SignalGenerator};
pub use fault::{BusFaultPlan, TapFaults};
pub use nsdb::{Nsdb, SignalDescriptor, SignalKind};
pub use telegram::{PortAddress, Telegram};

/// Minimum MVB cycle time in milliseconds (paper §V-B: "32 ms, the MVB's
/// minimum").
pub const MIN_CYCLE_MS: u64 = 32;

/// The bus cycle commonly used in the paper's evaluation.
pub const COMMON_CYCLE_MS: u64 = 64;
