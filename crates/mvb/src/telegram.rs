use std::fmt;

use zugchain_wire::{Decode, Encode, Reader, WireError, Writer};

/// A logical MVB port address.
///
/// Real MVB addresses are 12-bit; the simulation keeps the full `u16` range
/// but the NSDB only configures valid ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortAddress(pub u16);

impl fmt::Display for PortAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port {:#05x}", self.0)
    }
}

impl Encode for PortAddress {
    fn encode(&self, w: &mut Writer) {
        w.write_u16(self.0);
    }
}

impl Decode for PortAddress {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PortAddress(r.read_u16()?))
    }
}

/// One process-data telegram observed on the bus.
///
/// The MVB transfers process data as small frames (up to 32 bytes payload
/// per port in the real bus); a telegram is the slave frame sent in
/// response to the master's poll of `port` during `cycle`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Telegram {
    /// Port the bus master polled.
    pub port: PortAddress,
    /// Bus cycle index in which the telegram was transmitted.
    pub cycle: u64,
    /// Bus time of transmission in milliseconds since bus start.
    pub time_ms: u64,
    /// Raw payload bytes as seen on the wire.
    pub payload: Vec<u8>,
}

impl Telegram {
    /// Maximum payload of a single real MVB process-data frame in bytes.
    pub const MAX_FRAME_PAYLOAD: usize = 32;

    /// Creates a telegram.
    pub fn new(port: PortAddress, cycle: u64, time_ms: u64, payload: Vec<u8>) -> Self {
        Self {
            port,
            cycle,
            time_ms,
            payload,
        }
    }
}

impl Encode for Telegram {
    fn encode(&self, w: &mut Writer) {
        self.port.encode(w);
        w.write_u64(self.cycle);
        w.write_u64(self.time_ms);
        w.write_bytes(&self.payload);
    }
}

impl Decode for Telegram {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Telegram {
            port: PortAddress::decode(r)?,
            cycle: r.read_u64()?,
            time_ms: r.read_u64()?,
            payload: r.read_bytes()?.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telegram_wire_round_trip() {
        let t = Telegram::new(PortAddress(0x123), 42, 2688, vec![1, 2, 3]);
        let bytes = zugchain_wire::to_bytes(&t);
        let back: Telegram = zugchain_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn port_display_is_hex() {
        assert_eq!(PortAddress(0x123).to_string(), "port 0x123");
    }
}
