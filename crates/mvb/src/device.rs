use std::fmt;

use rand::{Rng as _, RngExt as _, SeedableRng as _};

use crate::{Nsdb, PortAddress, SignalKind};

/// A device attached to the bus that answers the master's polls.
///
/// Devices are the *followers* of the MVB master/follower scheme: the
/// signal generator standing in for the ATP/DDC, brake and door
/// controllers, or a synthetic payload source for benchmarks.
pub trait Device: fmt::Debug + Send {
    /// Answers a poll of `port` during `cycle` at bus time `time_ms`.
    ///
    /// Returns `None` if this device does not serve `port`.
    fn poll(&mut self, port: PortAddress, cycle: u64, time_ms: u64) -> Option<Vec<u8>>;

    /// Ports this device serves (used to validate the bus configuration).
    fn ports(&self) -> Vec<PortAddress>;
}

/// Operating phases of the synthetic train run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrivePhase {
    Accelerating,
    Cruising,
    Braking,
    Stopped,
}

/// Deterministic generator of realistic ATP/JRU signal data.
///
/// Stands in for the paper's DDC signal generator: it produces a plausible
/// regional-service drive profile — accelerate to a target speed, cruise,
/// brake to a stop, dwell, repeat — together with correlated brake, door,
/// and ATP signals. Occasional ATP interventions and emergency brakings
/// are injected pseudo-randomly (seeded, so runs are reproducible).
///
/// # Examples
///
/// ```
/// use zugchain_mvb::{Device, SignalGenerator, PortAddress};
///
/// let mut generator = SignalGenerator::new(42);
/// let speed = generator.poll(PortAddress(0x100), 0, 0).unwrap();
/// assert_eq!(speed.len(), 2); // u16 scaled speed
/// ```
#[derive(Debug)]
pub struct SignalGenerator {
    rng: rand::rngs::StdRng,
    nsdb: Nsdb,
    phase: DrivePhase,
    phase_elapsed_ms: u64,
    last_time_ms: u64,
    /// Speed in units of 0.01 km/h.
    speed_ckmh: u32,
    target_ckmh: u32,
    odometer_m: u32,
    brake_pipe_kpa: u16,
    emergency: bool,
    atp_intervention: bool,
    doors_released: bool,
    driver_command: u16,
    /// Scripted emergency braking (drills): forced at this bus time.
    force_emergency_at: Option<u64>,
}

impl SignalGenerator {
    /// Top speed of the synthetic service in 0.01 km/h (160 km/h).
    const MAX_SPEED_CKMH: u32 = 16_000;

    /// Creates a generator with the default JRU signal set.
    pub fn new(seed: u64) -> Self {
        Self::with_nsdb(seed, Nsdb::jru_default())
    }

    /// Creates a generator that forces an emergency braking at the given
    /// bus time — for accident drills and forensics demos.
    pub fn with_emergency_at(seed: u64, emergency_at_ms: u64) -> Self {
        let mut generator = Self::new(seed);
        generator.force_emergency_at = Some(emergency_at_ms);
        generator
    }

    /// Creates a generator serving exactly the signals in `nsdb`.
    pub fn with_nsdb(seed: u64, nsdb: Nsdb) -> Self {
        Self {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            nsdb,
            phase: DrivePhase::Accelerating,
            phase_elapsed_ms: 0,
            last_time_ms: 0,
            speed_ckmh: 0,
            target_ckmh: Self::MAX_SPEED_CKMH,
            odometer_m: 0,
            brake_pipe_kpa: 500,
            emergency: false,
            atp_intervention: false,
            doors_released: true,
            driver_command: 0,
            force_emergency_at: None,
        }
    }

    fn advance(&mut self, time_ms: u64) {
        let dt = time_ms.saturating_sub(self.last_time_ms);
        if dt == 0 {
            return;
        }
        self.last_time_ms = time_ms;
        self.phase_elapsed_ms += dt;

        if let Some(at_ms) = self.force_emergency_at {
            if time_ms >= at_ms && !matches!(self.phase, DrivePhase::Stopped) {
                self.force_emergency_at = None;
                self.phase = DrivePhase::Braking;
                self.phase_elapsed_ms = 0;
                self.emergency = true;
            }
        }

        // ~1 m/s² acceleration = 3.6 km/h per second = 360 ckm/h per second.
        let accel_per_ms = 360.0 / 1000.0;
        match self.phase {
            DrivePhase::Accelerating => {
                self.doors_released = false;
                self.driver_command = 1; // traction
                self.speed_ckmh =
                    (self.speed_ckmh + (accel_per_ms * dt as f64) as u32).min(self.target_ckmh);
                self.brake_pipe_kpa = 500;
                if self.speed_ckmh >= self.target_ckmh {
                    self.phase = DrivePhase::Cruising;
                    self.phase_elapsed_ms = 0;
                }
            }
            DrivePhase::Cruising => {
                self.driver_command = 2; // hold
                                         // Small speed jitter around the target.
                let jitter: i32 = self.rng.random_range(-20..=20);
                self.speed_ckmh = self
                    .speed_ckmh
                    .saturating_add_signed(jitter)
                    .min(Self::MAX_SPEED_CKMH);
                // Rare ATP intervention while cruising (~1 per 10 min of bus time).
                if !self.atp_intervention && self.rng.random_ratio(dt.min(1000) as u32, 600_000) {
                    self.atp_intervention = true;
                }
                if self.phase_elapsed_ms > 60_000 {
                    self.phase = DrivePhase::Braking;
                    self.phase_elapsed_ms = 0;
                }
            }
            DrivePhase::Braking => {
                self.driver_command = 3; // brake
                self.atp_intervention = false;
                // Emergency braking is rare (~1 per 30 min).
                if !self.emergency && self.rng.random_ratio(dt.min(1000) as u32, 1_800_000) {
                    self.emergency = true;
                }
                let decel = if self.emergency { 2.2 } else { 1.0 };
                let delta = (accel_per_ms * decel * dt as f64) as u32;
                self.speed_ckmh = self.speed_ckmh.saturating_sub(delta.max(1));
                self.brake_pipe_kpa = if self.emergency { 0 } else { 340 };
                if self.speed_ckmh == 0 {
                    self.phase = DrivePhase::Stopped;
                    self.phase_elapsed_ms = 0;
                    self.emergency = false;
                }
            }
            DrivePhase::Stopped => {
                self.driver_command = 0;
                self.doors_released = true;
                self.brake_pipe_kpa = 500;
                if self.phase_elapsed_ms > 30_000 {
                    self.phase = DrivePhase::Accelerating;
                    self.phase_elapsed_ms = 0;
                    self.target_ckmh = self.rng.random_range(8_000..=Self::MAX_SPEED_CKMH);
                }
            }
        }

        // Odometer: v [0.01 km/h] → m per ms = v / 360_000.
        let dist_m = (self.speed_ckmh as f64 / 360_000.0) * dt as f64;
        self.odometer_m = self.odometer_m.wrapping_add(dist_m as u32);
    }

    fn value_for(&self, name: &str, kind: SignalKind) -> Vec<u8> {
        match (name, kind) {
            ("v_actual", _) => (self.speed_ckmh.min(u32::from(u16::MAX)) as u16)
                .to_le_bytes()
                .to_vec(),
            ("v_target", _) => (self.target_ckmh.min(u32::from(u16::MAX)) as u16)
                .to_le_bytes()
                .to_vec(),
            ("odometer_m", _) => self.odometer_m.to_le_bytes().to_vec(),
            ("accel_actual", _) => {
                let accel: i16 = match self.phase {
                    DrivePhase::Accelerating => 100,
                    DrivePhase::Braking if self.emergency => -220,
                    DrivePhase::Braking => -100,
                    _ => 0,
                };
                accel.to_le_bytes().to_vec()
            }
            ("brake_pipe_pressure", _) => self.brake_pipe_kpa.to_le_bytes().to_vec(),
            ("brake_applied", _) => vec![u8::from(matches!(self.phase, DrivePhase::Braking))],
            ("emergency_brake", _) => vec![u8::from(self.emergency)],
            ("doors_released", _) => vec![u8::from(self.doors_released)],
            ("doors_closed", _) => vec![u8::from(!self.doors_released)],
            ("atp_intervention", _) => vec![u8::from(self.atp_intervention)],
            ("atp_cab_signal", _) => ((self.target_ckmh / 100) as u16).to_le_bytes().to_vec(),
            ("driver_command", _) => self.driver_command.to_le_bytes().to_vec(),
            ("pantograph_up", _) => vec![1],
            ("traction_effort", _) => {
                let effort: i16 = match self.phase {
                    DrivePhase::Accelerating => 180,
                    DrivePhase::Braking => -150,
                    _ => 10,
                };
                effort.to_le_bytes().to_vec()
            }
            (_, kind) => vec![0; kind.width()],
        }
    }

    /// Current speed in km/h (for assertions in tests and examples).
    pub fn speed_kmh(&self) -> f64 {
        self.speed_ckmh as f64 / 100.0
    }

    /// Whether the emergency brake is currently active.
    pub fn emergency_brake_active(&self) -> bool {
        self.emergency
    }
}

impl Device for SignalGenerator {
    fn poll(&mut self, port: PortAddress, _cycle: u64, time_ms: u64) -> Option<Vec<u8>> {
        self.advance(time_ms);
        let descriptor = self.nsdb.lookup(port)?.clone();
        Some(self.value_for(&descriptor.name, descriptor.kind))
    }

    fn ports(&self) -> Vec<PortAddress> {
        self.nsdb.iter().map(|d| d.port).collect()
    }
}

/// A synthetic device producing a fixed-size opaque payload per poll.
///
/// Used by the benchmark harness to sweep request payload sizes from 32 B
/// to 8 kB (paper Fig. 6/7 right panels) independent of the JRU signal
/// catalogue. The payload content varies per cycle so that consecutive
/// requests are unique, as they would be after JRU-style on-change
/// filtering.
#[derive(Debug)]
pub struct PayloadDevice {
    port: PortAddress,
    size: usize,
    rng: rand::rngs::StdRng,
}

impl PayloadDevice {
    /// Creates a payload device answering on `port` with `size`-byte data.
    pub fn new(port: PortAddress, size: usize, seed: u64) -> Self {
        Self {
            port,
            size,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Configured payload size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Device for PayloadDevice {
    fn poll(&mut self, port: PortAddress, cycle: u64, _time_ms: u64) -> Option<Vec<u8>> {
        if port != self.port {
            return None;
        }
        let mut payload = vec![0u8; self.size];
        // Stamp the cycle so payloads are unique, then fill with noise.
        let stamp = cycle.to_le_bytes();
        let n = stamp.len().min(payload.len());
        payload[..n].copy_from_slice(&stamp[..n]);
        if payload.len() > n {
            self.rng.fill_bytes(&mut payload[n..]);
        }
        Some(payload)
    }

    fn ports(&self) -> Vec<PortAddress> {
        vec![self.port]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_accelerates_from_standstill() {
        let mut g = SignalGenerator::new(1);
        assert_eq!(g.speed_kmh(), 0.0);
        for cycle in 0..500 {
            g.poll(PortAddress(0x100), cycle, cycle * 64);
        }
        assert!(g.speed_kmh() > 50.0, "got {}", g.speed_kmh());
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        // Run long enough to reach the cruise phase, where seeded jitter
        // makes different seeds diverge (acceleration is deterministic
        // physics and identical across seeds).
        let run = |seed| {
            let mut g = SignalGenerator::new(seed);
            (0..1500)
                .map(|c| g.poll(PortAddress(0x100), c, c * 64).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn generator_serves_all_default_ports() {
        let mut g = SignalGenerator::new(2);
        for port in g.ports() {
            let value = g.poll(port, 0, 0);
            assert!(value.is_some(), "no data for {port}");
        }
        assert!(g.poll(PortAddress(0xfff), 0, 0).is_none());
    }

    #[test]
    fn generator_value_widths_match_nsdb() {
        let nsdb = Nsdb::jru_default();
        let mut g = SignalGenerator::new(3);
        for descriptor in nsdb.iter() {
            let value = g.poll(descriptor.port, 0, 0).unwrap();
            assert_eq!(
                value.len(),
                descriptor.kind.width(),
                "width mismatch for {}",
                descriptor.name
            );
        }
    }

    #[test]
    fn scripted_emergency_fires_at_the_requested_time() {
        let mut g = SignalGenerator::with_emergency_at(1, 2_000);
        // Poll just past the scripted time: the emergency must be active
        // (it clears again once the train has stopped).
        for cycle in 0..=32u64 {
            g.poll(PortAddress(0x112), cycle, cycle * 64);
        }
        assert!(g.emergency_brake_active());
        // And it brings the train to a stop (checked during the dwell
        // phase, before the service resumes).
        let mut g = SignalGenerator::with_emergency_at(1, 1_000);
        for cycle in 0..200u64 {
            g.poll(PortAddress(0x100), cycle, cycle * 64);
        }
        assert_eq!(g.speed_kmh(), 0.0);
    }

    #[test]
    fn payload_device_produces_unique_sized_payloads() {
        let mut device = PayloadDevice::new(PortAddress(0x200), 1024, 9);
        let a = device.poll(PortAddress(0x200), 0, 0).unwrap();
        let b = device.poll(PortAddress(0x200), 1, 64).unwrap();
        assert_eq!(a.len(), 1024);
        assert_eq!(b.len(), 1024);
        assert_ne!(a, b, "cycle stamp must make payloads unique");
        assert!(device.poll(PortAddress(0x201), 0, 0).is_none());
    }

    #[test]
    fn payload_device_supports_tiny_payloads() {
        let mut device = PayloadDevice::new(PortAddress(0x200), 4, 9);
        let payload = device.poll(PortAddress(0x200), 7, 0).unwrap();
        assert_eq!(payload.len(), 4);
        assert_eq!(payload, 7u64.to_le_bytes()[..4].to_vec());
    }
}
