/// Latency statistics over request samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    /// `(birth time ms, latency ms)` per logged request, in birth order.
    pub samples: Vec<(f64, f64)>,
}

impl LatencyStats {
    /// Records one sample.
    pub fn record(&mut self, birth_ms: f64, latency_ms: f64) {
        self.samples.push((birth_ms, latency_ms));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean latency in milliseconds (0 if empty).
    pub fn mean_ms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, l)| l).sum::<f64>() / self.samples.len() as f64
    }

    /// The `q`-quantile latency (e.g. 0.99), by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.samples.iter().map(|(_, l)| *l).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Maximum latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.samples.iter().map(|(_, l)| *l).fold(0.0, f64::max)
    }
}

/// The measurements of one simulated evaluation run — the quantities the
/// paper's figures plot.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Scenario wall-clock duration in milliseconds.
    pub duration_ms: f64,
    /// Requests appended to the log (on the reference node).
    pub logged_requests: u64,
    /// Blocks created (on the reference node).
    pub blocks_created: u64,
    /// Request latency from bus reception to finalized commit.
    pub latency: LatencyStats,
    /// Network throughput of the busiest node (send + receive), in
    /// megabytes per second — Fig. 6's network utilization.
    pub network_mbps: f64,
    /// CPU utilization of the busiest node as a percentage of the node's
    /// total capacity (4 cores = 400 % in the paper's plots; this value is
    /// of the *total*, i.e. 100 % means all four cores busy).
    pub cpu_percent_of_total: f64,
    /// Mean resident memory of the busiest node in megabytes.
    pub memory_mb_mean: f64,
    /// Peak resident memory of the busiest node in megabytes.
    pub memory_mb_max: f64,
    /// Requests decided by consensus on the reference node — counted
    /// per request after batch unpacking (noop gap-fillers included),
    /// so the latency series stays per-request at every batch size.
    pub consensus_decided: u64,
    /// Batches agreed by consensus on the reference node. One batch
    /// occupies one `PrePrepare`/`Prepare`/`Commit` exchange regardless
    /// of how many requests it carries.
    pub batches_decided: u64,
    /// Completed view changes observed across the run.
    pub view_changes: u64,
    /// State-transfer requests signalled by replicas that fell behind a
    /// stable checkpoint (each one is a gap a recovery service must fill).
    pub state_transfers: u64,
    /// Requests read from the bus but never logged by the end of the run
    /// (dropped or still queued — the overload signal).
    pub unlogged_requests: u64,
    /// Per-node decided log: `(sn, payload digest)` in decide order.
    /// The cross-runtime conformance suite compares these sequences
    /// against the threaded and TCP runtimes.
    pub decided: Vec<Vec<(u64, zugchain_crypto::Digest)>>,
}

impl RunMetrics {
    /// Events logged per second.
    pub fn events_per_second(&self) -> f64 {
        if self.duration_ms == 0.0 {
            return 0.0;
        }
        self.logged_requests as f64 / (self.duration_ms / 1000.0)
    }

    /// Realized mean batch occupancy: requests agreed per consensus
    /// exchange. 1.0 with batching off; approaches
    /// `Config::max_batch_size` under saturating load.
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches_decided == 0 {
            return 0.0;
        }
        self.consensus_decided as f64 / self.batches_decided as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_mean() {
        let mut stats = LatencyStats::default();
        for latency in [1.0, 2.0, 3.0, 4.0, 100.0] {
            stats.record(0.0, latency);
        }
        assert!((stats.mean_ms() - 22.0).abs() < 1e-9);
        assert_eq!(stats.quantile_ms(0.5), 3.0);
        assert_eq!(stats.quantile_ms(1.0), 100.0);
        assert_eq!(stats.max_ms(), 100.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = LatencyStats::default();
        assert_eq!(stats.mean_ms(), 0.0);
        assert_eq!(stats.quantile_ms(0.99), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        LatencyStats::default().quantile_ms(1.5);
    }

    #[test]
    fn events_per_second() {
        let metrics = RunMetrics {
            duration_ms: 2_000.0,
            logged_requests: 31,
            ..RunMetrics::default()
        };
        assert!((metrics.events_per_second() - 15.5).abs() < 1e-9);
    }

    #[test]
    fn batch_occupancy_is_requests_per_batch() {
        let metrics = RunMetrics {
            consensus_decided: 120,
            batches_decided: 30,
            ..RunMetrics::default()
        };
        assert!((metrics.mean_batch_occupancy() - 4.0).abs() < 1e-9);
        assert_eq!(RunMetrics::default().mean_batch_occupancy(), 0.0);
    }
}
