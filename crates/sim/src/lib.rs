//! Deterministic simulation of the ZugChain testbed.
//!
//! The paper evaluates ZugChain on four M-COM train computers (quad-core
//! ARM Cortex-A9 @800 MHz, 2 GB RAM) connected by 100 Mbit/s Ethernet,
//! fed by a real MVB, and exporting over LTE (~8.5 Mbit/s) to an AWS VM.
//! That hardware is not available here, so this crate provides the
//! closest synthetic equivalent (`DESIGN.md` §3): a **discrete-event
//! simulator** that drives the real ZugChain/baseline node state machines
//! (the same code a deployment would run) under explicit cost models:
//!
//! * **CPU** ([`CostModel`]) — service times for signing, verification,
//!   hashing and (de)serialization calibrated to the 800 MHz Cortex-A9.
//!   Consensus processing is a serial lane (one event loop, as in the
//!   real implementation); bus parsing runs on its own lane. Overload
//!   therefore shows up as queueing delay, reproducing the paper's
//!   collapse of the baseline at 32 ms bus cycles.
//! * **Network** — per-link store-and-forward with 100 Mbit/s bandwidth
//!   and sub-millisecond switch latency; byte counts come from the real
//!   canonical encodings of the real protocol messages.
//! * **Memory** — the nodes' own accounting (chain store, consensus
//!   slots, queues) plus a fixed process baseline.
//!
//! Everything is seeded and virtual-time: the same
//! [`ScenarioConfig`]/seed pair always produces identical results.
//!
//! [`run_scenario`] executes one evaluation run and returns
//! [`RunMetrics`]; [`export_sim`] computes the Table II export timings;
//! [`runtime`] holds a thread-per-node runtime used by the examples.
//!
//! # Examples
//!
//! ```
//! use zugchain_sim::{run_scenario, Mode, ScenarioConfig, Workload};
//!
//! let config = ScenarioConfig {
//!     mode: Mode::Zugchain,
//!     duration_ms: 5_000,
//!     bus_cycle_ms: 64,
//!     workload: Workload::SyntheticPayload { bytes: 1024 },
//!     ..ScenarioConfig::default()
//! };
//! let metrics = run_scenario(&config, 1);
//! assert!(metrics.logged_requests > 0);
//! assert!(metrics.latency.mean_ms() < 100.0);
//! ```

#![warn(missing_docs)]

mod cost;
mod export_sim;
pub mod fleet;
mod metrics;
mod network;
mod node_loop;
pub mod runtime;
mod scenario;
mod sim;
pub mod tcp;
pub mod trace_pipeline;

pub use cost::CostModel;
pub use export_sim::{simulate_export, ExportSimConfig, ExportTiming};
pub use metrics::{LatencyStats, RunMetrics};
pub use network::NetworkModel;
pub use scenario::{Mode, PartitionFault, ScenarioConfig, SimFaults, Workload};
pub use sim::{run_scenario, Simulation, TelemetryCapture};
pub use trace_pipeline::{run_traced_pipeline, TracedPipelineOutcome};
