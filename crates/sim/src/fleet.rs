//! Fleet simulation: many simulated trains driven through the full
//! record → export → sharded-archive pipeline against one shared
//! [`FleetArchive`].
//!
//! Each train is a self-contained consensus group with its own replica
//! keyset and its own chain: the "record" phase appends signal blocks
//! and stabilizes a genuine 2f+1 checkpoint certificate per segment, the
//! "export" phase drives the real [`DataCenter`]/[`ExportReplica`]
//! machines (paper Fig. 4) over an effects queue, and the "archive"
//! phase ingests every train's certified segments concurrently — one
//! thread per train — into the shared sharded archive. The run report
//! cross-checks, per train, that the decided chain head equals the
//! archived shard head, which is the fleet version of the juridical
//! claim: nothing decided was lost, nothing foreign was added.

use std::sync::Arc;

use zugchain_api::{ApiConfig, ApiServer, Backend};
use zugchain_archive::{FleetArchive, IngestLock};
use zugchain_blockchain::{Block, BlockBuilder, ChainStore, LoggedRequest};
use zugchain_crypto::{Digest, KeyPair, Keystore};
use zugchain_export::{
    CertifiedSegment, DataCenter, DcAddr, DcConfig, DcEffect, DcId, ExportReplica,
    ReplicaExportConfig,
};
use zugchain_mvb::PortAddress;
use zugchain_pbft::{Checkpoint, CheckpointProof, Message, NodeId};
use zugchain_signals::{Request, SignalValue, TrainEvent};
use zugchain_wire::TrainId;

/// Replicas per train (n = 4, f = 1 — the paper's group size).
pub const REPLICAS_PER_TRAIN: usize = 4;
/// Checkpoint quorum (2f + 1).
pub const REPLICA_QUORUM: usize = 3;

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of simulated trains (ids 1..=n).
    pub n_trains: usize,
    /// Export rounds (= certified segments) per train.
    pub segments_per_train: usize,
    /// Blocks recorded between consecutive checkpoints.
    pub blocks_per_segment: usize,
    /// Requests bundled per block.
    pub block_size: usize,
    /// Ingest locking mode of the shared archive.
    pub lock_mode: IngestLock,
    /// Deterministic seed for every train's key generation.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            n_trains: 100,
            segments_per_train: 3,
            blocks_per_segment: 4,
            block_size: 5,
            lock_mode: IngestLock::PerShard,
            seed: 0xF1EE7,
        }
    }
}

/// Per-train outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// The train.
    pub train: TrainId,
    /// Height of the train's decided chain.
    pub decided_height: u64,
    /// Hash of the decided chain head.
    pub decided_head: Digest,
    /// Certified segments the export path produced.
    pub exported_segments: usize,
    /// Segments landed in the train's archive shard.
    pub archived_segments: usize,
    /// `(height, hash)` of the shard head after ingest.
    pub archived_head: Option<(u64, Digest)>,
    /// Whether the shard head equals the decided head — the train's
    /// chain is fully and exactly archived.
    pub fully_archived: bool,
}

/// Outcome of a fleet run: the shared archive (still queryable), the
/// per-train reports, and each train's replica keyset for offline
/// auditing.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The shared sharded archive after ingest.
    pub archive: FleetArchive,
    /// One report per train, ascending by train id.
    pub trains: Vec<TrainReport>,
    /// Each train's replica public keys (for `zugchain-audit`).
    pub keystores: Vec<(TrainId, Keystore)>,
    /// Total requests cross-indexed fleet-wide.
    pub total_requests: usize,
}

impl FleetOutcome {
    /// Whether every train's decided chain is fully archived.
    pub fn all_archived(&self) -> bool {
        self.trains.iter().all(|t| t.fully_archived)
    }

    /// Starts the HTTP query front end over the fleet's shared archive —
    /// the full record → export → archive → **serve** pipeline in one
    /// process. The server shares `registry`, so its request counters
    /// and the archive's ingest metrics land in one `/metrics`
    /// exposition.
    ///
    /// # Errors
    ///
    /// Socket errors from binding the server.
    pub fn serve(
        &self,
        config: ApiConfig,
        registry: Arc<zugchain_telemetry::Registry>,
    ) -> std::io::Result<ApiServer> {
        ApiServer::start(config, Backend::Fleet(self.archive.clone()), registry)
    }
}

fn signal_payload(train: TrainId, sn: u64) -> Vec<u8> {
    let time_ms = sn * 100;
    zugchain_wire::to_bytes(&Request {
        cycle: sn,
        time_ms,
        events: vec![TrainEvent {
            name: "v_actual".to_string(),
            port: PortAddress(0x42),
            cycle: sn,
            time_ms,
            // Vary the reading per train so shards hold distinct data.
            value: SignalValue::U16(((train.0 * 31 + sn) % 4_000) as u16),
        }],
    })
}

pub(crate) fn certify(pairs: &[KeyPair], sn: u64, head: &Block) -> CheckpointProof {
    let checkpoint = Checkpoint {
        sn,
        state_digest: head.hash(),
    };
    let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
    CheckpointProof {
        checkpoint,
        signatures: pairs
            .iter()
            .enumerate()
            .map(|(id, pair)| (NodeId(id as u64), pair.sign(&message)))
            .collect(),
    }
}

/// One simulated train mid-run: its replica chain state and the export
/// machines attached to it.
struct SimTrain {
    train: TrainId,
    pairs: Vec<KeyPair>,
    keystore: Keystore,
    /// Per-replica chain copies (the export path mutates them on delete).
    chains: Vec<ChainStore>,
    proofs: Vec<CheckpointProof>,
    builder: BlockBuilder,
    next_sn: u64,
    dc: DataCenter,
    replicas: Vec<ExportReplica>,
}

impl SimTrain {
    fn new(train: TrainId, block_size: usize, seed: u64) -> Self {
        let (pairs, keystore) = Keystore::generate(
            REPLICAS_PER_TRAIN,
            seed ^ train.0.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let (dc_pairs, dc_keystore) = Keystore::generate(1, seed ^ train.0 ^ 0xDC00);
        let dc = DataCenter::new(
            DcConfig {
                id: DcId(0),
                train,
                n_replicas: REPLICAS_PER_TRAIN,
                replica_quorum: REPLICA_QUORUM,
                peers: vec![],
            },
            dc_pairs[0].clone(),
            keystore.clone(),
            REPLICA_QUORUM,
        );
        let replicas = (0..REPLICAS_PER_TRAIN)
            .map(|id| {
                ExportReplica::new(
                    NodeId(id as u64),
                    pairs[id].clone(),
                    dc_keystore.clone(),
                    ReplicaExportConfig { delete_quorum: 1 },
                )
                .with_train(train)
            })
            .collect();
        Self {
            train,
            pairs,
            keystore,
            chains: (0..REPLICAS_PER_TRAIN).map(|_| ChainStore::new()).collect(),
            proofs: Vec::new(),
            builder: BlockBuilder::new(block_size),
            next_sn: 0,
            dc,
            replicas,
        }
    }

    /// "Record": extends every replica's chain by `n_blocks` blocks of
    /// signal requests, then stabilizes a checkpoint certificate over
    /// the new head.
    fn record_segment(&mut self, n_blocks: usize, block_size: usize) {
        for _ in 0..n_blocks {
            let mut block = None;
            while block.is_none() {
                self.next_sn += 1;
                let sn = self.next_sn;
                block = self.builder.push(
                    LoggedRequest {
                        sn,
                        origin: sn % REPLICAS_PER_TRAIN as u64,
                        payload: signal_payload(self.train, sn),
                    },
                    sn * 100,
                );
            }
            let block = block.expect("push at block size returns a block");
            debug_assert_eq!(block.requests.len(), block_size);
            for chain in &mut self.chains {
                chain.append(block.clone()).expect("builder output chains");
            }
        }
        let head = self.chains[0].blocks().last().expect("recorded").clone();
        self.proofs.push(certify(&self.pairs, self.next_sn, &head));
    }

    /// "Export": one synchronous protocol round (paper Fig. 4) over an
    /// effects queue, exactly as the runtime would interleave it.
    fn export_round(&mut self) {
        let mut effects = self.dc.begin_export(NodeId(1));
        while let Some(effect) = effects.pop() {
            match effect {
                DcEffect::Broadcast { message } => {
                    for id in 0..REPLICAS_PER_TRAIN {
                        for reply in self.replicas[id].handle(
                            message.clone(),
                            &mut self.chains[id],
                            &self.proofs,
                        ) {
                            effects.extend(self.dc.on_replica_message(NodeId(id as u64), reply));
                        }
                    }
                }
                DcEffect::Send {
                    to: DcAddr::Replica(to),
                    message,
                } => {
                    let id = to.0 as usize;
                    for reply in
                        self.replicas[id].handle(message, &mut self.chains[id], &self.proofs)
                    {
                        effects.extend(self.dc.on_replica_message(NodeId(id as u64), reply));
                    }
                }
                DcEffect::Send {
                    to: DcAddr::DataCenter(_),
                    ..
                }
                | DcEffect::Output(_) => {}
                effect => panic!("unexpected export effect {effect:?}"),
            }
        }
    }
}

/// Runs the fleet simulation and ingests every certified segment into a
/// shared sharded archive. When `telemetry` is enabled, each shard
/// publishes `zugchain_archive_*` metrics under its `train="<id>"`
/// label.
///
/// # Panics
///
/// Panics if a train's export path emits nothing or a certified segment
/// fails ingestion — both indicate a bug, not an environment condition.
pub fn run_fleet(config: &FleetConfig, telemetry: &zugchain_telemetry::Telemetry) -> FleetOutcome {
    // --- Record + export, per train (independent, deterministic). ---
    let mut exported: Vec<(TrainId, Keystore, u64, Digest, Vec<CertifiedSegment>)> = Vec::new();
    for i in 1..=config.n_trains {
        let train = TrainId(i as u64);
        let mut sim = SimTrain::new(train, config.block_size, config.seed);
        let mut segments = Vec::new();
        for _ in 0..config.segments_per_train {
            sim.record_segment(config.blocks_per_segment, config.block_size);
            sim.export_round();
            segments.extend(sim.dc.drain_certified_segments());
        }
        assert!(
            !segments.is_empty(),
            "train {train}: export produced no certified segment"
        );
        assert!(sim.dc.verify_archive());
        let decided_height = sim.chains[0].height();
        let decided_head = sim.chains[0].head_hash();
        exported.push((train, sim.keystore, decided_height, decided_head, segments));
    }

    // --- Sharded archive: register every train, then ingest with one
    // thread per train against the shared archive. ---
    let archive = FleetArchive::in_memory(REPLICA_QUORUM).with_lock_mode(config.lock_mode);
    archive.set_telemetry(telemetry);
    for (train, keystore, ..) in &exported {
        archive
            .register_train(*train, keystore.clone())
            .expect("fresh registration");
    }
    std::thread::scope(|scope| {
        for (_, _, _, _, segments) in &exported {
            let archive = archive.clone();
            scope.spawn(move || {
                for segment in segments {
                    archive.ingest(segment).expect("certified segment ingests");
                }
            });
        }
    });

    // --- Cross-check decided chains against archived shards. ---
    let trains: Vec<TrainReport> = exported
        .iter()
        .map(|(train, _, decided_height, decided_head, segments)| {
            let archived_head = archive.head_of(*train);
            TrainReport {
                train: *train,
                decided_height: *decided_height,
                decided_head: *decided_head,
                exported_segments: segments.len(),
                archived_segments: archive.segment_count_of(*train),
                archived_head,
                fully_archived: archived_head == Some((*decided_height, *decided_head)),
            }
        })
        .collect();
    let total_requests = archive.request_count();
    FleetOutcome {
        archive,
        trains,
        keystores: exported
            .into_iter()
            .map(|(train, keystore, ..)| (train, keystore))
            .collect(),
        total_requests,
    }
}

/// Convenience wrapper used by tests and the smoke binary: runs the
/// fleet with a telemetry registry and returns the outcome together with
/// that registry for metric cross-checks.
pub fn run_fleet_instrumented(
    config: &FleetConfig,
) -> (FleetOutcome, Arc<zugchain_telemetry::Registry>) {
    let registry = Arc::new(zugchain_telemetry::Registry::new());
    let telemetry = zugchain_telemetry::Telemetry::new(
        0,
        Arc::clone(&registry),
        zugchain_telemetry::DEFAULT_TRACE_CAPACITY,
    );
    let outcome = run_fleet(config, &telemetry);
    (outcome, registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_fully_archives() {
        let config = FleetConfig {
            n_trains: 5,
            segments_per_train: 2,
            blocks_per_segment: 2,
            block_size: 3,
            ..FleetConfig::default()
        };
        let (outcome, registry) = run_fleet_instrumented(&config);
        assert_eq!(outcome.trains.len(), 5);
        assert!(outcome.all_archived(), "reports: {:#?}", outcome.trains);
        for report in &outcome.trains {
            assert_eq!(report.archived_segments, 2);
            assert_eq!(report.decided_height, 4);
            // Per-train metric series exists and matches the shard.
            assert_eq!(
                registry.counter_value(
                    "zugchain_archive_segments_total",
                    &[("node", "0"), ("train", &report.train.to_string())],
                ),
                Some(report.archived_segments as u64)
            );
        }
        // Fleet-wide query sees every train's records.
        assert_eq!(
            outcome.archive.trains_in(0, u64::MAX).len(),
            5,
            "every train has records in the fleet window"
        );
        assert_eq!(outcome.total_requests, 5 * 2 * 2 * 3);
    }

    #[test]
    fn fleet_serves_over_http() {
        let config = FleetConfig {
            n_trains: 3,
            segments_per_train: 2,
            blocks_per_segment: 2,
            block_size: 3,
            ..FleetConfig::default()
        };
        let (outcome, registry) = run_fleet_instrumented(&config);
        let server = outcome
            .serve(ApiConfig::open(), Arc::clone(&registry))
            .expect("api server binds");
        let mut client = zugchain_api::HttpClient::new(server.address());

        let trains = client.get("/v1/trains", None).expect("GET /v1/trains");
        assert_eq!(trains.status, 200);
        assert!(trains.text().contains("\"count\":3"), "{}", trains.text());

        // A full cursor walk over train 1 sees exactly its blocks.
        let blocks = client
            .get("/v1/trains/1/blocks?limit=100", None)
            .expect("GET blocks");
        assert_eq!(blocks.status, 200);
        assert!(blocks.text().contains("\"count\":4"), "{}", blocks.text());

        // The exposition served over HTTP carries both archive ingest
        // and API request series — one registry, one scrape path.
        let metrics = client.get("/metrics", None).expect("GET /metrics");
        let exposition = metrics.text();
        assert!(exposition.contains("zugchain_archive_segments_total"));
        assert!(exposition.contains("zugchain_api_requests_total"));
    }

    #[test]
    fn fleet_is_deterministic() {
        let config = FleetConfig {
            n_trains: 3,
            segments_per_train: 1,
            blocks_per_segment: 2,
            block_size: 2,
            ..FleetConfig::default()
        };
        let a = run_fleet(&config, &zugchain_telemetry::Telemetry::disabled());
        let b = run_fleet(&config, &zugchain_telemetry::Telemetry::disabled());
        for (x, y) in a.trains.iter().zip(b.trains.iter()) {
            assert_eq!(x.decided_head, y.decided_head);
            assert_eq!(x.archived_head, y.archived_head);
        }
    }
}
