use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use rand::{Rng as _, RngExt as _, SeedableRng as _};
use zugchain::NodeObserver;
use zugchain::{
    BaselineNode, LayerMessage, NodeEvent, NodeInput, NodeMessage, SignedRequest, TimerId,
    TrainMachine, TrainNode, ZugchainNode,
};
use zugchain_crypto::{Digest, KeyPair, Keystore};
use zugchain_machine::{Driver, Frame, Host};
use zugchain_mvb::{
    Bus, BusConfig, BusFaultPlan, Nsdb, PortAddress, SignalDescriptor, SignalGenerator, SignalKind,
    TapFaults, Telegram,
};
use zugchain_pbft::{Message, NodeId, ProposedRequest};
use zugchain_signals::CycleConsolidator;
use zugchain_telemetry::{Registry, Telemetry, TraceStore};

use crate::{LatencyStats, Mode, RunMetrics, ScenarioConfig, Workload};

const NS_PER_MS: u64 = 1_000_000;

/// The driver type the simulator runs: either node flavour behind the
/// same generic dispatch loop the threaded and TCP runtimes use.
type SimDriver = Driver<TrainMachine<Box<dyn TrainNode>>>;

/// Work delivered to a node.
#[derive(Debug)]
enum Work {
    /// A synthetic consolidated bus payload (sweep workloads).
    RawPayload(Vec<u8>),
    /// Observed telegrams of one bus cycle (JRU workload).
    Telegrams {
        cycle: u64,
        time_ms: u64,
        telegrams: Vec<Telegram>,
    },
    /// A network message, shared by reference: all recipients of a
    /// broadcast hold the same frame, and in-process delivery never
    /// wire-encodes it.
    Message(Frame<NodeMessage>),
    /// A timer expiry `(id, generation)`; stale generations are dropped
    /// without cost.
    Timer(TimerId, u64),
}

#[derive(Debug)]
enum EventKind {
    BusCycle(u64),
    Deliver { node: usize, work: Work },
    MemorySample,
}

struct Event {
    at_ns: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at_ns == other.at_ns && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time (then lower seq) is "greater".
        other.at_ns.cmp(&self.at_ns).then(other.seq.cmp(&self.seq))
    }
}

/// The discrete-event simulation of one evaluation run.
///
/// Use [`run_scenario`] unless you need step-level control.
pub struct Simulation {
    /// One [`Driver`] per node; the driver owns timer generations and
    /// routes effects into a [`SimHost`].
    drivers: Vec<SimDriver>,
    world: World,
    /// JRU-signal workload state.
    jru: Option<JruWorkload>,
    /// Shared metrics registry all per-node telemetry handles publish
    /// into; [`RunMetrics`] consensus counters are read from here.
    registry: Arc<Registry>,
    /// Per-node telemetry handles (flight recorder + virtual clock).
    telemetry: Vec<Telemetry>,
    /// Cluster-shared causal-span store: every node's telemetry handle
    /// records spans here, so traces can be joined across nodes by id.
    traces: Arc<TraceStore>,
}

/// Telemetry captured by [`Simulation::run_instrumented`]: the shared
/// registry (for Prometheus exposition / snapshot queries) and each
/// node's flight-recorder dump. Deterministic for a fixed
/// `(config, seed)`: trace timestamps come from the virtual clock.
#[derive(Debug, Clone)]
pub struct TelemetryCapture {
    /// The run's metrics registry.
    pub registry: Arc<Registry>,
    /// Per-node JSONL flight-recorder dumps, indexed by node id.
    pub traces: Vec<String>,
    /// Per-node JSONL causal-span dumps, indexed by node id.
    pub spans: Vec<String>,
    /// The cluster-shared span store, for cross-node trace assembly.
    pub trace_store: Arc<TraceStore>,
}

/// Everything in the simulation that is not a node: the event heap, cost
/// accounting, fault state, and metrics. Split from the drivers so a
/// [`SimHost`] can borrow the world while its driver is borrowed mutably.
struct World {
    config: ScenarioConfig,
    pairs: Vec<KeyPair>,
    crashed: Vec<bool>,
    /// Busy-until per node and lane (0 = consensus loop, 1 = bus I/O).
    lane_busy: Vec<[u64; 2]>,
    cpu_busy_ns: Vec<u64>,
    events: BinaryHeap<Event>,
    seq: u64,
    net: crate::NetworkModel,
    /// Birth time per payload digest.
    births: HashMap<Digest, u64>,
    /// Digests already counted in the latency series.
    first_logged: HashSet<Digest>,
    latency: LatencyStats,
    /// Per-node decided log for the conformance suite.
    decided: Vec<Vec<(u64, Digest)>>,
    memory_samples: Vec<usize>,
    rng: rand::rngs::StdRng,
    fabricate_counter: u64,
    /// Next undelivered index into a scripted workload.
    scripted_next: usize,
}

struct JruWorkload {
    bus: Bus,
    reference: CycleConsolidator,
}

impl World {
    fn n(&self) -> usize {
        self.crashed.len()
    }

    fn push(&mut self, at_ns: u64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Event {
            at_ns,
            seq: self.seq,
            kind,
        });
    }

    fn work_cost(&self, work: &Work) -> u64 {
        let cost = &self.config.cost;
        match work {
            Work::RawPayload(payload) => cost.bus_cycle_ns(1, payload.len()),
            Work::Telegrams { telegrams, .. } => {
                let bytes: usize = telegrams.iter().map(|t| t.payload.len()).sum();
                cost.bus_cycle_ns(telegrams.len(), bytes)
            }
            Work::Message(frame) => {
                let signatures = match frame.message() {
                    // Layer requests carry the origin signature.
                    NodeMessage::Layer(_) => 1,
                    NodeMessage::Consensus(_) => 1,
                };
                cost.receive_message_ns(frame.message().wire_size(), signatures)
            }
            Work::Timer(..) => 10_000,
        }
    }

    /// A faulty node broadcasts a fabricated request (never on the bus).
    fn inject_fabricated(&mut self, faulty: usize, at_ns: u64) {
        self.fabricate_counter += 1;
        let size = match self.config.workload {
            Workload::SyntheticPayload { bytes } => bytes.max(16),
            Workload::JruSignals { .. } | Workload::Scripted { .. } => 256,
        };
        let mut payload = vec![0u8; size];
        payload[..8].copy_from_slice(&self.fabricate_counter.to_le_bytes());
        payload[8..16].copy_from_slice(b"FABRICAT");
        self.births.insert(Digest::of(&payload), at_ns);
        let request = ProposedRequest::application(payload, NodeId(faulty as u64));
        let signed = SignedRequest::sign(request, &self.pairs[faulty]);
        let frame = Frame::new(NodeMessage::Layer(LayerMessage::BroadcastRequest(signed)));
        let bytes = frame.message().wire_size();
        for dst in 0..self.n() {
            if dst == faulty || self.crashed[dst] {
                continue;
            }
            let arrival = self.net.send(faulty, dst, bytes, at_ns);
            self.push(
                arrival,
                EventKind::Deliver {
                    node: dst,
                    work: Work::Message(frame.clone()),
                },
            );
        }
    }

    /// Returns `true` if the partition fault currently separates the two
    /// nodes.
    fn partitioned(&self, a: usize, b: usize, at_ns: u64) -> bool {
        let Some(partition) = &self.config.faults.partition else {
            return false;
        };
        let at_ms = at_ns / NS_PER_MS;
        if at_ms < partition.start_ms || at_ms >= partition.heal_ms {
            return false;
        }
        partition.island.contains(&a) != partition.island.contains(&b)
    }

    /// The Fig. 9 primary attack: node 0 (the initial primary) delays its
    /// outbound preprepares.
    fn attack_delay_ns(&self, src: usize, message: &NodeMessage) -> u64 {
        let Some(delay_ms) = self.config.faults.primary_preprepare_delay_ms else {
            return 0;
        };
        if src != 0 {
            return 0;
        }
        match message {
            NodeMessage::Consensus(signed) if matches!(signed.message, Message::PrePrepare(_)) => {
                delay_ms * NS_PER_MS
            }
            _ => 0,
        }
    }

    /// Maps a logged payload back to its bus-payload digest (baseline
    /// logs client-framed payloads).
    fn payload_identity(&self, logged: &[u8]) -> Digest {
        match self.config.mode {
            Mode::Zugchain => Digest::of(logged),
            Mode::Baseline => {
                // Framing: client id (u64) + client seq (u64) + bytes.
                let mut reader = zugchain_wire::Reader::new(logged);
                let inner = (|| -> Result<Vec<u8>, zugchain_wire::WireError> {
                    let _client = reader.read_u64()?;
                    let _seq = reader.read_u64()?;
                    Ok(reader.read_bytes()?.to_vec())
                })();
                match inner {
                    Ok(inner) if reader.is_empty() => Digest::of(&inner),
                    _ => Digest::of(logged),
                }
            }
        }
    }

    /// Reads a per-node counter from the registry (0 if never touched).
    fn node_counter(registry: &Registry, name: &str, node: usize) -> u64 {
        let label = node.to_string();
        registry
            .counter_value(name, &[("node", label.as_str())])
            .unwrap_or(0)
    }

    fn finish(self, end_ns: u64, registry: &Registry) -> RunMetrics {
        let duration_ms = end_ns as f64 / 1e6;
        let duration_s = duration_ms / 1e3;
        let n = self.n();

        let busiest = (0..n)
            .max_by_key(|&i| self.cpu_busy_ns[i])
            .expect("at least one node");
        let cpu_percent_of_total = self.cpu_busy_ns[busiest] as f64
            / (end_ns as f64 * f64::from(self.config.cost.cores))
            * 100.0;

        let network_mbps = (0..n)
            .map(|i| {
                (self.net.bytes_sent_by(i) + self.net.bytes_received_by(i)) as f64
                    / duration_s
                    / 1e6
            })
            .fold(0.0, f64::max);

        let memory_mb_mean = if self.memory_samples.is_empty() {
            0.0
        } else {
            self.memory_samples.iter().sum::<usize>() as f64
                / self.memory_samples.len() as f64
                / 1e6
        };
        let memory_mb_max = self.memory_samples.iter().copied().max().unwrap_or(0) as f64 / 1e6;

        // Evaluation counters read back from the shared registry — the
        // same source of truth live runtimes expose — preserving the
        // original aggregation rules: per-request/block counts are the
        // max over nodes (all honest nodes converge), view changes are
        // counted once per completed change on fixed reference node 1,
        // and state transfers are summed across nodes.
        let logged_requests = (0..n)
            .map(|i| Self::node_counter(registry, "zugchain_node_logged_total", i))
            .max()
            .unwrap_or(0);
        let blocks_created = (0..n)
            .map(|i| Self::node_counter(registry, "zugchain_node_blocks_total", i))
            .max()
            .unwrap_or(0);
        let view_changes = Self::node_counter(registry, "zugchain_pbft_view_changes_total", 1);
        let state_transfers = (0..n)
            .map(|i| Self::node_counter(registry, "zugchain_node_state_transfers_total", i))
            .sum();
        let unlogged = self.births.len().saturating_sub(self.first_logged.len()) as u64;

        RunMetrics {
            duration_ms,
            logged_requests,
            blocks_created,
            latency: self.latency,
            network_mbps,
            cpu_percent_of_total,
            memory_mb_mean,
            memory_mb_max,
            consensus_decided: 0, // filled by `Simulation::run`
            batches_decided: 0,   // filled by `Simulation::run`
            view_changes,
            state_transfers,
            unlogged_requests: unlogged,
            decided: self.decided,
        }
    }
}

/// The cost-modelling [`Host`] the drivers route effects into. A send or
/// broadcast charges consensus-lane CPU **once per effect** — a broadcast
/// is one encode/sign regardless of fan-out, the same serialize-once
/// behaviour the wire transports get from [`Frame`] — then schedules
/// per-recipient deliveries through the network model. Timers go into the
/// event heap carrying their generation; outputs feed the metrics.
struct SimHost<'a> {
    world: &'a mut World,
    node: usize,
    /// Consensus-lane time cursor, advanced by outbound work.
    t: u64,
}

impl SimHost<'_> {
    fn dispatch(&mut self, frame: &Frame<NodeMessage>, dst: usize, bytes: usize) {
        let node = self.node;
        if dst < self.world.n()
            && dst != node
            && !self.world.crashed[dst]
            && !self.world.partitioned(node, dst, self.t)
        {
            let ready = self.t + self.world.attack_delay_ns(node, frame.message());
            let arrival = self.world.net.send(node, dst, bytes, ready);
            self.world.push(
                arrival,
                EventKind::Deliver {
                    node: dst,
                    work: Work::Message(frame.clone()),
                },
            );
        }
    }
}

impl Host<TrainMachine<Box<dyn TrainNode>>> for SimHost<'_> {
    fn send(&mut self, to: NodeId, frame: &Frame<NodeMessage>) {
        let bytes = frame.message().wire_size();
        let cost = self.world.config.cost.send_message_ns(bytes);
        self.t += cost;
        self.world.cpu_busy_ns[self.node] += cost;
        self.dispatch(frame, to.0 as usize, bytes);
    }

    fn broadcast(&mut self, frame: &Frame<NodeMessage>) {
        let bytes = frame.message().wire_size();
        let cost = self.world.config.cost.send_message_ns(bytes);
        self.t += cost;
        self.world.cpu_busy_ns[self.node] += cost;
        for dst in 0..self.world.n() {
            self.dispatch(frame, dst, bytes);
        }
    }

    fn set_timer(&mut self, id: TimerId, generation: u64, duration_ms: u64) {
        let node = self.node;
        self.world.push(
            self.t + duration_ms * NS_PER_MS,
            EventKind::Deliver {
                node,
                work: Work::Timer(id, generation),
            },
        );
    }

    fn cancel_timer(&mut self, _id: TimerId) {
        // The queued expiry stays in the heap; its generation is stale and
        // it is dropped cost-free on arrival.
    }

    fn output(&mut self, event: NodeEvent) {
        let node = self.node;
        match event {
            NodeEvent::Logged { sn, payload, .. } => {
                let digest = self.world.payload_identity(&payload);
                self.world.decided[node].push((sn, digest));
                if let Some(birth) = self.world.births.get(&digest).copied() {
                    if self.world.first_logged.insert(digest) {
                        let latency_ms = (self.t.saturating_sub(birth)) as f64 / 1e6;
                        self.world.latency.record(birth as f64 / 1e6, latency_ms);
                    }
                }
            }
            NodeEvent::BlockCreated { block } => {
                let cost = self.world.config.cost.hash_ns(block.encoded_size());
                self.t += cost;
                self.world.cpu_busy_ns[node] += cost;
            }
            // View changes and state transfers are counted in the
            // registry at their instrument points (`zugchain-pbft`,
            // `zugchain`); `World::finish` reads them back from there.
            NodeEvent::NewPrimary { .. }
            | NodeEvent::StateTransferNeeded { .. }
            | NodeEvent::CheckpointStable { .. } => {}
        }
    }
}

impl Simulation {
    /// Builds a simulation for `config`, seeding all randomness with
    /// `seed`.
    pub fn new(config: &ScenarioConfig, seed: u64) -> Self {
        let n = config.n_nodes;
        let (pairs, keystore) = Keystore::generate(n, seed);
        let nsdb = sweep_nsdb(&config.workload);
        let registry = Arc::new(Registry::new());
        let traces = Arc::new(TraceStore::new());
        let telemetry: Vec<Telemetry> = (0..n)
            .map(|id| {
                Telemetry::new_with_store(
                    id as u64,
                    Arc::clone(&registry),
                    config.node_config.trace_capacity,
                    Some(Arc::clone(&traces)),
                )
            })
            .collect();
        let drivers: Vec<SimDriver> = pairs
            .iter()
            .enumerate()
            .map(|(id, key)| {
                let mut node = match config.mode {
                    Mode::Zugchain => Box::new(ZugchainNode::new(
                        id as u64,
                        config.node_config.clone(),
                        nsdb.clone(),
                        key.clone(),
                        keystore.clone(),
                    )) as Box<dyn TrainNode>,
                    Mode::Baseline => Box::new(BaselineNode::new(
                        id as u64,
                        config.node_config.clone(),
                        nsdb.clone(),
                        key.clone(),
                        keystore.clone(),
                    )) as Box<dyn TrainNode>,
                };
                node.set_telemetry(&telemetry[id]);
                Driver::with_observer(
                    TrainMachine(node),
                    Box::new(NodeObserver::new(telemetry[id].clone())),
                )
            })
            .collect();

        let jru = match &config.workload {
            Workload::SyntheticPayload { .. } | Workload::Scripted { .. } => None,
            Workload::JruSignals {
                generator_seed,
                background_faults,
            } => {
                let bus_config = BusConfig::jru_default(config.bus_cycle_ms);
                let mut bus = Bus::new(bus_config.clone(), n, seed ^ 0xB05);
                bus.attach_device(Box::new(SignalGenerator::new(*generator_seed)));
                if *background_faults {
                    let plan = BusFaultPlan::new(vec![TapFaults::BACKGROUND; n], seed ^ 0xFA01);
                    bus.set_fault_plan(plan);
                }
                Some(JruWorkload {
                    bus,
                    reference: CycleConsolidator::new(bus_config.nsdb),
                })
            }
        };

        let mut world = World {
            pairs,
            crashed: vec![false; n],
            lane_busy: vec![[0, 0]; n],
            cpu_busy_ns: vec![0; n],
            events: BinaryHeap::new(),
            seq: 0,
            net: config.network.clone(),
            births: HashMap::new(),
            first_logged: HashSet::new(),
            latency: LatencyStats::default(),
            decided: vec![Vec::new(); n],
            memory_samples: Vec::new(),
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ 0x51A1),
            fabricate_counter: 0,
            scripted_next: 0,
            config: config.clone(),
        };
        world.push(0, EventKind::BusCycle(0));
        world.push(500 * NS_PER_MS, EventKind::MemorySample);
        Self {
            drivers,
            world,
            jru,
            registry,
            telemetry,
            traces,
        }
    }

    /// The run's cluster-shared causal-span store. Clone the `Arc` before
    /// [`run`](Self::run) to keep assembling traces after the run
    /// completes.
    pub fn trace_store(&self) -> Arc<TraceStore> {
        Arc::clone(&self.traces)
    }

    /// The run's shared metrics registry. Clone the `Arc` before
    /// [`run`](Self::run) to keep reading after the run completes.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Runs the scenario to completion and returns the metrics.
    pub fn run(self) -> RunMetrics {
        self.run_instrumented().0
    }

    /// Runs the scenario and additionally returns the telemetry capture:
    /// the metrics registry and every node's flight-recorder JSONL dump.
    pub fn run_instrumented(mut self) -> (RunMetrics, TelemetryCapture) {
        self.run_to_end();
        self.collect()
    }

    /// Like [`run_instrumented`](Self::run_instrumented), but also
    /// returns the decided chain of the most advanced surviving node —
    /// the blocks a traced ground pipeline (export → archive → serve)
    /// continues from, carrying the same `(origin, payload)` pairs the
    /// consensus spans derived their trace ids from.
    pub fn run_traced(
        mut self,
    ) -> (
        RunMetrics,
        TelemetryCapture,
        Vec<zugchain_blockchain::Block>,
    ) {
        self.run_to_end();
        let chain = self.decided_chain();
        let (metrics, capture) = self.collect();
        (metrics, capture, chain)
    }

    /// The decided chain blocks of the tallest surviving node.
    fn decided_chain(&self) -> Vec<zugchain_blockchain::Block> {
        (0..self.drivers.len())
            .filter(|&i| !self.world.crashed[i])
            .map(|i| self.drivers[i].machine().0.chain().blocks().to_vec())
            .max_by_key(Vec::len)
            .unwrap_or_default()
    }

    /// Drains the event heap until the drain horizon.
    fn run_to_end(&mut self) {
        let end_ns = self.world.config.duration_ms * NS_PER_MS;
        // Grace period lets in-flight requests finish ordering.
        let drain_ns = end_ns + 2_000 * NS_PER_MS;
        while let Some(event) = self.world.events.pop() {
            if event.at_ns > drain_ns {
                break;
            }
            match event.kind {
                EventKind::BusCycle(cycle) => self.on_bus_cycle(cycle, event.at_ns, end_ns),
                EventKind::Deliver { node, work } => self.deliver(node, work, event.at_ns),
                EventKind::MemorySample => {
                    if event.at_ns <= end_ns {
                        let peak = (0..self.drivers.len())
                            .filter(|&i| !self.world.crashed[i])
                            .map(|i| self.drivers[i].machine().0.approx_memory_bytes())
                            .max()
                            .unwrap_or(0)
                            + self.world.config.cost.process_base_bytes;
                        self.world.memory_samples.push(peak);
                        self.world
                            .push(event.at_ns + 500 * NS_PER_MS, EventKind::MemorySample);
                    }
                }
            }
        }
    }

    /// Reads the run's metrics and telemetry out of the finished world.
    fn collect(self) -> (RunMetrics, TelemetryCapture) {
        let end_ns = self.world.config.duration_ms * NS_PER_MS;
        // Consensus counters come from the registry snapshot of the most
        // advanced surviving node (same rule the bespoke counters used).
        let (consensus_decided, batches_decided) = (0..self.drivers.len())
            .filter(|&i| !self.world.crashed[i])
            .map(|i| {
                (
                    World::node_counter(&self.registry, "zugchain_pbft_decided_total", i),
                    World::node_counter(&self.registry, "zugchain_pbft_batches_decided_total", i),
                )
            })
            .max()
            .unwrap_or((0, 0));
        let registry = Arc::clone(&self.registry);
        let traces: Vec<String> = self.telemetry.iter().map(Telemetry::dump_jsonl).collect();
        let spans: Vec<String> = self.telemetry.iter().map(Telemetry::span_jsonl).collect();
        let trace_store = Arc::clone(&self.traces);
        let mut metrics = self.world.finish(end_ns, &registry);
        metrics.consensus_decided = consensus_decided;
        metrics.batches_decided = batches_decided;
        (
            metrics,
            TelemetryCapture {
                registry,
                traces,
                spans,
                trace_store,
            },
        )
    }

    fn on_bus_cycle(&mut self, cycle: u64, at_ns: u64, end_ns: u64) {
        if at_ns >= end_ns {
            return; // stop generating load at the end of the run
        }
        let time_ms = at_ns / NS_PER_MS;
        match &mut self.jru {
            None => {
                let payloads: Vec<Vec<u8>> = match &self.world.config.workload {
                    Workload::SyntheticPayload { bytes } => {
                        // Unique payload per cycle: cycle stamp + seeded
                        // noise.
                        let bytes = *bytes;
                        let mut payload = vec![0u8; bytes.max(8)];
                        payload[..8].copy_from_slice(&cycle.to_le_bytes());
                        if payload.len() > 8 {
                            self.world.rng.fill_bytes(&mut payload[8..]);
                        }
                        vec![payload]
                    }
                    Workload::Scripted { payloads } => {
                        let due: Vec<Vec<u8>> = payloads
                            .iter()
                            .skip(self.world.scripted_next)
                            .take_while(|(at_ms, _)| *at_ms <= time_ms)
                            .map(|(_, payload)| payload.clone())
                            .collect();
                        self.world.scripted_next += due.len();
                        due
                    }
                    Workload::JruSignals { .. } => {
                        unreachable!("jru workload carries its own bus")
                    }
                };
                for payload in payloads {
                    self.world.births.insert(Digest::of(&payload), at_ns);
                    for node in 0..self.drivers.len() {
                        if self.world.config.faults.primary_censors && node == 0 {
                            continue; // the censor pretends it saw nothing
                        }
                        if !self.world.crashed[node] {
                            self.world.push(
                                at_ns,
                                EventKind::Deliver {
                                    node,
                                    work: Work::RawPayload(payload.clone()),
                                },
                            );
                        }
                    }
                }
            }
            Some(jru) => {
                let out = jru.bus.run_cycle();
                // Ground truth: what an ideal node would consolidate.
                if let Some(request) =
                    jru.reference
                        .consolidate(out.cycle, out.time_ms, &out.on_wire)
                {
                    self.world
                        .births
                        .insert(Digest::of(&zugchain_wire::to_bytes(&request)), at_ns);
                }
                for obs in out.observations {
                    if !self.world.crashed[obs.tap] {
                        self.world.push(
                            at_ns,
                            EventKind::Deliver {
                                node: obs.tap,
                                work: Work::Telegrams {
                                    cycle: out.cycle,
                                    time_ms: out.time_ms,
                                    telegrams: obs.telegrams,
                                },
                            },
                        );
                    }
                }
            }
        }

        // Fig. 9 fault: a faulty backup injects a fabricated request for a
        // fraction of cycles.
        if let Some((faulty, fraction)) = self.world.config.faults.fabricate {
            if !self.world.crashed[faulty] && self.world.rng.random_bool(fraction.clamp(0.0, 1.0)) {
                self.world.inject_fabricated(faulty, at_ns);
            }
        }

        // Crash fault.
        if let Some((node, when_ms)) = self.world.config.faults.crash {
            if !self.world.crashed[node] && time_ms >= when_ms {
                self.world.crashed[node] = true;
            }
        }

        self.world.push(
            at_ns + self.world.config.bus_cycle_ms * NS_PER_MS,
            EventKind::BusCycle(cycle + 1),
        );
    }

    /// Delivers one unit of work through the node's driver, charging lane
    /// CPU; the driver routes the resulting effects into a [`SimHost`].
    fn deliver(&mut self, node: usize, work: Work, arrival_ns: u64) {
        // Trace timestamps advance with virtual time, so sim dumps are
        // deterministic for a fixed (config, seed).
        self.telemetry[node].set_time_ms(arrival_ns / NS_PER_MS);
        let world = &mut self.world;
        if world.crashed[node] {
            return;
        }
        // A censoring primary drops layer requests so it never proposes.
        if world.config.faults.primary_censors
            && node == 0
            && matches!(&work, Work::Message(frame)
                if matches!(frame.message(), NodeMessage::Layer(_)))
        {
            return;
        }
        // Stale timers are dropped without cost.
        if let Work::Timer(id, generation) = &work {
            if !self.drivers[node].timer_is_current(*id, *generation) {
                return;
            }
        }
        let lane = match work {
            Work::RawPayload(_) | Work::Telegrams { .. } => 1,
            _ => 0,
        };
        let start = arrival_ns.max(world.lane_busy[node][lane]);
        let cost = world.work_cost(&work);
        let finish = start + cost;
        world.lane_busy[node][lane] = finish;
        world.cpu_busy_ns[node] += cost;

        // Effects run on the consensus lane, after any work queued there.
        let effects_start = finish.max(world.lane_busy[node][0]);
        let driver = &mut self.drivers[node];
        let mut host = SimHost {
            world,
            node,
            t: effects_start,
        };
        match work {
            Work::RawPayload(payload) => driver.on_input(
                NodeInput::RawPayload {
                    payload,
                    time_ms: finish / NS_PER_MS,
                },
                &mut host,
            ),
            Work::Telegrams {
                cycle,
                time_ms,
                telegrams,
            } => driver.on_input(
                NodeInput::BusCycle {
                    source: 0,
                    cycle,
                    time_ms,
                    telegrams,
                },
                &mut host,
            ),
            Work::Message(frame) => {
                driver.on_input(NodeInput::Message(frame.to_message()), &mut host)
            }
            Work::Timer(id, generation) => {
                driver.on_timer_fired(id, generation, &mut host);
            }
        }
        let t = host.t;
        self.world.lane_busy[node][0] = self.world.lane_busy[node][0].max(t);
    }
}

/// An NSDB for synthetic sweep workloads (unused ports; nodes receive raw
/// payloads directly), or the JRU default otherwise.
fn sweep_nsdb(workload: &Workload) -> Nsdb {
    match workload {
        Workload::SyntheticPayload { bytes } => {
            let mut nsdb = Nsdb::new();
            nsdb.add(SignalDescriptor {
                name: "sweep_payload".into(),
                port: PortAddress(0x200),
                kind: SignalKind::Opaque {
                    width: (*bytes).min(u16::MAX as usize) as u16,
                },
                period_cycles: 1,
            });
            nsdb
        }
        Workload::Scripted { .. } => {
            let mut nsdb = Nsdb::new();
            nsdb.add(SignalDescriptor {
                name: "scripted_payload".into(),
                port: PortAddress(0x200),
                kind: SignalKind::Opaque { width: 256 },
                period_cycles: 1,
            });
            nsdb
        }
        Workload::JruSignals { .. } => Nsdb::jru_default(),
    }
}

/// Runs one evaluation scenario to completion.
///
/// Deterministic: the same `(config, seed)` always produces the same
/// [`RunMetrics`].
pub fn run_scenario(config: &ScenarioConfig, seed: u64) -> RunMetrics {
    Simulation::new(config, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: Mode, bus_cycle_ms: u64, bytes: usize) -> ScenarioConfig {
        ScenarioConfig {
            mode,
            bus_cycle_ms,
            duration_ms: 10_000,
            workload: Workload::SyntheticPayload { bytes },
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn zugchain_normal_case_orders_everything() {
        let metrics = run_scenario(&quick(Mode::Zugchain, 64, 1024), 1);
        let expected = 10_000 / 64;
        assert!(
            metrics.logged_requests >= expected - 2,
            "logged {} of ~{expected}",
            metrics.logged_requests
        );
        assert_eq!(metrics.unlogged_requests, 0);
        assert_eq!(metrics.view_changes, 0);
        // The paper's headline: ~14 ms ordering latency at 64 ms cycles.
        let mean = metrics.latency.mean_ms();
        assert!((8.0..25.0).contains(&mean), "mean latency {mean} ms");
    }

    #[test]
    fn tiny_trace_ring_keeps_the_newest_events() {
        // Same deterministic run twice: once with a ring big enough to
        // hold everything, once with a tiny one. Overflow must evict
        // the oldest entries only — the tiny dump is exactly the tail
        // of the full dump, for both the flight recorder and the span
        // ring, on every node.
        let mut config = quick(Mode::Zugchain, 64, 256);
        config.duration_ms = 2_000;
        let full_config = ScenarioConfig {
            node_config: config.node_config.clone().with_trace_capacity(65_536),
            ..config.clone()
        };
        let tiny_config = ScenarioConfig {
            node_config: config.node_config.clone().with_trace_capacity(4),
            ..config.clone()
        };
        let (_, full) = Simulation::new(&full_config, 5).run_instrumented();
        let (_, tiny) = Simulation::new(&tiny_config, 5).run_instrumented();
        for node in 0..full.traces.len() {
            for (name, full_dump, tiny_dump) in [
                ("flight recorder", &full.traces[node], &tiny.traces[node]),
                ("span ring", &full.spans[node], &tiny.spans[node]),
            ] {
                let full_lines: Vec<&str> = full_dump.lines().collect();
                let tiny_lines: Vec<&str> = tiny_dump.lines().collect();
                assert!(
                    tiny_lines.len() <= 4,
                    "node {node} {name}: tiny ring holds {} > 4 entries",
                    tiny_lines.len()
                );
                assert!(
                    full_lines.len() > tiny_lines.len(),
                    "node {node} {name}: the run must overflow the tiny ring"
                );
                assert_eq!(
                    tiny_lines.as_slice(),
                    &full_lines[full_lines.len() - tiny_lines.len()..],
                    "node {node} {name}: overflow must keep the newest entries"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let config = quick(Mode::Zugchain, 64, 256);
        let a = run_scenario(&config, 7);
        let b = run_scenario(&config, 7);
        assert_eq!(a.logged_requests, b.logged_requests);
        assert_eq!(a.latency.samples, b.latency.samples);
        assert_eq!(a.network_mbps, b.network_mbps);
        assert_eq!(a.decided, b.decided);
    }

    #[test]
    fn batching_raises_occupancy_and_keeps_per_request_latency() {
        let unbatched = run_scenario(&quick(Mode::Zugchain, 32, 256), 9);
        assert!(unbatched.batches_decided > 0);
        assert!(
            (unbatched.mean_batch_occupancy() - 1.0).abs() < 1e-9,
            "singleton batches expected, got occupancy {}",
            unbatched.mean_batch_occupancy()
        );

        let mut config = quick(Mode::Zugchain, 32, 256);
        config.node_config.pbft = config
            .node_config
            .pbft
            .with_max_batch_size(16)
            .with_batch_delay(96);
        let batched = run_scenario(&config, 9);
        assert_eq!(batched.unlogged_requests, 0);
        assert!(
            batched.mean_batch_occupancy() >= 2.0,
            "occupancy {}",
            batched.mean_batch_occupancy()
        );
        // Latency stays a per-request series: same sample count as the
        // unbatched run over the identical workload, despite far fewer
        // consensus exchanges.
        assert_eq!(batched.latency.len(), unbatched.latency.len());
        assert!(batched.batches_decided < unbatched.batches_decided);
    }

    #[test]
    fn baseline_uses_roughly_4x_network() {
        let zc = run_scenario(&quick(Mode::Zugchain, 64, 1024), 3);
        let bl = run_scenario(&quick(Mode::Baseline, 64, 1024), 3);
        let ratio = bl.network_mbps / zc.network_mbps;
        assert!(
            (2.5..6.0).contains(&ratio),
            "network ratio {ratio} (zc {} bl {})",
            zc.network_mbps,
            bl.network_mbps
        );
    }

    #[test]
    fn baseline_latency_is_higher() {
        let zc = run_scenario(&quick(Mode::Zugchain, 64, 1024), 3);
        let bl = run_scenario(&quick(Mode::Baseline, 64, 1024), 3);
        assert!(
            bl.latency.mean_ms() > zc.latency.mean_ms() * 1.2,
            "zc {} bl {}",
            zc.latency.mean_ms(),
            bl.latency.mean_ms()
        );
    }

    #[test]
    fn baseline_collapses_at_fast_cycles() {
        let bl = run_scenario(&quick(Mode::Baseline, 32, 1024), 3);
        let zc = run_scenario(&quick(Mode::Zugchain, 32, 1024), 3);
        assert!(
            bl.latency.mean_ms() > 20.0 * zc.latency.mean_ms(),
            "baseline must collapse: zc {} bl {}",
            zc.latency.mean_ms(),
            bl.latency.mean_ms()
        );
    }

    #[test]
    fn crash_of_primary_triggers_view_change_and_recovers() {
        let mut config = quick(Mode::Zugchain, 64, 512);
        config.faults.crash = Some((0, 3_000));
        let metrics = run_scenario(&config, 5);
        assert!(metrics.view_changes >= 1);
        // Requests keep being logged after the view change.
        let after = metrics
            .latency
            .samples
            .iter()
            .filter(|(birth, _)| *birth > 5_000.0)
            .count();
        assert!(after > 20, "requests logged after recovery: {after}");
    }

    #[test]
    fn fabricated_requests_increase_load() {
        let clean = run_scenario(&quick(Mode::Zugchain, 64, 512), 9);
        let mut config = quick(Mode::Zugchain, 64, 512);
        config.faults.fabricate = Some((3, 1.0));
        let attacked = run_scenario(&config, 9);
        assert!(attacked.cpu_percent_of_total > clean.cpu_percent_of_total);
        assert!(attacked.logged_requests > clean.logged_requests);
        assert!(attacked.latency.mean_ms() > clean.latency.mean_ms());
    }

    #[test]
    fn delayed_preprepares_inflate_latency_without_view_change() {
        let mut config = quick(Mode::Zugchain, 64, 512);
        config.faults.primary_preprepare_delay_ms = Some(100);
        // Soft timeout (250 ms) stays above the delay: no view change.
        let metrics = run_scenario(&config, 11);
        assert_eq!(metrics.view_changes, 0);
        assert!(
            metrics.latency.mean_ms() > 90.0,
            "latency {} must reflect the delay",
            metrics.latency.mean_ms()
        );
    }

    #[test]
    fn jru_signal_workload_runs() {
        let config = ScenarioConfig {
            mode: Mode::Zugchain,
            duration_ms: 10_000,
            workload: Workload::JruSignals {
                generator_seed: 2,
                background_faults: true,
            },
            ..ScenarioConfig::default()
        };
        let metrics = run_scenario(&config, 2);
        assert!(
            metrics.logged_requests > 50,
            "logged {}",
            metrics.logged_requests
        );
        assert!(metrics.latency.mean_ms() < 300.0);
    }

    #[test]
    fn seven_node_group_tolerates_two_crashes() {
        let mut config = quick(Mode::Zugchain, 64, 512);
        config.n_nodes = 7;
        config.node_config.pbft = zugchain_pbft::Config::new(7).unwrap();
        config.faults.crash = Some((0, 3_000));
        let metrics = run_scenario(&config, 12);
        assert!(metrics.view_changes >= 1);
        let after = metrics
            .latency
            .samples
            .iter()
            .filter(|(birth, _)| *birth > 6_000.0)
            .count();
        assert!(
            after > 30,
            "f=2 group keeps ordering after a crash: {after}"
        );
    }

    #[test]
    fn censoring_primary_is_deposed_and_nothing_is_lost() {
        let mut config = quick(Mode::Zugchain, 64, 512);
        config.faults.primary_censors = true;
        let metrics = run_scenario(&config, 13);
        assert!(metrics.view_changes >= 1, "censor deposed");
        assert_eq!(metrics.unlogged_requests, 0, "completeness holds");
        // The worst-cast latency is bounded by soft+hard+view change.
        assert!(metrics.latency.max_ms() < 1_500.0);
    }

    #[test]
    fn minority_partition_stalls_and_heals() {
        use crate::PartitionFault;
        let mut config = quick(Mode::Zugchain, 64, 512);
        config.duration_ms = 16_000;
        // Cut nodes {0,1} from {2,3}: neither side has 2f+1 = 3 nodes, so
        // ordering must stall entirely during the partition.
        config.faults.partition = Some(PartitionFault {
            island: vec![0, 1],
            start_ms: 5_000,
            heal_ms: 9_000,
        });
        let metrics = run_scenario(&config, 31);

        let logged_during = metrics
            .latency
            .samples
            .iter()
            .filter(|(birth, latency)| {
                let done = birth + latency;
                (5_200.0..8_800.0).contains(&done)
            })
            .count();
        assert_eq!(logged_during, 0, "no quorum, no progress");

        // After healing, everything buffered during the cut is ordered:
        // nothing is lost.
        assert_eq!(metrics.unlogged_requests, 0);
        let healed: Vec<f64> = metrics
            .latency
            .samples
            .iter()
            .filter(|(birth, _)| *birth > 10_000.0)
            .map(|(_, l)| *l)
            .collect();
        assert!(!healed.is_empty());
        let mean = healed.iter().sum::<f64>() / healed.len() as f64;
        assert!(mean < 60.0, "post-heal latency {mean}");
    }

    #[test]
    fn memory_grows_with_chain() {
        let short = run_scenario(&quick(Mode::Zugchain, 64, 1024), 4);
        let mut long_config = quick(Mode::Zugchain, 64, 1024);
        long_config.duration_ms = 20_000;
        let long = run_scenario(&long_config, 4);
        assert!(long.memory_mb_max > short.memory_mb_max);
    }

    #[test]
    fn scripted_workload_decides_identically_on_all_nodes() {
        let config = ScenarioConfig {
            mode: Mode::Zugchain,
            duration_ms: 8_000,
            workload: Workload::Scripted {
                payloads: (0..5u8)
                    .map(|i| (500 + 500 * u64::from(i), vec![i; 64]))
                    .collect(),
            },
            ..ScenarioConfig::default()
        };
        let metrics = run_scenario(&config, 21);
        assert_eq!(metrics.logged_requests, 5);
        assert_eq!(metrics.unlogged_requests, 0);
        // All nodes decided the identical (sn, digest) sequence.
        assert!(!metrics.decided[0].is_empty());
        assert!(metrics.decided.iter().all(|d| *d == metrics.decided[0]));
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::{Mode, ScenarioConfig, Workload};

    /// Regression for the view-change storm fixed during Fig. 8 bring-up:
    /// a primary crash must cost exactly ONE view change — not a cascade
    /// from re-proposing in-flight requests or stale self-accusing
    /// timers — and the paper-profile latency must return to steady state
    /// within ~250 ms of the new view.
    #[test]
    fn primary_crash_costs_exactly_one_view_change() {
        let mut config = ScenarioConfig::evaluation(Mode::Zugchain, 64, 1024);
        config.duration_ms = 25_000;
        config.workload = Workload::SyntheticPayload { bytes: 1024 };
        config.faults.crash = Some((0, 10_000));
        let metrics = run_scenario(&config, 42);
        assert_eq!(metrics.view_changes, 1, "exactly one view change");
        assert_eq!(metrics.unlogged_requests, 0);
        let late: Vec<f64> = metrics
            .latency
            .samples
            .iter()
            .filter(|(birth, _)| *birth > 11_000.0)
            .map(|(_, l)| *l)
            .collect();
        let mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
        assert!(mean < 20.0, "stabilized at {mean} ms");
    }
}
