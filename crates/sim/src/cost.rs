/// CPU service times, calibrated to the paper's testbed CPU (Freescale
/// i.MX6 quad-core Cortex-A9 @ 800 MHz).
///
/// The dominant consensus costs are Ed25519 operations: on a Cortex-A9 at
/// 800 MHz a signature takes on the order of 0.7–0.9 ms and a
/// verification roughly twice that. Hashing (SHA-256) costs tens of
/// cycles per byte. The defaults below reproduce the paper's headline
/// normal-case latency (~14 ms from bus reception to finalized commit at
/// a 64 ms cycle with 1 kB payloads); see `EXPERIMENTS.md` for the
/// calibration notes.
///
/// All values are in **nanoseconds** of busy CPU time.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// One Ed25519 signature.
    pub sign_ns: u64,
    /// One Ed25519 verification.
    pub verify_ns: u64,
    /// SHA-256, per byte hashed.
    pub hash_per_byte_ns: u64,
    /// Serialization/deserialization, per byte.
    pub serde_per_byte_ns: u64,
    /// Fixed dispatch overhead per protocol message (syscalls, queueing,
    /// allocator).
    pub per_message_ns: u64,
    /// Fixed cost of parsing one bus telegram.
    pub telegram_parse_ns: u64,
    /// Fixed process memory baseline in bytes (binary, runtime, buffers) —
    /// added to the nodes' own accounting when reporting memory.
    pub process_base_bytes: usize,
    /// Number of CPU cores per node (the M-COM has 4); utilization is
    /// reported as a percentage of `cores × 100 %`.
    pub cores: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::cortex_a9()
    }
}

impl CostModel {
    /// The calibrated M-COM / Cortex-A9 model used for all evaluations.
    pub fn cortex_a9() -> Self {
        Self {
            sign_ns: 800_000,        // 0.8 ms
            verify_ns: 1_600_000,    // 1.6 ms
            hash_per_byte_ns: 80,    // ~64 cycles/byte at 800 MHz
            serde_per_byte_ns: 30,   // copy + Protobuf-equivalent framing
            per_message_ns: 150_000, // 0.15 ms dispatch overhead
            telegram_parse_ns: 20_000,
            process_base_bytes: 7 * 1024 * 1024,
            cores: 4,
        }
    }

    /// A model for the AWS `t2.xlarge` data-center VM (x86, much faster
    /// single-core crypto than the ARM nodes).
    pub fn aws_t2_xlarge() -> Self {
        Self {
            sign_ns: 60_000,
            verify_ns: 140_000,
            hash_per_byte_ns: 5,
            serde_per_byte_ns: 2,
            per_message_ns: 20_000,
            telegram_parse_ns: 2_000,
            process_base_bytes: 64 * 1024 * 1024,
            cores: 4,
        }
    }

    /// Cost of receiving and processing one protocol message of
    /// `bytes` length carrying `signatures` signatures to verify.
    pub fn receive_message_ns(&self, bytes: usize, signatures: usize) -> u64 {
        self.per_message_ns
            + self.verify_ns * signatures as u64
            + self.serde_per_byte_ns * bytes as u64
            + self.hash_per_byte_ns * bytes as u64 / 4 // digest of the payload part
    }

    /// Cost of producing and sending one message of `bytes` length that
    /// must be signed once.
    pub fn send_message_ns(&self, bytes: usize) -> u64 {
        self.per_message_ns / 2 + self.sign_ns + self.serde_per_byte_ns * bytes as u64
    }

    /// Cost of parsing and consolidating one bus cycle of `telegrams`
    /// telegrams totalling `bytes` payload bytes.
    pub fn bus_cycle_ns(&self, telegrams: usize, bytes: usize) -> u64 {
        self.telegram_parse_ns * telegrams as u64
            + self.serde_per_byte_ns * bytes as u64
            + self.hash_per_byte_ns * bytes as u64
    }

    /// Cost of hashing `bytes` (block creation, chain verification).
    pub fn hash_ns(&self, bytes: usize) -> u64 {
        self.hash_per_byte_ns * bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verification_dominates_reception() {
        let model = CostModel::cortex_a9();
        let with_sig = model.receive_message_ns(1024, 1);
        let without = model.receive_message_ns(1024, 0);
        assert_eq!(with_sig - without, model.verify_ns);
    }

    #[test]
    fn costs_scale_with_size() {
        let model = CostModel::cortex_a9();
        assert!(model.send_message_ns(8192) > model.send_message_ns(32));
        assert!(model.bus_cycle_ns(10, 1024) > model.bus_cycle_ns(1, 32));
    }

    #[test]
    fn datacenter_cpu_is_faster() {
        let arm = CostModel::cortex_a9();
        let x86 = CostModel::aws_t2_xlarge();
        assert!(x86.verify_ns < arm.verify_ns / 5);
    }
}
