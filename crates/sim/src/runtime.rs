//! A thread-per-node runtime driving the real state machines on real
//! time — the examples use this to run a live ZugChain cluster inside one
//! process, with crossbeam channels standing in for the testbed Ethernet.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use zugchain::{NodeConfig, ZugchainNode};
use zugchain_blockchain::{ChainStore, DiskStore};
use zugchain_crypto::{Digest, KeyPair, Keystore};
use zugchain_mvb::{Nsdb, Telegram};
use zugchain_pbft::{CheckpointProof, NodeId};
use zugchain_telemetry::{Registry, Telemetry, TraceStore};

use crate::node_loop::{node_loop, ChannelLink, LoopInput};

/// Events a running cluster reports to the caller.
#[derive(Debug, Clone)]
pub enum ClusterEvent {
    /// A request was appended to a node's log.
    Logged {
        /// Reporting node.
        node: NodeId,
        /// Sequence number.
        sn: u64,
        /// Origin node of the request.
        origin: NodeId,
        /// Payload length in bytes.
        payload_len: usize,
        /// Payload digest — lets callers compare decided sequences across
        /// runtimes without shipping payloads around.
        digest: Digest,
    },
    /// A block was created.
    BlockCreated {
        /// Reporting node.
        node: NodeId,
        /// Block height.
        height: u64,
        /// Block hash.
        hash: Digest,
    },
    /// A checkpoint became stable.
    CheckpointStable {
        /// Reporting node.
        node: NodeId,
        /// Checkpoint sequence number.
        sn: u64,
    },
    /// A view change completed.
    ViewChange {
        /// Reporting node.
        node: NodeId,
        /// The new view.
        view: u64,
        /// The new primary.
        primary: NodeId,
    },
}

/// Final state of one node after shutdown.
#[derive(Debug)]
pub struct NodeSummary {
    /// The node's id.
    pub id: NodeId,
    /// Its blockchain store.
    pub chain: ChainStore,
    /// Its stable checkpoint proofs.
    pub stable_proofs: Vec<CheckpointProof>,
    /// Its statistics counters.
    pub stats: zugchain::NodeStats,
}

/// A live cluster of ZugChain nodes, one OS thread each.
///
/// # Examples
///
/// ```no_run
/// use zugchain::NodeConfig;
/// use zugchain_sim::runtime::ThreadedCluster;
///
/// let cluster = ThreadedCluster::start(4, NodeConfig::evaluation_default());
/// cluster.feed_bus_payload_all(b"speed=120".to_vec());
/// std::thread::sleep(std::time::Duration::from_millis(200));
/// let summaries = cluster.shutdown();
/// assert_eq!(summaries.len(), 4);
/// ```
pub struct ThreadedCluster {
    inboxes: Vec<Sender<LoopInput>>,
    events: Receiver<ClusterEvent>,
    handles: Vec<JoinHandle<NodeSummary>>,
    registry: Arc<Registry>,
    telemetry: Vec<Telemetry>,
    traces: Arc<TraceStore>,
    /// The group keystore, exposed for export-side verification.
    pub keystore: Keystore,
    /// Node key pairs (exported so examples can build export handlers).
    pub pairs: Vec<KeyPair>,
}

impl ThreadedCluster {
    /// Starts `n` nodes with the default JRU signal configuration.
    pub fn start(n: usize, config: NodeConfig) -> Self {
        Self::start_with_nsdb(n, config, Nsdb::jru_default())
    }

    /// Starts `n` nodes that additionally persist every block durably to
    /// `dir/node-<id>/` (the JRU requirement that data survive power
    /// loss; §V-B reports ~5 ms per block write on the testbed).
    pub fn start_with_disk(n: usize, config: NodeConfig, dir: impl AsRef<std::path::Path>) -> Self {
        let dir = dir.as_ref().to_path_buf();
        Self::build(n, config, Nsdb::jru_default(), Some(dir))
    }

    /// Starts `n` nodes with an explicit NSDB.
    pub fn start_with_nsdb(n: usize, config: NodeConfig, nsdb: Nsdb) -> Self {
        Self::build(n, config, nsdb, None)
    }

    /// Restarts a cluster from the per-node block directories written by
    /// [`start_with_disk`](Self::start_with_disk) — the power-loss
    /// recovery path. Each node reloads and verifies its chain, resumes
    /// the block builder at the last *proven* block, and consensus
    /// continues after the last stable checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if a node's on-disk state is missing, corrupt, or carries
    /// no stable checkpoint.
    pub fn recover_from_disk(
        n: usize,
        config: NodeConfig,
        dir: impl AsRef<std::path::Path>,
    ) -> Self {
        let dir = dir.as_ref().to_path_buf();
        let (pairs, keystore) = Keystore::generate(n, 0xC10C);
        let (event_tx, event_rx) = unbounded();
        let registry = Arc::new(Registry::new());
        let traces = Arc::new(TraceStore::new());
        let telemetry: Vec<Telemetry> = (0..n)
            .map(|id| {
                Telemetry::new_with_store(
                    id as u64,
                    Arc::clone(&registry),
                    config.trace_capacity,
                    Some(Arc::clone(&traces)),
                )
            })
            .collect();
        let channels: Vec<(Sender<LoopInput>, Receiver<LoopInput>)> =
            (0..n).map(|_| bounded(4096)).collect();
        let inboxes: Vec<Sender<LoopInput>> = channels.iter().map(|(tx, _)| tx.clone()).collect();

        let handles = channels
            .into_iter()
            .enumerate()
            .map(|(id, (_, rx))| {
                let disk = DiskStore::open(dir.join(format!("node-{id}")))
                    .expect("open per-node block directory");
                let blocks = disk.load_chain().expect("disk chain loads and verifies");
                let proofs: Vec<zugchain_pbft::CheckpointProof> = disk
                    .load_proofs()
                    .expect("proofs load")
                    .into_iter()
                    .map(|(_, bytes)| zugchain_wire::from_bytes(&bytes).expect("proof decodes"))
                    .collect();
                // Keep the chain up to the last proven block; anything
                // after it lacked a stable checkpoint at power loss and
                // is recovered from peers via state transfer instead.
                let last_proven = proofs
                    .last()
                    .expect("recovery requires a stable checkpoint")
                    .checkpoint
                    .state_digest;
                let mut store = ChainStore::new();
                for block in blocks {
                    let hash = block.hash();
                    store.append(block).expect("verified chain appends");
                    if hash == last_proven {
                        break;
                    }
                }
                let node = ZugchainNode::recover(
                    id as u64,
                    config.clone(),
                    Nsdb::jru_default(),
                    pairs[id].clone(),
                    keystore.clone(),
                    store,
                    proofs,
                );
                let link = ChannelLink {
                    peers: inboxes.clone(),
                };
                let events = event_tx.clone();
                let node_telemetry = telemetry[id].clone();
                std::thread::Builder::new()
                    .name(format!("zugchain-node-{id}"))
                    .spawn(move || node_loop(node, rx, link, events, Some(disk), node_telemetry))
                    .expect("spawn node thread")
            })
            .collect();

        Self {
            inboxes,
            events: event_rx,
            handles,
            registry,
            telemetry,
            traces,
            keystore,
            pairs,
        }
    }

    fn build(
        n: usize,
        config: NodeConfig,
        nsdb: Nsdb,
        disk_dir: Option<std::path::PathBuf>,
    ) -> Self {
        let (pairs, keystore) = Keystore::generate(n, 0xC10C);
        let (event_tx, event_rx) = unbounded();
        let registry = Arc::new(Registry::new());
        let traces = Arc::new(TraceStore::new());
        let telemetry: Vec<Telemetry> = (0..n)
            .map(|id| {
                Telemetry::new_with_store(
                    id as u64,
                    Arc::clone(&registry),
                    config.trace_capacity,
                    Some(Arc::clone(&traces)),
                )
            })
            .collect();
        let channels: Vec<(Sender<LoopInput>, Receiver<LoopInput>)> =
            (0..n).map(|_| bounded(4096)).collect();
        let inboxes: Vec<Sender<LoopInput>> = channels.iter().map(|(tx, _)| tx.clone()).collect();

        let handles = channels
            .into_iter()
            .enumerate()
            .map(|(id, (_, rx))| {
                let node = ZugchainNode::new(
                    id as u64,
                    config.clone(),
                    nsdb.clone(),
                    pairs[id].clone(),
                    keystore.clone(),
                );
                let link = ChannelLink {
                    peers: inboxes.clone(),
                };
                let events = event_tx.clone();
                let disk = disk_dir.as_ref().map(|dir| {
                    DiskStore::open(dir.join(format!("node-{id}")))
                        .expect("create per-node block directory")
                });
                let node_telemetry = telemetry[id].clone();
                std::thread::Builder::new()
                    .name(format!("zugchain-node-{id}"))
                    .spawn(move || node_loop(node, rx, link, events, disk, node_telemetry))
                    .expect("spawn node thread")
            })
            .collect();

        Self {
            inboxes,
            events: event_rx,
            handles,
            registry,
            telemetry,
            traces,
            keystore,
            pairs,
        }
    }

    /// The cluster's shared metrics registry.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// A Prometheus-text snapshot of every node's metrics.
    pub fn metrics_text(&self) -> String {
        self.registry.render_prometheus()
    }

    /// JSONL flight-recorder dump of one node (empty when out of range).
    pub fn trace_jsonl(&self, node: usize) -> String {
        self.telemetry
            .get(node)
            .map(Telemetry::dump_jsonl)
            .unwrap_or_default()
    }

    /// JSONL causal-span dump of one node (empty when out of range).
    pub fn span_jsonl(&self, node: usize) -> String {
        self.telemetry
            .get(node)
            .map(Telemetry::span_jsonl)
            .unwrap_or_default()
    }

    /// The cluster-shared causal-span store, for cross-node trace
    /// assembly and the `/v1/trains/<id>/trace/<sn>` API endpoint.
    pub fn trace_store(&self) -> Arc<TraceStore> {
        Arc::clone(&self.traces)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// Returns `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }

    /// Delivers the same consolidated payload to every node, as if all
    /// read it from one bus cycle.
    pub fn feed_bus_payload_all(&self, payload: Vec<u8>) {
        for inbox in &self.inboxes {
            let _ = inbox.send(LoopInput::RawPayload(payload.clone()));
        }
    }

    /// Delivers a payload to one node only (diverging reception).
    pub fn feed_bus_payload(&self, node: usize, payload: Vec<u8>) {
        let _ = self.inboxes[node].send(LoopInput::RawPayload(payload));
    }

    /// Delivers one bus cycle's telegrams to a node.
    pub fn feed_telegrams(&self, node: usize, cycle: u64, time_ms: u64, telegrams: Vec<Telegram>) {
        let _ = self.inboxes[node].send(LoopInput::Telegrams {
            cycle,
            time_ms,
            telegrams,
        });
    }

    /// Crashes a node: it stops processing but its thread stays alive so
    /// its state can still be collected at shutdown.
    pub fn crash(&self, node: usize) {
        let _ = self.inboxes[node].send(LoopInput::Crash);
    }

    /// The event stream (logged requests, blocks, view changes).
    pub fn events(&self) -> &Receiver<ClusterEvent> {
        &self.events
    }

    /// Stops all nodes and returns their final state.
    pub fn shutdown(self) -> Vec<NodeSummary> {
        for inbox in &self.inboxes {
            let _ = inbox.send(LoopInput::Shutdown);
        }
        self.handles
            .into_iter()
            .map(|handle| handle.join().expect("node thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn threaded_cluster_orders_and_shuts_down() {
        let cluster = ThreadedCluster::start(4, NodeConfig::default_for_testing());
        for tag in 0..6u8 {
            cluster.feed_bus_payload_all(vec![tag; 64]);
            std::thread::sleep(Duration::from_millis(30));
        }
        std::thread::sleep(Duration::from_millis(300));
        let summaries = cluster.shutdown();
        assert_eq!(summaries.len(), 4);
        for summary in &summaries {
            assert_eq!(
                summary.stats.logged, 6,
                "node {} logged {}",
                summary.id.0, summary.stats.logged
            );
            assert_eq!(summary.chain.height(), 2, "block size 3 → 2 blocks");
        }
        // All chains agree.
        let head = summaries[0].chain.head_hash();
        assert!(summaries.iter().all(|s| s.chain.head_hash() == head));
    }

    #[test]
    fn crashed_primary_is_replaced_live() {
        let cluster = ThreadedCluster::start(4, NodeConfig::default_for_testing());
        cluster.feed_bus_payload_all(b"before".to_vec());
        std::thread::sleep(Duration::from_millis(150));
        cluster.crash(0);
        // Only the surviving nodes read this payload.
        for node in 1..4 {
            cluster.feed_bus_payload(node, b"after-crash".to_vec());
        }
        std::thread::sleep(Duration::from_millis(800));
        let mut view_changed = false;
        while let Ok(event) = cluster.events().try_recv() {
            if let ClusterEvent::ViewChange { view, .. } = event {
                assert!(view >= 1);
                view_changed = true;
            }
        }
        let summaries = cluster.shutdown();
        assert!(view_changed, "view change must be reported");
        assert!(
            summaries[1].stats.logged >= 2,
            "survivors logged both payloads"
        );
    }
}

#[cfg(test)]
mod disk_tests {
    use super::*;
    use std::time::{Duration, Instant};
    use zugchain_blockchain::DiskStore;

    #[test]
    fn blocks_survive_power_loss_on_disk() {
        let dir =
            std::env::temp_dir().join(format!("zugchain-runtime-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let config = NodeConfig::evaluation_default().with_block_size(3);
        let cluster = ThreadedCluster::start_with_disk(4, config, &dir);
        for tag in 0..6u8 {
            cluster.feed_bus_payload_all(vec![tag; 64]);
            std::thread::sleep(Duration::from_millis(30));
        }
        // Wait until every node has reported two durable blocks.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut done = [0u64; 4];
        while done.iter().any(|h| *h < 2) && Instant::now() < deadline {
            if let Ok(ClusterEvent::BlockCreated { node, height, .. }) =
                cluster.events().recv_timeout(Duration::from_millis(200))
            {
                done[node.0 as usize] = done[node.0 as usize].max(height);
            }
        }
        let summaries = cluster.shutdown();

        // "Power loss": all that remains are the on-disk directories.
        for summary in &summaries {
            let store = DiskStore::open(dir.join(format!("node-{}", summary.id.0))).unwrap();
            let chain = store.load_chain().expect("disk chain loads and verifies");
            assert_eq!(chain.len(), 2, "node {}", summary.id.0);
            assert_eq!(
                chain.last().unwrap().hash(),
                summary.chain.get(2).unwrap().hash(),
                "disk matches in-memory chain"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// Full power-loss drill: run, lose power, restart from disk, keep
    /// recording — one continuous verified chain across the outage.
    #[test]
    fn cluster_recovers_from_power_loss_and_continues_the_chain() {
        let dir = std::env::temp_dir().join(format!("zugchain-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = NodeConfig::evaluation_default().with_block_size(3);

        // --- Before the outage: order 6 requests = 2 durable blocks.
        let cluster = ThreadedCluster::start_with_disk(4, config.clone(), &dir);
        for tag in 0..6u8 {
            cluster.feed_bus_payload_all(vec![tag; 64]);
            std::thread::sleep(Duration::from_millis(30));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut proven = [0u64; 4];
        while proven.iter().any(|sn| *sn < 6) && Instant::now() < deadline {
            if let Ok(ClusterEvent::CheckpointStable { node, sn }) =
                cluster.events().recv_timeout(Duration::from_millis(200))
            {
                proven[node.0 as usize] = proven[node.0 as usize].max(sn);
            }
        }
        let before = cluster.shutdown(); // power loss
        let head_before = before[0].chain.head_hash();
        assert_eq!(before[0].chain.height(), 2);

        // --- After the outage: restart from disk only.
        let recovered = ThreadedCluster::recover_from_disk(4, config, &dir);
        for tag in 10..16u8 {
            recovered.feed_bus_payload_all(vec![tag; 64]);
            std::thread::sleep(Duration::from_millis(30));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut heights = [0u64; 4];
        while heights.iter().any(|h| *h < 4) && Instant::now() < deadline {
            if let Ok(ClusterEvent::BlockCreated { node, height, .. }) =
                recovered.events().recv_timeout(Duration::from_millis(200))
            {
                heights[node.0 as usize] = heights[node.0 as usize].max(height);
            }
        }
        let after = recovered.shutdown();

        for summary in &after {
            assert_eq!(summary.chain.height(), 4, "node {}", summary.id.0);
            // The pre-outage blocks are the prefix of the recovered chain.
            assert_eq!(summary.chain.get(2).unwrap().hash(), head_before);
            assert!(zugchain_blockchain::verify_chain(summary.chain.blocks(), None).is_ok());
        }
        // And the full chain on disk verifies end to end.
        let disk = DiskStore::open(dir.join("node-0")).unwrap();
        let chain = disk.load_chain().unwrap();
        assert_eq!(chain.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pre-restart payloads must not be logged twice after recovery (the
    /// dedup filter is re-seeded from the reloaded blocks).
    #[test]
    fn recovery_reseeds_the_duplicate_filter() {
        let dir = std::env::temp_dir().join(format!("zugchain-reseed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = NodeConfig::evaluation_default().with_block_size(3);

        let cluster = ThreadedCluster::start_with_disk(4, config.clone(), &dir);
        for tag in 0..3u8 {
            cluster.feed_bus_payload_all(vec![tag; 64]);
            std::thread::sleep(Duration::from_millis(30));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut proven = false;
        while !proven && Instant::now() < deadline {
            if let Ok(ClusterEvent::CheckpointStable { sn: 3, .. }) =
                cluster.events().recv_timeout(Duration::from_millis(200))
            {
                proven = true;
            }
        }
        cluster.shutdown();

        let recovered = ThreadedCluster::recover_from_disk(4, config, &dir);
        // A delayed bus frame re-delivers a pre-outage payload.
        recovered.feed_bus_payload_all(vec![1u8; 64]);
        std::thread::sleep(Duration::from_millis(400));
        let after = recovered.shutdown();
        for summary in &after {
            assert_eq!(
                summary.stats.logged, 0,
                "node {} re-logged a pre-outage payload",
                summary.id.0
            );
            assert!(summary.stats.duplicates_filtered >= 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
