//! A TCP transport for ZugChain clusters: the same node state machines as
//! [`runtime`](crate::runtime), but with consensus traffic carried over
//! real sockets in the canonical wire encoding — the shape of an actual
//! deployment on the train's Ethernet.
//!
//! Frames are length-prefixed: a big-endian `u32` byte count followed by
//! the canonical [`NodeMessage`] encoding. Malformed frames from a peer
//! are dropped (and the connection closed), never trusted.
//!
//! Outbound frames come from the shared [`node_loop`](crate::node_loop)
//! as [`Frame`]s: a broadcast encodes (and signs) the message **once**
//! and writes the same cached buffer to every peer socket, instead of
//! re-encoding per recipient.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use zugchain::{NodeConfig, NodeMessage, ZugchainNode};
use zugchain_api::{ApiConfig, ApiServer, Backend};
use zugchain_crypto::Keystore;
use zugchain_machine::Frame;
use zugchain_mvb::Nsdb;
use zugchain_telemetry::{Registry, Telemetry, TraceStore};
use zugchain_wire::{decode_traced, derive_span_id, derive_trace_id, TraceCtx};

use crate::node_loop::{node_loop, LoopInput, PeerLink};
use crate::runtime::{ClusterEvent, NodeSummary};

/// Maximum accepted frame size (matches the wire crate's field limit).
const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// The trace context a frame carries on the wire. Request broadcasts name
/// the trace of the request they carry (derived from the same identity
/// every layer uses — the TCP harness runs one unlabelled train, id 0 —
/// and parented on the origin's `submit` span); everything else rides
/// bare, exactly as the legacy format, so mixed-version peers interop.
fn frame_trace_ctx(message: &NodeMessage) -> TraceCtx {
    match message {
        NodeMessage::Layer(layer) => {
            let request = &layer.request().request;
            if request.is_noop() {
                return TraceCtx::NONE;
            }
            let trace_id =
                derive_trace_id(0, request.origin.0, request.payload_digest().as_bytes());
            TraceCtx {
                trace_id,
                parent_span: derive_span_id(trace_id, "submit", request.origin.0),
            }
        }
        NodeMessage::Consensus(_) => TraceCtx::NONE,
    }
}

/// Writes one length-prefixed frame. The frame's inner encoding is
/// computed at most once and shared across every peer this frame is
/// written to; traced frames additionally carry the 17-byte envelope
/// (`magic ‖ TraceCtx`) in front of the unchanged inner bytes.
fn write_frame(stream: &mut TcpStream, frame: &Frame<NodeMessage>) -> io::Result<()> {
    let bytes = frame.bytes();
    let ctx = frame_trace_ctx(frame.message());
    let payload: std::borrow::Cow<'_, [u8]> = if ctx.is_traced() {
        std::borrow::Cow::Owned(zugchain_wire::encode_traced(ctx, &bytes))
    } else {
        std::borrow::Cow::Borrowed(&bytes)
    };
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(&payload)?;
    Ok(())
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF. Frames in
/// the traced envelope yield their carried [`TraceCtx`]; legacy bare
/// frames decode unchanged with [`TraceCtx::NONE`].
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<(TraceCtx, NodeMessage)>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    let (ctx, inner) = decode_traced(&buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    zugchain_wire::from_bytes(inner)
        .map(|message| Some((ctx, message)))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// The socket link: frames leave as length-prefixed canonical bytes.
struct TcpLink {
    streams: Vec<Option<Mutex<TcpStream>>>,
}

impl PeerLink for TcpLink {
    fn peer_count(&self) -> usize {
        self.streams.len()
    }

    fn deliver(&mut self, to: usize, frame: &Frame<NodeMessage>) {
        if let Some(Some(stream)) = self.streams.get(to) {
            let mut stream = stream.lock().expect("stream lock");
            // A failed peer write is a dead link, not a node error.
            let _ = write_frame(&mut stream, frame);
        }
    }
}

/// A live ZugChain cluster whose replica network is real TCP on loopback.
///
/// # Examples
///
/// ```no_run
/// use zugchain::NodeConfig;
/// use zugchain_sim::tcp::TcpCluster;
///
/// # fn main() -> std::io::Result<()> {
/// let cluster = TcpCluster::start(4, NodeConfig::evaluation_default())?;
/// cluster.feed_bus_payload_all(b"cycle 0".to_vec());
/// std::thread::sleep(std::time::Duration::from_millis(300));
/// let summaries = cluster.shutdown();
/// assert_eq!(summaries.len(), 4);
/// # Ok(())
/// # }
/// ```
pub struct TcpCluster {
    inboxes: Vec<Sender<LoopInput>>,
    events: Receiver<ClusterEvent>,
    handles: Vec<JoinHandle<NodeSummary>>,
    registry: Arc<Registry>,
    telemetry: Vec<Telemetry>,
    traces: Arc<TraceStore>,
    status: ApiServer,
    /// Socket addresses the nodes listen on, by node id.
    pub addresses: Vec<SocketAddr>,
    /// Address of the live status server: `GET /metrics` returns the
    /// cluster's Prometheus-text snapshot (`GET /healthz` for liveness).
    /// This is a [`zugchain_api::ApiServer`] with no archive backend —
    /// the same exposition path the fleet's query front end uses.
    pub status_address: SocketAddr,
}

impl TcpCluster {
    /// Starts `n` nodes listening on loopback and fully meshed over TCP.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding, accepting, or connecting.
    pub fn start(n: usize, config: NodeConfig) -> io::Result<Self> {
        let (pairs, keystore) = Keystore::generate(n, 0x7C9);
        let (event_tx, event_rx) = unbounded();
        let registry = Arc::new(Registry::new());
        let traces = Arc::new(TraceStore::new());
        let telemetry: Vec<Telemetry> = (0..n)
            .map(|id| {
                Telemetry::new_with_store(
                    id as u64,
                    Arc::clone(&registry),
                    config.trace_capacity,
                    Some(Arc::clone(&traces)),
                )
            })
            .collect();

        // The live read path: the API server with no archive behind it
        // serves `/metrics` (and `/healthz`) over real HTTP — one
        // exposition path shared with the fleet query front end.
        let status = ApiServer::start(ApiConfig::open(), Backend::None, Arc::clone(&registry))?;
        let status_address = status.address();

        // Bind every node's listener first so all addresses are known.
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addresses: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<io::Result<_>>()?;

        let mut inboxes = Vec::with_capacity(n);
        let mut inbox_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<LoopInput>(4096);
            inboxes.push(tx);
            inbox_rxs.push(rx);
        }

        // Full mesh: node i owns outbound connections to every peer.
        // Connect in index order while acceptor threads feed inbound
        // frames to the owning node's inbox.
        let mut acceptors = Vec::new();
        for (id, listener) in listeners.into_iter().enumerate() {
            let inbox = inboxes[id].clone();
            let expected = n - 1;
            acceptors.push(std::thread::spawn(move || -> io::Result<()> {
                for _ in 0..expected {
                    let (mut stream, _) = listener.accept()?;
                    stream.set_nodelay(true)?;
                    let inbox = inbox.clone();
                    std::thread::spawn(move || loop {
                        match read_frame(&mut stream) {
                            // The context is advisory: every layer
                            // re-derives the same ids from data it holds.
                            Ok(Some((_ctx, message))) => {
                                if inbox.send(LoopInput::Message(message)).is_err() {
                                    return;
                                }
                            }
                            Ok(None) | Err(_) => return,
                        }
                    });
                }
                Ok(())
            }));
        }

        let mut outbound: Vec<Vec<Option<Mutex<TcpStream>>>> = Vec::with_capacity(n);
        for id in 0..n {
            let mut streams = Vec::with_capacity(n);
            for (peer, address) in addresses.iter().enumerate() {
                if peer == id {
                    streams.push(None);
                } else {
                    let stream = TcpStream::connect(address)?;
                    stream.set_nodelay(true)?;
                    streams.push(Some(Mutex::new(stream)));
                }
            }
            outbound.push(streams);
        }
        for acceptor in acceptors {
            acceptor
                .join()
                .map_err(|_| io::Error::other("acceptor panicked"))??;
        }

        let handles = inbox_rxs
            .into_iter()
            .enumerate()
            .map(|(id, rx)| {
                let node = ZugchainNode::new(
                    id as u64,
                    config.clone(),
                    Nsdb::jru_default(),
                    pairs[id].clone(),
                    keystore.clone(),
                );
                let link = TcpLink {
                    streams: std::mem::take(&mut outbound[id]),
                };
                let events = event_tx.clone();
                let node_telemetry = telemetry[id].clone();
                std::thread::Builder::new()
                    .name(format!("zugchain-tcp-{id}"))
                    .spawn(move || node_loop(node, rx, link, events, None, node_telemetry))
                    .expect("spawn node thread")
            })
            .collect();

        Ok(Self {
            inboxes,
            events: event_rx,
            handles,
            registry,
            telemetry,
            traces,
            status,
            addresses,
            status_address,
        })
    }

    /// The cluster's shared metrics registry.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// A Prometheus-text snapshot of every node's metrics (the same text
    /// the status responder serves on [`status_address`](Self::status_address)).
    pub fn metrics_text(&self) -> String {
        self.registry.render_prometheus()
    }

    /// JSONL flight-recorder dump of one node (empty when out of range).
    pub fn trace_jsonl(&self, node: usize) -> String {
        self.telemetry
            .get(node)
            .map(Telemetry::dump_jsonl)
            .unwrap_or_default()
    }

    /// JSONL causal-span dump of one node (empty when out of range).
    pub fn span_jsonl(&self, node: usize) -> String {
        self.telemetry
            .get(node)
            .map(Telemetry::span_jsonl)
            .unwrap_or_default()
    }

    /// The cluster-shared causal-span store, for cross-node trace
    /// assembly.
    pub fn trace_store(&self) -> Arc<TraceStore> {
        Arc::clone(&self.traces)
    }

    /// Delivers the same consolidated payload to every node.
    pub fn feed_bus_payload_all(&self, payload: Vec<u8>) {
        for inbox in &self.inboxes {
            let _ = inbox.send(LoopInput::RawPayload(payload.clone()));
        }
    }

    /// Delivers a payload to one node only (diverging reception).
    pub fn feed_bus_payload(&self, node: usize, payload: Vec<u8>) {
        let _ = self.inboxes[node].send(LoopInput::RawPayload(payload));
    }

    /// Crashes a node: it stops processing but its thread stays alive so
    /// its state can still be collected at shutdown.
    pub fn crash(&self, node: usize) {
        let _ = self.inboxes[node].send(LoopInput::Crash);
    }

    /// The event stream.
    pub fn events(&self) -> &Receiver<ClusterEvent> {
        &self.events
    }

    /// Stops all nodes and returns their final state.
    pub fn shutdown(mut self) -> Vec<NodeSummary> {
        for inbox in &self.inboxes {
            let _ = inbox.send(LoopInput::Shutdown);
        }
        self.status.stop();
        self.handles
            .into_iter()
            .map(|handle| handle.join().expect("node thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};
    use zugchain_pbft::NodeId;

    /// Per-node block progress from the registry; used both to converge
    /// and to produce a useful timeout diagnostic.
    fn blocks_by_node(cluster: &TcpCluster, n: usize) -> Vec<u64> {
        let registry = cluster.registry();
        (0..n)
            .map(|i| {
                let node = i.to_string();
                registry
                    .counter_value("zugchain_node_blocks_total", &[("node", node.as_str())])
                    .unwrap_or(0)
            })
            .collect()
    }

    fn decided_up_to_by_node(cluster: &TcpCluster, n: usize) -> Vec<i64> {
        let registry = cluster.registry();
        (0..n)
            .map(|i| {
                let node = i.to_string();
                registry
                    .gauge_value("zugchain_pbft_decided_up_to", &[("node", node.as_str())])
                    .unwrap_or(0)
            })
            .collect()
    }

    #[test]
    fn tcp_cluster_orders_over_real_sockets() {
        let config = NodeConfig::evaluation_default().with_block_size(3);
        let cluster = TcpCluster::start(4, config).expect("loopback sockets");
        for tag in 0..6u8 {
            cluster.feed_bus_payload_all(vec![tag; 128]);
            std::thread::sleep(Duration::from_millis(25));
        }
        // Short-sleep poll against the registry until every node has
        // built block #2; on timeout, report per-node progress instead
        // of failing bare.
        let deadline = Instant::now() + Duration::from_secs(10);
        while blocks_by_node(&cluster, 4).iter().any(|blocks| *blocks < 2) {
            if Instant::now() >= deadline {
                panic!(
                    "cluster did not converge: blocks per node {:?}, decided_up_to per node {:?}",
                    blocks_by_node(&cluster, 4),
                    decided_up_to_by_node(&cluster, 4),
                );
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        // The live read path serves the same snapshot over HTTP: the
        // status socket is a real API server scraping `GET /metrics`.
        let mut status = zugchain_api::HttpClient::new(cluster.status_address);
        let health = status.get("/healthz", None).expect("GET /healthz");
        assert_eq!(health.status, 200);
        let response = status.get("/metrics", None).expect("GET /metrics");
        assert_eq!(response.status, 200);
        let exposition = response.text();
        assert!(exposition.contains("zugchain_pbft_decided_total"));
        assert!(exposition.contains("zugchain_node_blocks_total"));
        zugchain_telemetry::parse_prometheus(&exposition).expect("exposition parses");

        let summaries = cluster.shutdown();
        let head = summaries[0].chain.head_hash();
        for summary in &summaries {
            assert_eq!(summary.chain.height(), 2, "node {}", summary.id.0);
            assert_eq!(summary.chain.head_hash(), head);
            assert_eq!(summary.stats.logged, 6);
        }
    }

    #[test]
    fn frame_codec_round_trips_and_rejects_oversize() {
        // Codec-level check without sockets: encode, then decode through
        // a loopback pair.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let address = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(address).unwrap();
            let (pairs, _) = Keystore::generate(1, 1);
            let message = NodeMessage::Layer(zugchain::LayerMessage::BroadcastRequest(
                zugchain::SignedRequest::sign(
                    zugchain_pbft::ProposedRequest::application(vec![7; 64], NodeId(0)),
                    &pairs[0],
                ),
            ));
            write_frame(&mut stream, &Frame::new(message.clone())).unwrap();
            message
        });
        let (mut conn, _) = listener.accept().unwrap();
        let (ctx, received) = read_frame(&mut conn).unwrap().expect("one frame");
        let sent = sender.join().unwrap();
        assert_eq!(received, sent);
        // A request broadcast rides in the traced envelope: the carried
        // context is the deterministic derivation from the request's
        // identity, parented on the origin's submit span.
        assert!(ctx.is_traced());
        assert_eq!(ctx, frame_trace_ctx(&sent));
        // EOF is a clean None.
        assert!(read_frame(&mut conn).unwrap().is_none());
    }

    /// Legacy bare frames (no traced envelope) must keep decoding: a
    /// pre-envelope peer's bytes come back as the same message with
    /// [`TraceCtx::NONE`].
    #[test]
    fn bare_legacy_frame_decodes_with_untraced_ctx() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let address = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(address).unwrap();
            let (pairs, _) = Keystore::generate(1, 3);
            let message = NodeMessage::Layer(zugchain::LayerMessage::BroadcastRequest(
                zugchain::SignedRequest::sign(
                    zugchain_pbft::ProposedRequest::application(vec![5; 32], NodeId(0)),
                    &pairs[0],
                ),
            ));
            // Write the legacy format by hand: length prefix + canonical
            // bytes, no envelope.
            let bytes = zugchain_wire::to_bytes(&message);
            let len = u32::try_from(bytes.len()).unwrap();
            stream.write_all(&len.to_be_bytes()).unwrap();
            stream.write_all(&bytes).unwrap();
            message
        });
        let (mut conn, _) = listener.accept().unwrap();
        let (ctx, received) = read_frame(&mut conn).unwrap().expect("one frame");
        assert_eq!(ctx, TraceCtx::NONE);
        assert_eq!(received, sender.join().unwrap());
    }

    /// Regression for the per-peer re-encoding bug: broadcasting one
    /// frame to three peers must wire-encode the message exactly once —
    /// the byte buffer is cached in the frame and shared by every socket
    /// write.
    #[test]
    fn broadcast_frame_encodes_once_across_three_peers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let address = listener.local_addr().unwrap();

        let writer = std::thread::spawn(move || {
            let (pairs, _) = Keystore::generate(1, 2);
            let message = NodeMessage::Layer(zugchain::LayerMessage::BroadcastRequest(
                zugchain::SignedRequest::sign(
                    zugchain_pbft::ProposedRequest::application(vec![9; 256], NodeId(0)),
                    &pairs[0],
                ),
            ));
            let frame = Frame::new(message);
            assert_eq!(frame.encode_count(), 0, "lazily encoded");
            let mut link = TcpLink {
                streams: (0..3)
                    .map(|_| {
                        let stream = TcpStream::connect(address).unwrap();
                        Some(Mutex::new(stream))
                    })
                    .collect(),
            };
            for peer in 0..3 {
                link.deliver(peer, &frame);
            }
            frame.encode_count()
        });

        let mut received = Vec::new();
        for _ in 0..3 {
            let (mut conn, _) = listener.accept().unwrap();
            let (_ctx, message) = read_frame(&mut conn).unwrap().expect("one frame");
            received.push(message);
        }
        let encodes = writer.join().unwrap();
        assert_eq!(encodes, 1, "one broadcast, one encode, three writes");
        assert!(received.iter().all(|m| *m == received[0]));
    }
}
