//! The one threaded node event loop.
//!
//! The channel runtime ([`runtime`](crate::runtime)) and the TCP mesh
//! ([`tcp`](crate::tcp)) used to carry two near-identical copies of the
//! same loop: receive with a timeout, fire due timers, match over node
//! actions. Both now share this module — a `zugchain_machine::Driver`
//! over [`TrainMachine<ZugchainNode>`] plus a [`PeerLink`] that captures
//! the only real difference between them: how a [`Frame`] reaches a peer.
//!
//! Channels deliver by cloning the message out of the frame (never
//! encoding); TCP writes [`Frame::bytes`] — computed once per broadcast —
//! to every socket.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use zugchain::{
    NodeEvent, NodeInput, NodeMessage, NodeObserver, TimerId, TrainMachine, TrainNode as _,
    ZugchainNode,
};
use zugchain_blockchain::DiskStore;
use zugchain_crypto::Digest;
use zugchain_machine::{Driver, Frame, Host};
use zugchain_mvb::Telegram;
use zugchain_pbft::NodeId;
use zugchain_telemetry::Telemetry;

use crate::runtime::{ClusterEvent, NodeSummary};

/// Input to a threaded node loop, shared by both transports.
#[derive(Debug)]
pub(crate) enum LoopInput {
    /// A consolidated bus payload delivered to this node.
    RawPayload(Vec<u8>),
    /// Telegrams of one bus cycle.
    Telegrams {
        cycle: u64,
        time_ms: u64,
        telegrams: Vec<Telegram>,
    },
    /// A network message from a peer.
    Message(NodeMessage),
    /// Crash the node (stop processing, keep the thread for state
    /// collection).
    Crash,
    /// Stop and report state.
    Shutdown,
}

/// How outbound frames leave a node — the only transport-specific part of
/// the loop.
pub(crate) trait PeerLink {
    /// Cluster size (including this node).
    fn peer_count(&self) -> usize;

    /// Delivers `frame` to peer `to` (never called with `to == self`).
    fn deliver(&mut self, to: usize, frame: &Frame<NodeMessage>);
}

/// A crossbeam-channel link: in-process delivery clones the message out
/// of the frame; nothing is ever wire-encoded.
pub(crate) struct ChannelLink {
    pub(crate) peers: Vec<Sender<LoopInput>>,
}

impl PeerLink for ChannelLink {
    fn peer_count(&self) -> usize {
        self.peers.len()
    }

    fn deliver(&mut self, to: usize, frame: &Frame<NodeMessage>) {
        if let Some(sender) = self.peers.get(to) {
            let _ = sender.send(LoopInput::Message(frame.to_message()));
        }
    }
}

/// The runtime-mechanics side of the driver: frames go through the link,
/// timers into a deadline map served by `recv_timeout`, outputs onto the
/// cluster event stream (with blocks persisted *before* being reported).
struct ThreadHost<'a, T: PeerLink> {
    id: NodeId,
    link: &'a mut T,
    deadlines: &'a mut BTreeMap<TimerId, (Instant, u64)>,
    events: &'a Sender<ClusterEvent>,
    disk: Option<&'a DiskStore>,
}

impl<T: PeerLink> Host<TrainMachine<ZugchainNode>> for ThreadHost<'_, T> {
    fn send(&mut self, to: NodeId, frame: &Frame<NodeMessage>) {
        if to != self.id && (to.0 as usize) < self.link.peer_count() {
            self.link.deliver(to.0 as usize, frame);
        }
    }

    fn broadcast(&mut self, frame: &Frame<NodeMessage>) {
        for peer in 0..self.link.peer_count() {
            if peer as u64 != self.id.0 {
                self.link.deliver(peer, frame);
            }
        }
    }

    fn set_timer(&mut self, id: TimerId, gen: u64, duration_ms: u64) {
        self.deadlines.insert(
            id,
            (Instant::now() + Duration::from_millis(duration_ms), gen),
        );
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.deadlines.remove(&id);
    }

    fn output(&mut self, output: NodeEvent) {
        match output {
            NodeEvent::Logged {
                sn,
                origin,
                payload,
            } => {
                let _ = self.events.send(ClusterEvent::Logged {
                    node: self.id,
                    sn,
                    origin,
                    payload_len: payload.len(),
                    digest: Digest::of(&payload),
                });
            }
            NodeEvent::BlockCreated { block } => {
                if let Some(disk) = self.disk {
                    // Durable before reported: a block is only announced
                    // once it would survive power loss.
                    disk.write_block(&block).expect("persist block");
                }
                let _ = self.events.send(ClusterEvent::BlockCreated {
                    node: self.id,
                    height: block.height(),
                    hash: block.hash(),
                });
            }
            NodeEvent::CheckpointStable { proof } => {
                if let Some(disk) = self.disk {
                    disk.write_proof(proof.checkpoint.sn, &zugchain_wire::to_bytes(&proof))
                        .expect("persist checkpoint proof");
                }
                let _ = self.events.send(ClusterEvent::CheckpointStable {
                    node: self.id,
                    sn: proof.checkpoint.sn,
                });
            }
            NodeEvent::NewPrimary { view, primary } => {
                let _ = self.events.send(ClusterEvent::ViewChange {
                    node: self.id,
                    view,
                    primary,
                });
            }
            NodeEvent::StateTransferNeeded { .. } => {}
        }
    }
}

/// The per-node event loop: inputs in, effects routed by the driver,
/// timers via `recv_timeout` against the earliest deadline.
pub(crate) fn node_loop<T: PeerLink>(
    mut node: ZugchainNode,
    inbox: Receiver<LoopInput>,
    mut link: T,
    events: Sender<ClusterEvent>,
    disk: Option<DiskStore>,
    telemetry: Telemetry,
) -> NodeSummary {
    let id = node.id();
    let start = Instant::now();
    node.set_telemetry(&telemetry);
    // A node thread that dies mid-run leaves its last events on stderr.
    telemetry.dump_on_panic();
    let mut driver = Driver::with_observer(
        TrainMachine(node),
        Box::new(NodeObserver::new(telemetry.clone())),
    );
    let mut deadlines: BTreeMap<TimerId, (Instant, u64)> = BTreeMap::new();
    let mut crashed = false;

    loop {
        // Live runtimes stamp traces with wall time since cluster start.
        telemetry.set_time_ms(start.elapsed().as_millis() as u64);
        let now = Instant::now();
        let timeout = deadlines
            .values()
            .map(|(deadline, _)| deadline.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_millis(100));

        let input = match inbox.recv_timeout(timeout) {
            Ok(LoopInput::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
            Ok(LoopInput::Crash) => {
                crashed = true;
                deadlines.clear();
                driver.clear_timers();
                None
            }
            Ok(input) if crashed => {
                drop(input);
                None
            }
            Ok(LoopInput::RawPayload(payload)) => Some(NodeInput::RawPayload {
                payload,
                time_ms: start.elapsed().as_millis() as u64,
            }),
            Ok(LoopInput::Telegrams {
                cycle,
                time_ms,
                telegrams,
            }) => Some(NodeInput::BusCycle {
                source: 0,
                cycle,
                time_ms,
                telegrams,
            }),
            Ok(LoopInput::Message(message)) => Some(NodeInput::Message(message)),
            Err(RecvTimeoutError::Timeout) => None,
        };

        if let Some(input) = input {
            let mut host = ThreadHost {
                id,
                link: &mut link,
                deadlines: &mut deadlines,
                events: &events,
                disk: disk.as_ref(),
            };
            driver.on_input(input, &mut host);
        }

        // Fire due timers.
        if !crashed {
            let now = Instant::now();
            let due: Vec<(TimerId, u64)> = deadlines
                .iter()
                .filter(|(_, (deadline, _))| *deadline <= now)
                .map(|(timer, (_, gen))| (*timer, *gen))
                .collect();
            for (timer, gen) in due {
                // A previously fired timer may have re-armed this one: only
                // consume the deadline if it still belongs to `gen`.
                match deadlines.get(&timer) {
                    Some((_, current)) if *current == gen => deadlines.remove(&timer),
                    _ => continue,
                };
                let mut host = ThreadHost {
                    id,
                    link: &mut link,
                    deadlines: &mut deadlines,
                    events: &events,
                    disk: disk.as_ref(),
                };
                driver.on_timer_fired(timer, gen, &mut host);
            }
        }
    }

    let mut node = driver.into_machine().0;
    NodeSummary {
        id,
        stats: node.stats(),
        stable_proofs: node.stable_proofs().to_vec(),
        chain: std::mem::take(node.chain_mut()),
    }
}
