//! Fleet serving smoke: boot, archive, serve, and read back over HTTP —
//! the CI `api-smoke` job's subject.
//!
//! ```text
//! api_smoke [--out DIR] [--trains N] [--segments N] [--seed N]
//! ```
//!
//! Drives N simulated trains through record → export → sharded archive
//! ([`zugchain_sim::fleet`]), starts the [`zugchain_api`] front end over
//! the shared archive (bearer token + per-client rate limit), and then
//! acts as a reader over real HTTP:
//!
//! * queries the fleet inventory, a block page, and a timeline for
//!   train 1 (printing `api-timeline:` with the served event count);
//! * downloads train 1's head audit bundle and writes the bytes *as
//!   fetched* to `DIR/train-1-head.zab`, plus the train's replica key
//!   file to `DIR/train-1-keys.txt`, so CI pipes the download into
//!   `zugchain-audit --train 1 -` for offline stdin verification;
//! * asserts a 401 without the token and at least one 429 past the
//!   configured rate limit;
//! * fetches `/metrics`, writes it to `DIR/metrics.prom`, and diffs the
//!   summed `zugchain_api_requests_total` counters against its own count
//!   of issued requests (`api-check:` line) — the exposition must tell
//!   exactly the client's story.
//!
//! Exits non-zero on any mismatch.

use std::path::PathBuf;
use std::process::ExitCode;

use zugchain_api::{ApiConfig, HttpClient};
use zugchain_archive::keyfile;
use zugchain_sim::fleet::{run_fleet_instrumented, FleetConfig, REPLICA_QUORUM};
use zugchain_wire::TrainId;

const TOKEN: &str = "smoke-reader-token";
/// Sustained per-client allowance; the hammer phase sends well past the
/// matching burst to force 429s.
const RATE_PER_SEC: u64 = 50;

struct Args {
    out: PathBuf,
    trains: usize,
    segments: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("api-out"),
        trains: 4,
        segments: 2,
        seed: 0xF1EE7,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--trains" => args.trains = value("--trains")?.parse().map_err(|e| format!("{e}"))?,
            "--segments" => {
                args.segments = value("--segments")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => {
                println!("usage: api_smoke [--out DIR] [--trains N] [--segments N] [--seed N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.trains == 0 || args.segments == 0 {
        return Err("--trains and --segments must be at least 1".to_string());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let config = FleetConfig {
        n_trains: args.trains,
        segments_per_train: args.segments,
        seed: args.seed,
        ..FleetConfig::default()
    };
    let (outcome, registry) = run_fleet_instrumented(&config);
    if !outcome.all_archived() {
        return Err("fleet run did not fully archive".to_string());
    }
    let server = outcome
        .serve(
            ApiConfig {
                tokens: vec![TOKEN.to_string()],
                rate_per_sec: RATE_PER_SEC,
                rate_burst: RATE_PER_SEC,
                ..ApiConfig::open()
            },
            registry,
        )
        .map_err(|e| format!("start api server: {e}"))?;
    println!("api-server: address={}", server.address());
    std::fs::create_dir_all(&args.out).map_err(|e| format!("create {:?}: {e}", args.out))?;

    // A reader that counts every request it issues, to diff against the
    // server's exposition at the end.
    struct Reader {
        client: HttpClient,
        issued: u64,
    }
    impl Reader {
        fn get(
            &mut self,
            path: &str,
            token: Option<&str>,
        ) -> Result<zugchain_api::ClientResponse, String> {
            self.issued += 1;
            self.client
                .get(path, token)
                .map_err(|e| format!("GET {path}: {e}"))
        }
    }
    let mut reader = Reader {
        client: HttpClient::new(server.address()),
        issued: 0,
    };

    // --- Authenticated read path. ---
    let trains = reader.get("/v1/trains", Some(TOKEN))?;
    if trains.status != 200 {
        return Err(format!("/v1/trains: status {}", trains.status));
    }
    println!(
        "api-trains: status={} body={}",
        trains.status,
        trains.text()
    );

    let blocks = reader.get("/v1/trains/1/blocks?limit=8", Some(TOKEN))?;
    if blocks.status != 200 {
        return Err(format!("blocks page: status {}", blocks.status));
    }

    let timeline = reader.get("/v1/trains/1/timeline?from_ms=0", Some(TOKEN))?;
    if timeline.status != 200 || !timeline.text().contains("\"events\":") {
        return Err(format!(
            "timeline: status {} body {}",
            timeline.status,
            timeline.text()
        ));
    }
    println!("api-timeline: train=1 body={}", timeline.text());

    // --- Head bundle over HTTP, stored byte-for-byte as fetched. ---
    let train = TrainId(1);
    let head_sn = outcome
        .archive
        .with_shard(train, |archive| {
            archive.blocks().last().map(|b| b.header.last_sn)
        })
        .flatten()
        .ok_or("train 1 has no archived blocks")?;
    let bundle = reader.get(&format!("/v1/trains/1/bundle/{head_sn}"), Some(TOKEN))?;
    if bundle.status != 200 {
        return Err(format!("bundle download: status {}", bundle.status));
    }
    let bundle_path = args.out.join("train-1-head.zab");
    std::fs::write(&bundle_path, &bundle.body)
        .map_err(|e| format!("write {}: {e}", bundle_path.display()))?;
    let keys_path = args.out.join("train-1-keys.txt");
    let keystore = &outcome
        .keystores
        .iter()
        .find(|(t, _)| *t == train)
        .ok_or("train 1 keystore missing")?
        .1;
    keyfile::write_keys_for_train(&keys_path, train, keystore)
        .map_err(|e| format!("write {}: {e}", keys_path.display()))?;
    println!(
        "api-bundle: train=1 sn={head_sn} bytes={} quorum={REPLICA_QUORUM} file={}",
        bundle.body.len(),
        bundle_path.display()
    );

    // --- Policy: 401 without the token, 429 past the rate limit. ---
    let unauth = reader.get("/v1/trains", None)?;
    if unauth.status != 401 {
        return Err(format!("expected 401 without token, got {}", unauth.status));
    }
    println!("api-unauth: status={}", unauth.status);

    let mut limited = 0usize;
    for _ in 0..(3 * RATE_PER_SEC) {
        if reader
            .get("/v1/trains/1/blocks?limit=1", Some(TOKEN))?
            .status
            == 429
        {
            limited += 1;
        }
    }
    if limited == 0 {
        return Err(format!(
            "no 429 after {} rapid requests at {RATE_PER_SEC}/s",
            3 * RATE_PER_SEC
        ));
    }
    println!("api-ratelimit: rejected={limited}");

    // --- The exposition must agree with the client's own request count.
    // The /metrics request renders before it is itself counted, so the
    // snapshot covers exactly the `issued` requests made so far. ---
    let expected = reader.issued;
    let metrics = reader.get("/metrics", None)?;
    if metrics.status != 200 {
        return Err(format!("/metrics: status {}", metrics.status));
    }
    let exposition = metrics.text();
    std::fs::write(args.out.join("metrics.prom"), &exposition)
        .map_err(|e| format!("write metrics.prom: {e}"))?;
    let samples = zugchain_telemetry::parse_prometheus(&exposition)
        .map_err(|e| format!("exposition does not parse: {e}"))?;
    let counted: f64 = samples
        .iter()
        .filter(|s| s.name == "zugchain_api_requests_total")
        .map(|s| s.value)
        .sum();
    println!("api-check: requests_total={counted} client_count={expected}");
    if counted != expected as f64 {
        return Err(format!(
            "exposition counts {counted} requests, client issued {expected}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("api_smoke: {err}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => {
            println!("api-smoke: ok");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("api_smoke: {err}");
            ExitCode::FAILURE
        }
    }
}
