//! Small-scale fleet run with observability attached — the CI
//! `fleet-smoke` job's subject.
//!
//! ```text
//! fleet_smoke [--out DIR] [--trains N] [--segments N] [--seed N]
//! ```
//!
//! Drives N simulated trains through record → export → sharded archive
//! ([`zugchain_sim::fleet`]), then:
//!
//! * prints one machine-readable `fleet-train:` line per train with the
//!   decided vs archived head comparison, and one `fleet-metric:` line
//!   per train carrying the registry's per-train
//!   `zugchain_archive_segments_total` so CI can cross-check the
//!   telemetry against the run report;
//! * writes the Prometheus exposition to `DIR/metrics.prom` (round-trip
//!   parsed first), audit bundles from the first three trains to
//!   `DIR/train-<id>-head.zab`, and each of those trains' replica key
//!   files (with their `train` directive) to `DIR/train-<id>-keys.txt`
//!   so CI re-verifies them offline with `zugchain-audit --train <id>`;
//! * exits non-zero if any train's chain is not fully archived or any
//!   per-train metric disagrees with the run report.

use std::path::PathBuf;
use std::process::ExitCode;

use zugchain_archive::keyfile;
use zugchain_sim::fleet::{run_fleet_instrumented, FleetConfig};

/// Trains whose head bundles + keyfiles are exported for offline audit.
const AUDITED_TRAINS: usize = 3;

struct Args {
    out: PathBuf,
    trains: usize,
    segments: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("fleet-out"),
        trains: 16,
        segments: 2,
        seed: 0xF1EE7,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--trains" => args.trains = value("--trains")?.parse().map_err(|e| format!("{e}"))?,
            "--segments" => {
                args.segments = value("--segments")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => {
                println!("usage: fleet_smoke [--out DIR] [--trains N] [--segments N] [--seed N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.trains == 0 || args.segments == 0 {
        return Err("--trains and --segments must be at least 1".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("fleet_smoke: {err}");
            return ExitCode::from(2);
        }
    };

    let config = FleetConfig {
        n_trains: args.trains,
        segments_per_train: args.segments,
        seed: args.seed,
        ..FleetConfig::default()
    };
    let (outcome, registry) = run_fleet_instrumented(&config);

    if let Err(err) = std::fs::create_dir_all(&args.out) {
        eprintln!("fleet_smoke: create {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for report in &outcome.trains {
        println!(
            "fleet-train: train={} decided_height={} archived_segments={} fully_archived={}",
            report.train, report.decided_height, report.archived_segments, report.fully_archived
        );
        if !report.fully_archived {
            eprintln!(
                "fleet_smoke: train {} decided head {:?} but shard head {:?}",
                report.train,
                (report.decided_height, report.decided_head),
                report.archived_head
            );
            failures += 1;
        }
        // The per-train telemetry series must agree with the run report.
        let metric = registry.counter_value(
            "zugchain_archive_segments_total",
            &[("node", "0"), ("train", &report.train.to_string())],
        );
        match metric {
            Some(value) => println!(
                "fleet-metric: train={} archive_segments_total={value}",
                report.train
            ),
            None => {
                eprintln!(
                    "fleet_smoke: no zugchain_archive_segments_total series for train {}",
                    report.train
                );
                failures += 1;
                continue;
            }
        }
        if metric != Some(report.archived_segments as u64) {
            eprintln!(
                "fleet_smoke: train {} metric {metric:?} != archived segments {}",
                report.train, report.archived_segments
            );
            failures += 1;
        }
    }
    println!(
        "fleet-total: trains={} requests={}",
        outcome.trains.len(),
        outcome.total_requests
    );

    let exposition = registry.render_prometheus();
    if let Err(err) = zugchain_telemetry::parse_prometheus(&exposition) {
        eprintln!("fleet_smoke: exposition does not round-trip: {err}");
        return ExitCode::FAILURE;
    }
    if let Err(err) = std::fs::write(args.out.join("metrics.prom"), &exposition) {
        eprintln!("fleet_smoke: write metrics.prom: {err}");
        return ExitCode::FAILURE;
    }

    // Export head bundles + keyfiles from the first few trains so CI can
    // re-verify them with the standalone `zugchain-audit --train` binary.
    for (train, keystore) in outcome.keystores.iter().take(AUDITED_TRAINS) {
        let head = match outcome.archive.head_of(*train) {
            Some((height, _)) => height,
            None => {
                eprintln!("fleet_smoke: train {train} has no archived head to bundle");
                failures += 1;
                continue;
            }
        };
        let bundle = match outcome.archive.audit_bundle(*train, head) {
            Some(bundle) => bundle,
            None => {
                eprintln!("fleet_smoke: no audit bundle for train {train} height {head}");
                failures += 1;
                continue;
            }
        };
        let bundle_path = args.out.join(format!("train-{train}-head.zab"));
        let keys_path = args.out.join(format!("train-{train}-keys.txt"));
        if let Err(err) = bundle.write_to(&bundle_path) {
            eprintln!("fleet_smoke: write {}: {err}", bundle_path.display());
            return ExitCode::FAILURE;
        }
        if let Err(err) = keyfile::write_keys_for_train(&keys_path, *train, keystore) {
            eprintln!("fleet_smoke: write {}: {err}", keys_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "fleet-bundle: train={train} height={head} bundle={} keys={}",
            bundle_path.display(),
            keys_path.display()
        );
    }

    if failures > 0 {
        eprintln!("fleet_smoke: {failures} check(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
