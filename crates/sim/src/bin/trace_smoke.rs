//! End-to-end causal-tracing smoke: the CI `trace-smoke` job's subject.
//!
//! ```text
//! trace_smoke [--out DIR] [--duration-ms N] [--seed N]
//! ```
//!
//! Runs the full traced pipeline ([`run_traced_pipeline`]) twice with
//! the same seed, then:
//!
//! * fails unless every archived request's `/v1/trains/0/trace/<sn>`
//!   response is `200` with a `Complete` span chain (record → submit →
//!   batch_flush → preprepare → prepare → commit → decide → export →
//!   ingest → servable);
//! * fails unless both runs served byte-identical trace bodies — the
//!   determinism claim that makes span dumps juridically comparable;
//! * fails unless the `zugchain_record_to_servable_ms` histogram
//!   counted exactly one observation per archived request;
//! * writes the assembled trace bodies to `DIR/traces.jsonl`, the
//!   exposition to `DIR/metrics.prom`, and prints machine-readable
//!   `trace-smoke: <k>=<v>` lines for the CI job to cross-check.

use std::path::PathBuf;
use std::process::ExitCode;

use zugchain_pbft::{AuthMode, CommMode};
use zugchain_sim::{run_traced_pipeline, Mode, ScenarioConfig, Workload};

struct Args {
    out: PathBuf,
    duration_ms: u64,
    seed: u64,
    comm_mode: CommMode,
    auth_mode: AuthMode,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("trace-out"),
        duration_ms: 3_000,
        seed: 7,
        comm_mode: CommMode::AllToAll,
        auth_mode: AuthMode::Sig,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--duration-ms" => {
                args.duration_ms = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--comm-mode" => {
                args.comm_mode = match value("--comm-mode")?.as_str() {
                    "all-to-all" => CommMode::AllToAll,
                    "collector" => CommMode::Collector,
                    other => return Err(format!("unknown comm mode `{other}`")),
                };
            }
            "--auth-mode" => {
                args.auth_mode = match value("--auth-mode")?.as_str() {
                    "sig" => AuthMode::Sig,
                    "mac" => AuthMode::MacWithSigFallback,
                    other => return Err(format!("unknown auth mode `{other}`")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: trace_smoke [--out DIR] [--duration-ms N] [--seed N] \
                     [--comm-mode all-to-all|collector] [--auth-mode sig|mac]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("trace_smoke: {err}");
            return ExitCode::from(2);
        }
    };

    let mut config = ScenarioConfig {
        mode: Mode::Zugchain,
        duration_ms: args.duration_ms,
        bus_cycle_ms: 64,
        workload: Workload::SyntheticPayload { bytes: 256 },
        ..ScenarioConfig::default()
    };
    config.node_config.pbft = config
        .node_config
        .pbft
        .with_comm_mode(args.comm_mode)
        .with_auth_mode(args.auth_mode);
    let outcome = run_traced_pipeline(&config, args.seed);
    let replay = run_traced_pipeline(&config, args.seed);

    if outcome.archived_sns.is_empty() {
        eprintln!("trace_smoke: the run archived nothing — no traces to check");
        return ExitCode::FAILURE;
    }

    let mut complete = 0usize;
    let mut failed = false;
    for (sn, status, body) in &outcome.trace_responses {
        if *status != 200 {
            eprintln!("trace_smoke: sn {sn}: status {status}: {body}");
            failed = true;
        } else if body.contains("\"chain\":\"Complete\"") {
            complete += 1;
        } else {
            eprintln!("trace_smoke: sn {sn}: incomplete span chain: {body}");
            failed = true;
        }
    }

    if outcome.trace_fingerprint() != replay.trace_fingerprint() {
        eprintln!("trace_smoke: two same-seed runs served different trace bytes");
        failed = true;
    }
    if outcome.record_to_servable_count != outcome.archived_requests as u64 {
        eprintln!(
            "trace_smoke: record_to_servable count {} != archived requests {}",
            outcome.record_to_servable_count, outcome.archived_requests
        );
        failed = true;
    }

    if let Err(err) = std::fs::create_dir_all(&args.out) {
        eprintln!("trace_smoke: create {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }
    if let Err(err) = std::fs::write(args.out.join("traces.jsonl"), outcome.trace_fingerprint()) {
        eprintln!("trace_smoke: write traces.jsonl: {err}");
        return ExitCode::FAILURE;
    }
    if let Err(err) = std::fs::write(args.out.join("metrics.prom"), &outcome.exposition) {
        eprintln!("trace_smoke: write metrics.prom: {err}");
        return ExitCode::FAILURE;
    }

    println!("trace-smoke: archived_sns={}", outcome.archived_sns.len());
    println!(
        "trace-smoke: archived_requests={}",
        outcome.archived_requests
    );
    println!("trace-smoke: complete_chains={complete}");
    println!(
        "trace-smoke: record_to_servable_count={}",
        outcome.record_to_servable_count
    );
    println!(
        "trace-smoke: deterministic={}",
        outcome.trace_fingerprint() == replay.trace_fingerprint()
    );

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
