//! One short deterministic simulation with observability attached — the
//! CI `telemetry-smoke` job's subject.
//!
//! ```text
//! telemetry_smoke [--out DIR] [--duration-ms N] [--seed N]
//! ```
//!
//! Runs the scenario via [`Simulation::run_instrumented`], then:
//!
//! * writes the Prometheus exposition to `DIR/metrics.prom` and each
//!   node's flight-recorder dump to `DIR/trace-node<i>.jsonl`;
//! * prints the exposition on stdout, preceded by machine-readable
//!   `run-metric: <name>=<value>` lines carrying the simulator's own
//!   [`RunMetrics`] so the CI job can cross-check the registry against
//!   the run report (`zugchain_pbft_decided_total` must equal
//!   `consensus_decided` on the reference node, the view gauge must be
//!   present and non-negative);
//! * exits non-zero if the exposition fails its own round-trip parse or
//!   any trace fails JSONL parsing — the artifacts must be usable before
//!   CI ever looks at them.
//!
//! [`RunMetrics`]: zugchain_sim::RunMetrics

use std::path::PathBuf;
use std::process::ExitCode;

use zugchain_sim::{Mode, ScenarioConfig, Simulation, Workload};

struct Args {
    out: PathBuf,
    duration_ms: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("telemetry-out"),
        duration_ms: 5_000,
        seed: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--duration-ms" => {
                args.duration_ms = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => {
                println!("usage: telemetry_smoke [--out DIR] [--duration-ms N] [--seed N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("telemetry_smoke: {err}");
            return ExitCode::from(2);
        }
    };

    let config = ScenarioConfig {
        mode: Mode::Zugchain,
        duration_ms: args.duration_ms,
        bus_cycle_ms: 64,
        workload: Workload::SyntheticPayload { bytes: 256 },
        ..ScenarioConfig::default()
    };
    let (metrics, capture) = Simulation::new(&config, args.seed).run_instrumented();

    if let Err(err) = std::fs::create_dir_all(&args.out) {
        eprintln!("telemetry_smoke: create {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }

    let exposition = capture.registry.render_prometheus();
    if let Err(err) = zugchain_telemetry::parse_prometheus(&exposition) {
        eprintln!("telemetry_smoke: exposition does not round-trip: {err}");
        return ExitCode::FAILURE;
    }
    if let Err(err) = std::fs::write(args.out.join("metrics.prom"), &exposition) {
        eprintln!("telemetry_smoke: write metrics.prom: {err}");
        return ExitCode::FAILURE;
    }
    for (node, trace) in capture.traces.iter().enumerate() {
        if let Err(err) = zugchain_telemetry::parse_jsonl(trace) {
            eprintln!("telemetry_smoke: node {node} trace is not valid JSONL: {err}");
            return ExitCode::FAILURE;
        }
        let path = args.out.join(format!("trace-node{node}.jsonl"));
        if let Err(err) = std::fs::write(&path, trace) {
            eprintln!("telemetry_smoke: write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "run-metric: consensus_decided={}",
        metrics.consensus_decided
    );
    println!("run-metric: batches_decided={}", metrics.batches_decided);
    println!("run-metric: logged_requests={}", metrics.logged_requests);
    println!("run-metric: blocks_created={}", metrics.blocks_created);
    println!("run-metric: view_changes={}", metrics.view_changes);
    print!("{exposition}");
    ExitCode::SUCCESS
}
