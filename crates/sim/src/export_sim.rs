use zugchain_blockchain::{Block, LoggedRequest};
use zugchain_crypto::Digest;

use crate::{CostModel, NetworkModel};

/// Parameters of a Table II export run.
#[derive(Debug, Clone)]
pub struct ExportSimConfig {
    /// Number of blocks to export (paper: 500–16 000).
    pub n_blocks: u64,
    /// Requests bundled per block (paper: 10).
    pub requests_per_block: usize,
    /// Payload bytes per request.
    pub request_bytes: usize,
    /// Replica group size (paper: 4, f = 1).
    pub n_replicas: usize,
    /// Fault threshold (checkpoint replies awaited = 2f+1).
    pub f: usize,
    /// The train↔data-center link (paper: LTE at ~8.5 Mbit/s).
    pub link: NetworkModel,
    /// The data center's CPU (paper: AWS t2.xlarge).
    pub dc_cost: CostModel,
}

impl Default for ExportSimConfig {
    fn default() -> Self {
        Self {
            n_blocks: 1000,
            requests_per_block: 10,
            request_bytes: 90,
            n_replicas: 4,
            f: 1,
            link: NetworkModel::lte(),
            dc_cost: CostModel::aws_t2_xlarge(),
        }
    }
}

/// Timings of one export, mirroring the rows of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportTiming {
    /// Read phase: request broadcast, 2f+1 checkpoint replies, and the
    /// full blocks from one replica over the shared LTE link.
    pub read_s: f64,
    /// Verification on the data center: checkpoint signatures and chain
    /// hashing.
    pub verify_s: f64,
    /// Delete phase: signing, broadcast, and replica acknowledgements.
    pub delete_s: f64,
    /// Total bytes transferred from train to data center.
    pub transferred_bytes: u64,
}

impl ExportTiming {
    /// Total export latency in seconds.
    pub fn total_s(&self) -> f64 {
        self.read_s + self.verify_s + self.delete_s
    }

    /// Fraction of the total spent in each phase: `(read, verify,
    /// delete)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total_s();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.read_s / total,
            self.verify_s / total,
            self.delete_s / total,
        )
    }
}

/// A representative block for size measurements.
fn representative_block(config: &ExportSimConfig) -> Block {
    let requests = (1..=config.requests_per_block as u64)
        .map(|sn| LoggedRequest {
            sn,
            origin: sn % config.n_replicas as u64,
            payload: vec![0xAB; config.request_bytes],
        })
        .collect();
    Block::next(1, Digest::ZERO, requests, 0)
}

/// Simulates one export of `config.n_blocks` blocks (paper Table II).
///
/// The model follows the protocol's communication pattern: the read
/// round-trip and the bulk block transfer share the LTE link (the paper:
/// "the network communication until all replies have been received is
/// the bottleneck", 80–96 % of total); verification is pure data-center
/// CPU (0.2–0.3 %); deletion is a signed round-trip plus on-train pruning
/// (3–19 %).
pub fn simulate_export(config: &ExportSimConfig) -> ExportTiming {
    let mut link = config.link.clone();
    let cost = &config.dc_cost;
    let quorum = 2 * config.f + 1;

    let block = representative_block(config);
    let block_bytes = block.encoded_size();
    let total_block_bytes = block_bytes as u64 * config.n_blocks;

    // Sizes of the small protocol messages (measured from real encodings
    // elsewhere; approximated here with stable constants).
    let read_bytes = 24usize;
    // CheckpointProof: checkpoint (40 B) + quorum × (id 8 + sig 64).
    let checkpoint_reply_bytes = 48 + quorum * 72 + 48;
    let delete_bytes = 8 + 32 + 8 + 64;
    let ack_bytes = delete_bytes;

    // --- Read phase -----------------------------------------------------
    // Uplink: the read broadcast (one message per replica, serialized on
    // the single LTE uplink).
    let mut t = 0u64;
    for replica in 0..config.n_replicas {
        t = t.max(link.send(100, replica, read_bytes, 0));
    }
    // Downlink: 2f+1 checkpoint replies plus the full blocks from one
    // replica, all sharing the LTE downlink (modelled as one link from
    // the train's router, node index 100).
    let mut downlink_done = t;
    for _ in 0..quorum {
        downlink_done = downlink_done.max(link.send(0, 100, checkpoint_reply_bytes, t));
    }
    // The bulk block stream: blocks are pipelined back-to-back; the
    // link model serializes them on the shared downlink, so only the
    // last block's arrival matters (one propagation latency, not one
    // per block).
    let mut stream_done = t;
    for _ in 0..config.n_blocks {
        stream_done = stream_done.max(link.send(0, 100, block_bytes, t));
    }
    let read_ns = downlink_done.max(stream_done);

    // --- Verify phase ---------------------------------------------------
    // Verify the quorum checkpoint proofs and hash every block (header +
    // payload) to validate the chain.
    let verify_ns = quorum as u64 * quorum as u64 * cost.verify_ns
        + config.n_blocks * cost.hash_ns(block_bytes)
        + total_block_bytes * cost.serde_per_byte_ns;

    // --- Delete phase ---------------------------------------------------
    // Sign the delete, send to every replica (uplink), replicas prune
    // (on-train disk/memory work) and acknowledge (downlink).
    let mut delete_ns = cost.sign_ns;
    let delete_start = read_ns + verify_ns + delete_ns;
    let mut uplink_done = delete_start;
    for replica in 0..config.n_replicas {
        uplink_done = uplink_done.max(link.send(100, replica, delete_bytes, delete_start));
    }
    // On-train prune cost: the paper reports deletion at 3–19 % of total,
    // growing with block count (file/metadata work per block on the
    // M-COM's flash).
    let prune_ns = config.n_blocks * 150_000; // 0.15 ms per block
    let mut ack_done = uplink_done + prune_ns;
    for _ in 0..config.n_replicas {
        ack_done = ack_done.max(link.send(0, 100, ack_bytes, uplink_done + prune_ns));
    }
    delete_ns = ack_done - read_ns - verify_ns;

    ExportTiming {
        read_s: read_ns as f64 / 1e9,
        verify_s: verify_ns as f64 / 1e9,
        delete_s: delete_ns as f64 / 1e9,
        transferred_bytes: total_block_bytes + (quorum * checkpoint_reply_bytes) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(n_blocks: u64) -> ExportTiming {
        simulate_export(&ExportSimConfig {
            n_blocks,
            ..ExportSimConfig::default()
        })
    }

    #[test]
    fn read_time_grows_with_block_count() {
        let small = timing(500);
        let large = timing(16_000);
        assert!(large.read_s > 10.0 * small.read_s);
        assert!(large.total_s() < 120.0, "16k blocks stay in minutes range");
    }

    #[test]
    fn network_dominates_the_export() {
        // Paper: 80–96 % of the latency is waiting for replies.
        for n in [2_000, 8_000, 16_000] {
            let (read, _, _) = timing(n).fractions();
            assert!(read > 0.75, "read fraction {read} for {n} blocks");
        }
    }

    #[test]
    fn verification_is_negligible() {
        // Paper: verification takes 0.2–0.3 % of the total.
        for n in [2_000, 8_000, 16_000] {
            let (_, verify, _) = timing(n).fractions();
            assert!(verify < 0.02, "verify fraction {verify} for {n} blocks");
        }
    }

    #[test]
    fn three_hours_of_blocks_export_in_minutes() {
        // Paper: ~3 minutes for 3 h of operation (16 000 blocks).
        let timing = timing(16_000);
        assert!(
            (10.0..300.0).contains(&timing.total_s()),
            "total {}",
            timing.total_s()
        );
    }

    #[test]
    fn transferred_bytes_match_block_volume() {
        let timing = timing(1_000);
        // 1000 blocks × ~(header + 10 × ~110 B).
        assert!(timing.transferred_bytes > 900_000);
        assert!(timing.transferred_bytes < 3_000_000);
    }
}
