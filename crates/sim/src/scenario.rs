use zugchain::NodeConfig;

use crate::{CostModel, NetworkModel};

/// Which system the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// ZugChain's communication layer (content-based filtering).
    Zugchain,
    /// PBFT with traditional per-node clients (paper baseline): identical
    /// bus data is ordered up to n times.
    Baseline,
}

/// What the bus delivers each cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// A unique opaque payload of fixed size per cycle, delivered to all
    /// nodes — the paper's own method for its parameter sweeps ("we
    /// instead simulate receiving messages over the bus").
    SyntheticPayload {
        /// Consolidated request size in bytes.
        bytes: usize,
    },
    /// Realistic JRU signals from the ATP signal generator over the
    /// simulated MVB, with per-tap background fault rates.
    JruSignals {
        /// Seed of the signal generator.
        generator_seed: u64,
        /// Apply background bus faults (drops/delays/bit flips) per tap.
        background_faults: bool,
    },
    /// An explicit script of `(time_ms, payload)` deliveries to all
    /// (non-crashed) nodes — used by the cross-runtime conformance suite,
    /// where every runtime must decide the identical sequence.
    Scripted {
        /// Payloads by delivery time, sorted ascending.
        payloads: Vec<(u64, Vec<u8>)>,
    },
}

/// Byzantine / fault injections of a scenario (paper Figs. 8 and 9).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimFaults {
    /// Crash (silence) this node at the given time.
    pub crash: Option<(usize, u64)>,
    /// A faulty backup broadcasts a fabricated request for this fraction
    /// of bus cycles (Fig. 9: 25 %, 75 %, 100 %).
    pub fabricate: Option<(usize, f64)>,
    /// The primary delays its outbound preprepares by this many
    /// milliseconds (Fig. 9: 250 ms, triggering soft but not hard
    /// timeouts).
    pub primary_preprepare_delay_ms: Option<u64>,
    /// The initial primary censors: it ignores its own bus input and all
    /// layer requests, so nothing is ordered until the soft+hard timeout
    /// chain deposes it (used by the timeout ablation).
    pub primary_censors: bool,
    /// Network partition: between `start_ms` and `heal_ms`, nodes in
    /// `island` can only talk to each other (and the rest only among
    /// themselves). With an island smaller than 2f+1 on both sides,
    /// ordering stalls until the partition heals — the partial-synchrony
    /// behaviour of §III-B.
    pub partition: Option<PartitionFault>,
}

/// A temporary network partition (see [`SimFaults::partition`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionFault {
    /// Nodes on one side of the cut.
    pub island: Vec<usize>,
    /// Partition start (virtual ms).
    pub start_ms: u64,
    /// Partition heal time (virtual ms).
    pub heal_ms: u64,
}

/// Full configuration of one simulated evaluation run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// System under test.
    pub mode: Mode,
    /// Number of replicas (paper: 4).
    pub n_nodes: usize,
    /// Bus cycle time in milliseconds (32 = MVB minimum).
    pub bus_cycle_ms: u64,
    /// Run length in (virtual) milliseconds.
    pub duration_ms: u64,
    /// The bus workload.
    pub workload: Workload,
    /// Node configuration (block size, timeouts, rate limits).
    pub node_config: NodeConfig,
    /// CPU cost model.
    pub cost: CostModel,
    /// Replica network model.
    pub network: NetworkModel,
    /// Fault injections.
    pub faults: SimFaults,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            mode: Mode::Zugchain,
            n_nodes: 4,
            bus_cycle_ms: 64,
            duration_ms: 30_000,
            workload: Workload::SyntheticPayload { bytes: 1024 },
            node_config: NodeConfig::evaluation_default().with_limit_from_bus_cycle(64),
            cost: CostModel::cortex_a9(),
            network: NetworkModel::testbed_ethernet(),
            faults: SimFaults::default(),
        }
    }
}

impl ScenarioConfig {
    /// The paper's evaluation setup for a given mode, bus cycle and
    /// payload size (Fig. 6/7 sweeps): n=4, block size 10, 5-minute runs.
    pub fn evaluation(mode: Mode, bus_cycle_ms: u64, payload_bytes: usize) -> Self {
        Self {
            mode,
            bus_cycle_ms,
            duration_ms: 5 * 60 * 1000,
            workload: Workload::SyntheticPayload {
                bytes: payload_bytes,
            },
            node_config: NodeConfig::evaluation_default().with_limit_from_bus_cycle(bus_cycle_ms),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_config_matches_paper_defaults() {
        let config = ScenarioConfig::evaluation(Mode::Baseline, 64, 1024);
        assert_eq!(config.n_nodes, 4);
        assert_eq!(config.duration_ms, 300_000);
        assert_eq!(config.node_config.block_size, 10);
        assert_eq!(config.mode, Mode::Baseline);
    }
}
