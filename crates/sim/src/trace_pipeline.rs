//! End-to-end traced pipeline: one deterministic simulation run whose
//! decided chain is carried through the real ground stages — export
//! (paper Fig. 4), archive ingest, HTTP serving — with every stage
//! publishing causal spans into the simulation's shared [`TraceStore`].
//!
//! This is the subject of the CI `trace-smoke` job and the
//! `trace_smoke` integration test: after the run, the
//! `/v1/trains/<id>/trace/<sn>` endpoint must return a `Complete`
//! span chain (record → submit → batch_flush → preprepare → prepare →
//! commit → decide → export → ingest → servable) for every archived
//! request, byte-identical across two same-seed runs, and the
//! `zugchain_record_to_servable_ms` histogram must have observed
//! exactly one latency per archived request.

use std::collections::BTreeSet;
use std::sync::Arc;

use zugchain_api::{ApiConfig, ApiServer, Backend, HttpClient};
use zugchain_archive::{Archive, QueryEngine};
use zugchain_blockchain::ChainStore;
use zugchain_crypto::Keystore;
use zugchain_export::{
    DataCenter, DcAddr, DcConfig, DcEffect, DcId, ExportReplica, ReplicaExportConfig,
};
use zugchain_pbft::NodeId;
use zugchain_telemetry::Telemetry;
use zugchain_wire::TrainId;

use crate::fleet::{certify, REPLICAS_PER_TRAIN, REPLICA_QUORUM};
use crate::{RunMetrics, ScenarioConfig, Simulation, TelemetryCapture};

/// Everything the traced pipeline produced, ready for assertions.
#[derive(Debug)]
pub struct TracedPipelineOutcome {
    /// The simulation's run report.
    pub metrics: RunMetrics,
    /// The simulation's telemetry capture (registry + span store).
    pub capture: TelemetryCapture,
    /// Consensus sequence numbers of every archived request, ascending.
    pub archived_sns: Vec<u64>,
    /// Total requests landed in the archive.
    pub archived_requests: usize,
    /// Observation count of `zugchain_record_to_servable_ms` — must
    /// equal `archived_requests`.
    pub record_to_servable_count: u64,
    /// `(sn, status, body)` of `GET /v1/trains/0/trace/<sn>` for every
    /// archived sn, in ascending sn order.
    pub trace_responses: Vec<(u64, u16, String)>,
    /// The final Prometheus exposition.
    pub exposition: String,
}

impl TracedPipelineOutcome {
    /// Concatenated trace bodies — the determinism fingerprint: two
    /// same-seed runs must produce identical bytes.
    pub fn trace_fingerprint(&self) -> String {
        self.trace_responses
            .iter()
            .map(|(sn, status, body)| format!("{sn} {status} {body}\n"))
            .collect()
    }
}

/// Runs the full traced pipeline for `(config, seed)`: simulation →
/// export round → archive ingest → HTTP trace endpoint.
///
/// # Panics
///
/// Panics if the export or serving stages fail structurally (a
/// certified segment refuses ingestion, the server cannot bind) —
/// these are bugs, not environment conditions.
pub fn run_traced_pipeline(config: &ScenarioConfig, seed: u64) -> TracedPipelineOutcome {
    let (metrics, capture, chain) = Simulation::new(config, seed).run_traced();

    // Ground-side telemetry: same registry and span store as the
    // simulated cluster, clock pinned past the drain horizon so export
    // and ingest spans sort after every consensus span.
    let ground = Telemetry::new_with_store(
        0,
        Arc::clone(&capture.registry),
        config.node_config.trace_capacity,
        Some(Arc::clone(&capture.trace_store)),
    );
    ground.set_time_ms(config.duration_ms + 2_048);

    // --- Export: one synchronous protocol round (paper Fig. 4) over
    // the decided chain, exactly as the fleet simulation drives it. ---
    let (pairs, keystore) = Keystore::generate(REPLICAS_PER_TRAIN, seed ^ 0x7AC3);
    let (dc_pairs, dc_keystore) = Keystore::generate(1, seed ^ 0xDC00);
    let mut dc = DataCenter::new(
        DcConfig {
            id: DcId(0),
            train: TrainId::DEFAULT,
            n_replicas: REPLICAS_PER_TRAIN,
            replica_quorum: REPLICA_QUORUM,
            peers: vec![],
        },
        dc_pairs[0].clone(),
        keystore.clone(),
        REPLICA_QUORUM,
    );
    dc.set_telemetry(&ground);
    let mut replicas: Vec<ExportReplica> = (0..REPLICAS_PER_TRAIN)
        .map(|id| {
            ExportReplica::new(
                NodeId(id as u64),
                pairs[id].clone(),
                dc_keystore.clone(),
                ReplicaExportConfig { delete_quorum: 1 },
            )
        })
        .collect();
    let mut chains: Vec<ChainStore> = (0..REPLICAS_PER_TRAIN)
        .map(|_| {
            let mut store = ChainStore::new();
            for block in &chain {
                store
                    .append(block.clone())
                    .expect("decided chain extends an empty store");
            }
            store
        })
        .collect();
    let proofs = match chain.last() {
        Some(head) => vec![certify(&pairs, head.header.last_sn, head)],
        None => Vec::new(),
    };
    if !chain.is_empty() {
        let mut effects = dc.begin_export(NodeId(1));
        while let Some(effect) = effects.pop() {
            match effect {
                DcEffect::Broadcast { message } => {
                    for id in 0..REPLICAS_PER_TRAIN {
                        for reply in replicas[id].handle(message.clone(), &mut chains[id], &proofs)
                        {
                            effects.extend(dc.on_replica_message(NodeId(id as u64), reply));
                        }
                    }
                }
                DcEffect::Send {
                    to: DcAddr::Replica(to),
                    message,
                } => {
                    let id = to.0 as usize;
                    for reply in replicas[id].handle(message, &mut chains[id], &proofs) {
                        effects.extend(dc.on_replica_message(NodeId(id as u64), reply));
                    }
                }
                DcEffect::Send {
                    to: DcAddr::DataCenter(_),
                    ..
                }
                | DcEffect::Output(_) => {}
                effect => panic!("unexpected export effect {effect:?}"),
            }
        }
    }
    let segments = dc.drain_certified_segments();

    // --- Archive ingest: emits the ingest/servable span tail and the
    // record_to_servable histogram. ---
    let mut archive = Archive::in_memory(keystore, REPLICA_QUORUM);
    archive.set_telemetry(&ground);
    let mut sns = BTreeSet::new();
    let mut archived_requests = 0usize;
    for segment in &segments {
        archive.ingest(segment).expect("certified segment ingests");
        for block in &segment.blocks {
            for request in &block.requests {
                sns.insert(request.sn);
                archived_requests += 1;
            }
        }
    }
    let archived_sns: Vec<u64> = sns.into_iter().collect();
    let record_to_servable_count = capture
        .registry
        .histogram_snapshot("zugchain_record_to_servable_ms", &[("node", "0")])
        .map_or(0, |snapshot| snapshot.count);

    // --- Serve: the joined trace store behind the real HTTP stack. ---
    let mut server = ApiServer::start_with_traces(
        ApiConfig::open(),
        Backend::Single(QueryEngine::new(archive)),
        Arc::clone(&capture.registry),
        Some(Arc::clone(&capture.trace_store)),
    )
    .expect("api server binds");
    let mut client = HttpClient::new(server.address());
    let trace_responses: Vec<(u64, u16, String)> = archived_sns
        .iter()
        .map(|&sn| {
            let response = client
                .get(&format!("/v1/trains/0/trace/{sn}"), None)
                .expect("trace endpoint answers");
            (sn, response.status, response.text().to_string())
        })
        .collect();
    let exposition = capture.registry.render_prometheus();
    server.stop();

    TracedPipelineOutcome {
        metrics,
        capture,
        archived_sns,
        archived_requests,
        record_to_servable_count,
        trace_responses,
        exposition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, Workload};

    fn quick() -> ScenarioConfig {
        ScenarioConfig {
            mode: Mode::Zugchain,
            duration_ms: 2_000,
            bus_cycle_ms: 64,
            workload: Workload::SyntheticPayload { bytes: 128 },
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn traced_pipeline_serves_complete_chains() {
        let outcome = run_traced_pipeline(&quick(), 11);
        assert!(
            !outcome.archived_sns.is_empty(),
            "the run must archive something"
        );
        assert_eq!(
            outcome.record_to_servable_count,
            outcome.archived_requests as u64
        );
        for (sn, status, body) in &outcome.trace_responses {
            assert_eq!(*status, 200, "sn {sn}: {body}");
            assert!(body.contains("\"chain\":\"Complete\""), "sn {sn}: {body}");
        }
        assert!(outcome
            .exposition
            .contains("zugchain_record_to_servable_ms_count"));
    }

    #[test]
    fn traced_pipeline_is_deterministic() {
        let a = run_traced_pipeline(&quick(), 23);
        let b = run_traced_pipeline(&quick(), 23);
        assert_eq!(a.trace_fingerprint(), b.trace_fingerprint());
        assert_eq!(a.archived_sns, b.archived_sns);
    }
}
