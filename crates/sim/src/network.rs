use std::collections::HashMap;

/// A store-and-forward network of point-to-point links with per-link
/// bandwidth serialization and propagation latency.
///
/// Models the testbed's switched 100 Mbit/s Ethernet between M-COMs: each
/// ordered node pair has an independent outbound queue (full duplex), so
/// a node's broadcasts serialize on its own uplink.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation + switching latency in nanoseconds.
    pub latency_ns: u64,
    /// Fixed framing overhead added to every message (Ethernet/IP/TCP
    /// headers), in bytes.
    pub frame_overhead_bytes: usize,
    /// Next instant each ordered link (src, dst) is free to transmit.
    link_free_ns: HashMap<(usize, usize), u64>,
    /// Bytes put on the wire, per source node.
    bytes_sent: HashMap<usize, u64>,
    /// Bytes received, per destination node.
    bytes_received: HashMap<usize, u64>,
}

impl NetworkModel {
    /// The testbed Ethernet: 100 Mbit/s, ~100 µs one-way latency.
    pub fn testbed_ethernet() -> Self {
        Self::new(100_000_000, 100_000, 66)
    }

    /// The LTE uplink from the train: ~8.5 Mbit/s (paper §V-B), ~40 ms
    /// one-way latency.
    pub fn lte() -> Self {
        Self::new(8_500_000, 40_000_000, 66)
    }

    /// Creates a network model from raw parameters.
    pub fn new(bandwidth_bps: u64, latency_ns: u64, frame_overhead_bytes: usize) -> Self {
        Self {
            bandwidth_bps,
            latency_ns,
            frame_overhead_bytes,
            link_free_ns: HashMap::new(),
            bytes_sent: HashMap::new(),
            bytes_received: HashMap::new(),
        }
    }

    /// Transmission time of `bytes` on the wire, in nanoseconds.
    pub fn transmission_ns(&self, bytes: usize) -> u64 {
        let total_bits = (bytes + self.frame_overhead_bytes) as u64 * 8;
        total_bits * 1_000_000_000 / self.bandwidth_bps
    }

    /// Schedules a transmission of `bytes` from `src` to `dst`, ready at
    /// `ready_ns`. Returns the arrival time at `dst`.
    pub fn send(&mut self, src: usize, dst: usize, bytes: usize, ready_ns: u64) -> u64 {
        let tx = self.transmission_ns(bytes);
        let link = self.link_free_ns.entry((src, dst)).or_insert(0);
        let depart = ready_ns.max(*link);
        *link = depart + tx;
        let wire_bytes = (bytes + self.frame_overhead_bytes) as u64;
        *self.bytes_sent.entry(src).or_default() += wire_bytes;
        *self.bytes_received.entry(dst).or_default() += wire_bytes;
        depart + tx + self.latency_ns
    }

    /// Total bytes sent by `node` (including framing).
    pub fn bytes_sent_by(&self, node: usize) -> u64 {
        self.bytes_sent.get(&node).copied().unwrap_or(0)
    }

    /// Total bytes received by `node` (including framing).
    pub fn bytes_received_by(&self, node: usize) -> u64 {
        self.bytes_received.get(&node).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time_matches_bandwidth() {
        let net = NetworkModel::new(100_000_000, 0, 0);
        // 1250 bytes = 10_000 bits at 100 Mbit/s = 100 µs.
        assert_eq!(net.transmission_ns(1250), 100_000);
    }

    #[test]
    fn back_to_back_sends_serialize_on_the_link() {
        let mut net = NetworkModel::new(100_000_000, 0, 0);
        let first = net.send(0, 1, 1250, 0);
        let second = net.send(0, 1, 1250, 0);
        assert_eq!(first, 100_000);
        assert_eq!(second, 200_000, "second waits for the first");
    }

    #[test]
    fn distinct_links_do_not_interfere() {
        let mut net = NetworkModel::new(100_000_000, 0, 0);
        net.send(0, 1, 1250, 0);
        let other = net.send(0, 2, 1250, 0);
        assert_eq!(other, 100_000, "different destination, fresh link");
        let reverse = net.send(1, 0, 1250, 0);
        assert_eq!(reverse, 100_000, "full duplex");
    }

    #[test]
    fn latency_is_added_after_transmission() {
        let mut net = NetworkModel::new(100_000_000, 50_000, 0);
        assert_eq!(net.send(0, 1, 1250, 0), 150_000);
    }

    #[test]
    fn byte_accounting_includes_framing() {
        let mut net = NetworkModel::new(100_000_000, 0, 66);
        net.send(0, 1, 1000, 0);
        assert_eq!(net.bytes_sent_by(0), 1066);
        assert_eq!(net.bytes_received_by(1), 1066);
        assert_eq!(net.bytes_sent_by(1), 0);
    }

    #[test]
    fn lte_is_slow() {
        let lte = NetworkModel::lte();
        let eth = NetworkModel::testbed_ethernet();
        assert!(lte.transmission_ns(100_000) > 10 * eth.transmission_ns(100_000));
    }
}
