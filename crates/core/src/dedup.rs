use std::collections::{HashMap, VecDeque};

use zugchain_crypto::Digest;

/// The `inLog` check of Algorithm 1, implemented as the paper describes:
/// *"a check of the complete blockchain for every request is not feasible;
/// instead, we check against the recent history. This is done efficiently
/// with a hashmap over the requests of a sliding window of past
/// checkpoints as well as open requests in R"* (§III-C).
///
/// Payload digests of logged requests are kept per checkpoint interval;
/// when a checkpoint falls out of the window, its digests are evicted.
///
/// # Examples
///
/// ```
/// use zugchain::DedupLog;
/// use zugchain_crypto::Digest;
///
/// let mut log = DedupLog::new(2);
/// let d = Digest::of(b"cycle 7");
/// log.record(d, 1);
/// assert!(log.contains(&d));
///
/// // Two checkpoints later the window has slid past it.
/// log.on_checkpoint();
/// log.on_checkpoint();
/// log.on_checkpoint();
/// assert!(!log.contains(&d));
/// ```
#[derive(Debug, Clone)]
pub struct DedupLog {
    window_checkpoints: usize,
    /// payload digest → sequence number it was logged at.
    by_digest: HashMap<Digest, u64>,
    /// Digests logged in the current (open) checkpoint interval.
    current_bucket: Vec<Digest>,
    /// Buckets of completed checkpoint intervals, oldest first.
    buckets: VecDeque<Vec<Digest>>,
}

impl DedupLog {
    /// Creates a filter remembering `window_checkpoints` completed
    /// checkpoint intervals plus the open one.
    pub fn new(window_checkpoints: usize) -> Self {
        Self {
            window_checkpoints: window_checkpoints.max(1),
            by_digest: HashMap::new(),
            current_bucket: Vec::new(),
            buckets: VecDeque::new(),
        }
    }

    /// Returns `true` if `digest` was logged within the sliding window.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.by_digest.contains_key(digest)
    }

    /// The sequence number `digest` was logged at, if within the window.
    pub fn sequence_of(&self, digest: &Digest) -> Option<u64> {
        self.by_digest.get(digest).copied()
    }

    /// Records a logged request. A digest already present keeps its
    /// original sequence number.
    pub fn record(&mut self, digest: Digest, sn: u64) {
        if let std::collections::hash_map::Entry::Vacant(entry) = self.by_digest.entry(digest) {
            entry.insert(sn);
            self.current_bucket.push(digest);
        }
    }

    /// Slides the window: the current bucket is sealed and the oldest
    /// bucket beyond the window is evicted. Call when a checkpoint
    /// becomes stable.
    pub fn on_checkpoint(&mut self) {
        let sealed = std::mem::take(&mut self.current_bucket);
        self.buckets.push_back(sealed);
        while self.buckets.len() > self.window_checkpoints {
            let evicted = self.buckets.pop_front().expect("len checked");
            for digest in evicted {
                self.by_digest.remove(&digest);
            }
        }
    }

    /// Number of digests currently tracked.
    pub fn len(&self) -> usize {
        self.by_digest.len()
    }

    /// Returns `true` if the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }

    /// Approximate resident bytes, for memory accounting.
    pub fn approx_memory_bytes(&self) -> usize {
        // digest (32) + sn (8) + hashmap/bucket overhead ≈ 64 per entry.
        self.by_digest.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(tag: u8) -> Digest {
        Digest::of(&[tag])
    }

    #[test]
    fn records_and_finds() {
        let mut log = DedupLog::new(4);
        log.record(digest(1), 10);
        assert!(log.contains(&digest(1)));
        assert_eq!(log.sequence_of(&digest(1)), Some(10));
        assert!(!log.contains(&digest(2)));
    }

    #[test]
    fn window_evicts_old_checkpoints_only() {
        let mut log = DedupLog::new(2);
        log.record(digest(1), 1);
        log.on_checkpoint(); // bucket A sealed
        log.record(digest(2), 2);
        log.on_checkpoint(); // bucket B sealed
        log.record(digest(3), 3);
        // Window holds 2 sealed buckets + open: everything visible.
        assert!(log.contains(&digest(1)));
        log.on_checkpoint(); // bucket C sealed; A evicted
        assert!(!log.contains(&digest(1)));
        assert!(log.contains(&digest(2)));
        assert!(log.contains(&digest(3)));
    }

    #[test]
    fn duplicate_record_does_not_double_evict() {
        let mut log = DedupLog::new(1);
        log.record(digest(1), 1);
        log.record(digest(1), 2); // same digest recorded again
        assert_eq!(log.sequence_of(&digest(1)), Some(1), "first sn wins");
        log.on_checkpoint();
        log.on_checkpoint();
        assert!(!log.contains(&digest(1)));
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn window_of_zero_is_clamped_to_one() {
        let mut log = DedupLog::new(0);
        log.record(digest(1), 1);
        log.on_checkpoint();
        assert!(log.contains(&digest(1)), "one sealed bucket is kept");
        log.on_checkpoint();
        assert!(!log.contains(&digest(1)));
    }

    #[test]
    fn memory_tracks_entries() {
        let mut log = DedupLog::new(4);
        let empty = log.approx_memory_bytes();
        for tag in 0..100 {
            log.record(digest(tag), u64::from(tag));
        }
        assert!(log.approx_memory_bytes() >= empty + 100 * 40);
    }
}
