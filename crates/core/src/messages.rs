use zugchain_crypto::{Digest, KeyPair, Keystore, Signature};
use zugchain_pbft::{ProposedRequest, SignedMessage};
use zugchain_wire::{Decode, Encode, Reader, WireError, Writer};

/// A bus request signed by the node that received it: `r ← sign(req, id)`
/// of Algorithm 1 (ln. 8/22). The signature authenticates both the payload
/// and the claimed origin, so a faulty node cannot attribute fabricated
/// data to others.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedRequest {
    /// The request with its origin id.
    pub request: ProposedRequest,
    /// Origin's signature over the canonical encoding of `request`.
    pub signature: Signature,
}

impl SignedRequest {
    /// Signs `request` with the origin's key.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `request.origin` does not match the id
    /// the key belongs to — callers construct requests for themselves.
    pub fn sign(request: ProposedRequest, key: &KeyPair) -> Self {
        let signature = key.sign(&zugchain_wire::to_bytes(&request));
        Self { request, signature }
    }

    /// Verifies the origin signature against the keystore.
    pub fn verify(&self, keystore: &Keystore) -> bool {
        keystore
            .verify(
                self.request.origin.0,
                &zugchain_wire::to_bytes(&self.request),
                &self.signature,
            )
            .is_ok()
    }

    /// The content identity used for duplicate filtering.
    pub fn payload_digest(&self) -> Digest {
        self.request.payload_digest()
    }
}

impl Encode for SignedRequest {
    fn encode(&self, w: &mut Writer) {
        self.request.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for SignedRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SignedRequest {
            request: ProposedRequest::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

/// ZugChain-layer messages exchanged between nodes, outside consensus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerMessage {
    /// Soft-timeout broadcast of an unordered request (Alg. 1 ln. 24).
    BroadcastRequest(SignedRequest),
    /// A backup forwarding a broadcast request to the primary so a faulty
    /// broadcaster cannot cause a false suspicion (Alg. 1 ln. 32).
    ForwardRequest(SignedRequest),
    /// Baseline mode only: a traditional BFT client submitting its request
    /// to the primary.
    ClientRequest(SignedRequest),
}

impl LayerMessage {
    const TAG_BROADCAST: u8 = 0;
    const TAG_FORWARD: u8 = 1;
    const TAG_CLIENT: u8 = 2;

    /// The request carried by this message.
    pub fn request(&self) -> &SignedRequest {
        match self {
            LayerMessage::BroadcastRequest(r)
            | LayerMessage::ForwardRequest(r)
            | LayerMessage::ClientRequest(r) => r,
        }
    }
}

impl Encode for LayerMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            LayerMessage::BroadcastRequest(r) => {
                w.write_u8(Self::TAG_BROADCAST);
                r.encode(w);
            }
            LayerMessage::ForwardRequest(r) => {
                w.write_u8(Self::TAG_FORWARD);
                r.encode(w);
            }
            LayerMessage::ClientRequest(r) => {
                w.write_u8(Self::TAG_CLIENT);
                r.encode(w);
            }
        }
    }
}

impl Decode for LayerMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            Self::TAG_BROADCAST => Ok(LayerMessage::BroadcastRequest(SignedRequest::decode(r)?)),
            Self::TAG_FORWARD => Ok(LayerMessage::ForwardRequest(SignedRequest::decode(r)?)),
            Self::TAG_CLIENT => Ok(LayerMessage::ClientRequest(SignedRequest::decode(r)?)),
            tag => Err(WireError::InvalidDiscriminant {
                type_name: "LayerMessage",
                value: u64::from(tag),
            }),
        }
    }
}

/// Everything a ZugChain node can receive over the replica network: either
/// a PBFT protocol message or a ZugChain-layer message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum NodeMessage {
    /// A PBFT protocol message.
    Consensus(SignedMessage),
    /// A ZugChain communication-layer message.
    Layer(LayerMessage),
}

impl NodeMessage {
    const TAG_CONSENSUS: u8 = 0;
    const TAG_LAYER: u8 = 1;

    /// Encoded size in bytes, for network accounting.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }

    /// Short label for traffic statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            NodeMessage::Consensus(m) => m.message.kind(),
            NodeMessage::Layer(LayerMessage::BroadcastRequest(_)) => "layer-broadcast",
            NodeMessage::Layer(LayerMessage::ForwardRequest(_)) => "layer-forward",
            NodeMessage::Layer(LayerMessage::ClientRequest(_)) => "client-request",
        }
    }
}

impl Encode for NodeMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            NodeMessage::Consensus(m) => {
                w.write_u8(Self::TAG_CONSENSUS);
                m.encode(w);
            }
            NodeMessage::Layer(m) => {
                w.write_u8(Self::TAG_LAYER);
                m.encode(w);
            }
        }
    }
}

impl Decode for NodeMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            Self::TAG_CONSENSUS => Ok(NodeMessage::Consensus(SignedMessage::decode(r)?)),
            Self::TAG_LAYER => Ok(NodeMessage::Layer(LayerMessage::decode(r)?)),
            tag => Err(WireError::InvalidDiscriminant {
                type_name: "NodeMessage",
                value: u64::from(tag),
            }),
        }
    }
}

/// The canonical encoding used by wire transports. Frames built from a
/// `NodeMessage` are encoded at most once per broadcast (see
/// `zugchain_machine::Frame`).
impl zugchain_machine::WireMessage for NodeMessage {
    fn encode_wire(&self) -> Vec<u8> {
        zugchain_wire::to_bytes(self)
    }
}

/// Timers a node asks its runtime to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimerId {
    /// Soft timeout for the request with this payload digest
    /// (Alg. 1 ln. 11).
    Soft(Digest),
    /// Hard timeout for the request with this payload digest
    /// (Alg. 1 ln. 23/31).
    Hard(Digest),
    /// PBFT view-change timer for the given target view.
    ViewChange(u64),
    /// PBFT partial-batch flush timer (primary only).
    BatchFlush,
    /// PBFT collector-mode fallback timer for the prepare phase of the
    /// given slot.
    CollectorPrepare(u64),
    /// PBFT collector-mode fallback timer for the commit phase of the
    /// given slot.
    CollectorCommit(u64),
}

impl TimerId {
    /// The payload digest for request timers, if any.
    pub fn digest(&self) -> Option<Digest> {
        match self {
            TimerId::Soft(d) | TimerId::Hard(d) => Some(*d),
            TimerId::ViewChange(_)
            | TimerId::BatchFlush
            | TimerId::CollectorPrepare(_)
            | TimerId::CollectorCommit(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zugchain_crypto::Keystore;
    use zugchain_pbft::NodeId;

    #[test]
    fn signed_request_verifies_origin() {
        let (pairs, keystore) = Keystore::generate(4, 1);
        let request = ProposedRequest::application(vec![1, 2, 3], NodeId(2));
        let signed = SignedRequest::sign(request, &pairs[2]);
        assert!(signed.verify(&keystore));
    }

    #[test]
    fn misattributed_request_fails_verification() {
        let (pairs, keystore) = Keystore::generate(4, 1);
        // Node 3 signs a request claiming node 1 received it.
        let request = ProposedRequest::application(vec![1, 2, 3], NodeId(1));
        let forged = SignedRequest::sign(request, &pairs[3]);
        assert!(!forged.verify(&keystore));
    }

    #[test]
    fn node_message_round_trip() {
        let (pairs, _) = Keystore::generate(4, 1);
        let request = ProposedRequest::application(vec![5; 64], NodeId(0));
        let signed = SignedRequest::sign(request, &pairs[0]);
        for message in [
            NodeMessage::Layer(LayerMessage::BroadcastRequest(signed.clone())),
            NodeMessage::Layer(LayerMessage::ForwardRequest(signed.clone())),
            NodeMessage::Layer(LayerMessage::ClientRequest(signed)),
        ] {
            let back: NodeMessage =
                zugchain_wire::from_bytes(&zugchain_wire::to_bytes(&message)).unwrap();
            assert_eq!(back, message);
            assert!(back.wire_size() > 64);
        }
    }

    #[test]
    fn timer_ids_expose_digest() {
        let digest = Digest::of(b"r");
        assert_eq!(TimerId::Soft(digest).digest(), Some(digest));
        assert_eq!(TimerId::Hard(digest).digest(), Some(digest));
        assert_eq!(TimerId::ViewChange(3).digest(), None);
        assert_eq!(TimerId::BatchFlush.digest(), None);
        assert_eq!(TimerId::CollectorPrepare(7).digest(), None);
        assert_eq!(TimerId::CollectorCommit(7).digest(), None);
    }
}
