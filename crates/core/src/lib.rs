//! ZugChain: the BFT communication layer for juridical train event
//! recording (paper §III-C, Algorithm 1).
//!
//! ZugChain replaces the authenticated, individual clients of primary-based
//! BFT protocols with handling of input from a single, unauthenticated,
//! time-triggered bus that all replicas read independently. The layer
//! guarantees:
//!
//! * **Completeness** — every request received by a correct node is logged,
//!   even if only one node saw it (soft-timeout broadcast + forwarding);
//! * **No payload duplication** — no correct node logs the same payload
//!   twice (content-based filtering on the primary, log checks on decide,
//!   suspicion of duplicating primaries);
//! * **Censorship detection** — a primary that omits requests is suspected
//!   after a hard timeout, triggering a PBFT view change;
//! * **Attribution** — each logged request carries the id of a node that
//!   actually received it from the bus, authenticated by that node's
//!   signature;
//! * **DoS containment** — per-node open-request limits bound the load a
//!   faulty node can inject (evaluated in the paper's Fig. 9).
//!
//! Ordered requests flow into the blockchain application: every
//! `block_size` logged requests are deterministically bundled into a
//! block, and a PBFT checkpoint is created per block, backing each block
//! with 2f+1 replica signatures for the export protocol.
//!
//! The crate also contains the evaluation **baseline** ([`BaselineNode`]):
//! PBFT with traditional per-node clients, where every node forwards every
//! bus request to the primary and identical payloads are ordered up to
//! n times.
//!
//! # Examples
//!
//! ```
//! use zugchain::{NodeConfig, TrainNode, ZugchainNode};
//! use zugchain_crypto::Keystore;
//! use zugchain_mvb::Nsdb;
//!
//! let config = NodeConfig::default_for_testing();
//! let (pairs, keystore) = Keystore::generate(4, 0);
//! let mut nodes: Vec<ZugchainNode> = pairs
//!     .into_iter()
//!     .enumerate()
//!     .map(|(id, key)| {
//!         ZugchainNode::new(id as u64, config.clone(), Nsdb::jru_default(), key, keystore.clone())
//!     })
//!     .collect();
//! assert!(nodes[0].is_primary());
//! assert_eq!(nodes[1].chain().height(), 0);
//! ```

#![warn(missing_docs)]

mod baseline;
mod config;
mod dedup;
mod messages;
mod node;
pub mod telemetry;

pub use baseline::BaselineNode;
pub use config::NodeConfig;
pub use dedup::DedupLog;
pub use messages::{LayerMessage, NodeMessage, SignedRequest, TimerId};
pub use node::{
    NodeEffect, NodeEvent, NodeInput, NodeStats, TrainMachine, TrainNode, ZugchainNode,
};
pub use telemetry::NodeObserver;
