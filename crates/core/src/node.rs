use std::collections::{BTreeMap, HashMap, HashSet};

use zugchain_blockchain::{Block, BlockBuilder, ChainStore, LoggedRequest};
use zugchain_crypto::{Digest, KeyPair, Keystore};
use zugchain_machine::{Effect, Machine};
use zugchain_mvb::{Nsdb, Telegram};
use zugchain_pbft::{
    CheckpointProof, NodeId, ProposedRequest, Replica, ReplicaEvent, ReplicaTimer,
};
use zugchain_signals::CycleConsolidator;
use zugchain_telemetry::{Span, Stage};
use zugchain_wire::{derive_span_id, derive_trace_id, TrainId};

use crate::dedup::DedupLog;
use crate::{LayerMessage, NodeConfig, NodeMessage, SignedRequest, TimerId};

/// An application event of a ZugChain node (the `Output` of its
/// [`Machine`] contract): the juridical-recording up-calls a runtime
/// reacts to, as opposed to the mechanical send/timer effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeEvent {
    /// `LOG(req, id, sn)` of Table I: a request entered the totally
    /// ordered log.
    Logged {
        /// Assigned sequence number.
        sn: u64,
        /// Node that received the request from the bus.
        origin: NodeId,
        /// The request payload.
        payload: Vec<u8>,
    },
    /// A block was bundled and appended to the local chain.
    BlockCreated {
        /// The new block.
        block: Block,
    },
    /// A per-block checkpoint became stable (2f+1 signatures).
    CheckpointStable {
        /// The verifiable proof.
        proof: CheckpointProof,
    },
    /// A view change completed.
    NewPrimary {
        /// New view number.
        view: u64,
        /// Primary of the new view.
        primary: NodeId,
    },
    /// The node fell behind a stable checkpoint and must fetch blocks
    /// from peers (§III-D scenario (ii)).
    StateTransferNeeded {
        /// First missing sequence number.
        from_sn: u64,
        /// Target sequence number.
        to_sn: u64,
    },
}

/// An effect of a ZugChain node, to be executed by its runtime: the
/// shared [`Effect`] vocabulary over [`NodeMessage`], [`TimerId`] and
/// [`NodeEvent`].
pub type NodeEffect = Effect<NodeId, NodeMessage, TimerId, NodeEvent>;

/// An input to a train node when driven through the [`Machine`] trait —
/// the union of everything the three runtimes feed a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeInput {
    /// An already-consolidated request payload (benchmarks, fault
    /// injectors).
    RawPayload {
        /// The consolidated payload.
        payload: Vec<u8>,
        /// Bus time of the observation in milliseconds.
        time_ms: u64,
    },
    /// One bus cycle's observed telegrams from one input source.
    BusCycle {
        /// Input source (bus link) index.
        source: usize,
        /// Bus cycle counter.
        cycle: u64,
        /// Bus time in milliseconds.
        time_ms: u64,
        /// The telegrams observed in this cycle.
        telegrams: Vec<Telegram>,
    },
    /// A message from a peer node.
    Message(NodeMessage),
}

/// Counters for evaluation and debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Consolidated requests read from the bus.
    pub bus_requests: u64,
    /// Requests this node proposed to consensus (as primary).
    pub proposed: u64,
    /// Requests appended to the log.
    pub logged: u64,
    /// Incoming layer requests ignored because their payload was already
    /// logged (the filter working as intended).
    pub duplicates_filtered: u64,
    /// Duplicates found *after* ordering — evidence of a faulty primary.
    pub primary_duplicates_detected: u64,
    /// Soft timeouts that fired (request broadcast).
    pub soft_timeouts: u64,
    /// Hard timeouts that fired (primary suspected).
    pub hard_timeouts: u64,
    /// Layer messages dropped by the per-node rate limit.
    pub rate_limited: u64,
    /// Layer messages dropped for invalid origin signatures.
    pub invalid_signatures: u64,
    /// Blocks created.
    pub blocks_created: u64,
}

/// A request known to this node but not yet decided.
#[derive(Debug, Clone)]
struct Pending {
    request: ProposedRequest,
    /// `true` if this node read the request from the bus itself (it is in
    /// the node's own queue R of Alg. 1).
    mine: bool,
}

/// Behaviour shared by [`ZugchainNode`] and
/// [`BaselineNode`](crate::BaselineNode), so runtimes can drive either.
pub trait TrainNode {
    /// This node's replica id.
    fn id(&self) -> NodeId;

    /// The current view number of the underlying replica.
    fn view(&self) -> u64;

    /// Returns `true` if this node hosts the current primary replica.
    fn is_primary(&self) -> bool;

    /// Injects an already-consolidated request payload, bypassing telegram
    /// parsing — used by benchmarks (payload-size sweeps) and fault
    /// injectors (fabricated requests).
    fn on_raw_bus_payload(&mut self, payload: Vec<u8>, time_ms: u64);

    /// Feeds one bus cycle's observed telegrams from input `source`
    /// (nodes may be connected to several buses; §III-C "Multiple Input
    /// Sources").
    fn on_bus_cycle(&mut self, source: usize, cycle: u64, time_ms: u64, telegrams: &[Telegram]);

    /// Delivers a network message.
    fn on_message(&mut self, message: NodeMessage);

    /// Fires an armed timer.
    fn on_timer(&mut self, timer: TimerId);

    /// Drains the effects produced since the last call.
    fn drain_effects(&mut self) -> Vec<NodeEffect>;

    /// The node's blockchain store.
    fn chain(&self) -> &ChainStore;

    /// Mutable access to the blockchain store (used by the export
    /// protocol handler).
    fn chain_mut(&mut self) -> &mut ChainStore;

    /// Stable checkpoint proofs collected so far, oldest first.
    fn stable_proofs(&self) -> &[CheckpointProof];

    /// Evaluation counters.
    fn stats(&self) -> NodeStats;

    /// Approximate resident memory in bytes.
    fn approx_memory_bytes(&self) -> usize;

    /// Number of open (undecided) requests this node is tracking.
    fn open_requests(&self) -> usize;

    /// Number of origins currently holding an open-request rate-limit
    /// slot; returns to zero once every request decides. The baseline
    /// has no rate limiter and always reports zero.
    fn open_origins(&self) -> usize {
        0
    }

    /// The underlying PBFT replica's counters.
    fn consensus_stats(&self) -> zugchain_pbft::ReplicaStats;

    /// Diagnostic snapshot of undecided consensus slots.
    fn slot_snapshot(&self) -> Vec<(u64, bool, usize, usize, bool, bool)>;

    /// Diagnostic `(view, low watermark, decided_up_to, next_sn, buffered)`.
    fn progress_snapshot(&self) -> (u64, u64, u64, u64, usize);

    /// Attaches a telemetry handle: resolves this node's registry
    /// metrics (consensus and communication layer) once. The default is
    /// a no-op so node types without instrument points stay valid.
    fn set_telemetry(&mut self, _telemetry: &zugchain_telemetry::Telemetry) {}
}

/// Boxed nodes are nodes, so a runtime can drive a heterogeneous
/// [`TrainMachine<Box<dyn TrainNode>>`] (the simulator switches between
/// ZugChain and the baseline this way).
impl<N: TrainNode + ?Sized> TrainNode for Box<N> {
    fn id(&self) -> NodeId {
        (**self).id()
    }
    fn view(&self) -> u64 {
        (**self).view()
    }
    fn is_primary(&self) -> bool {
        (**self).is_primary()
    }
    fn on_raw_bus_payload(&mut self, payload: Vec<u8>, time_ms: u64) {
        (**self).on_raw_bus_payload(payload, time_ms);
    }
    fn on_bus_cycle(&mut self, source: usize, cycle: u64, time_ms: u64, telegrams: &[Telegram]) {
        (**self).on_bus_cycle(source, cycle, time_ms, telegrams);
    }
    fn on_message(&mut self, message: NodeMessage) {
        (**self).on_message(message);
    }
    fn on_timer(&mut self, timer: TimerId) {
        (**self).on_timer(timer);
    }
    fn drain_effects(&mut self) -> Vec<NodeEffect> {
        (**self).drain_effects()
    }
    fn chain(&self) -> &ChainStore {
        (**self).chain()
    }
    fn chain_mut(&mut self) -> &mut ChainStore {
        (**self).chain_mut()
    }
    fn stable_proofs(&self) -> &[CheckpointProof] {
        (**self).stable_proofs()
    }
    fn stats(&self) -> NodeStats {
        (**self).stats()
    }
    fn approx_memory_bytes(&self) -> usize {
        (**self).approx_memory_bytes()
    }
    fn open_requests(&self) -> usize {
        (**self).open_requests()
    }
    fn open_origins(&self) -> usize {
        (**self).open_origins()
    }
    fn consensus_stats(&self) -> zugchain_pbft::ReplicaStats {
        (**self).consensus_stats()
    }
    fn slot_snapshot(&self) -> Vec<(u64, bool, usize, usize, bool, bool)> {
        (**self).slot_snapshot()
    }
    fn progress_snapshot(&self) -> (u64, u64, u64, u64, usize) {
        (**self).progress_snapshot()
    }
    fn set_telemetry(&mut self, telemetry: &zugchain_telemetry::Telemetry) {
        (**self).set_telemetry(telemetry);
    }
}

/// A ZugChain node: the communication layer of Algorithm 1 wired to a
/// PBFT replica and the blockchain application.
///
/// See the crate docs for an overview and the paper mapping; the
/// [`TrainNode`] trait lists the runtime interface.
#[derive(Debug)]
pub struct ZugchainNode {
    id: NodeId,
    config: NodeConfig,
    key: KeyPair,
    replica: Replica,
    /// One consolidator per input source (bus link).
    sources: Vec<CycleConsolidator>,
    nsdb: Nsdb,
    /// Open requests by payload digest: R plus foreign requests received
    /// via broadcast/forward. Ordered map: iteration order (e.g. the new
    /// primary re-proposing after a view change) must be deterministic.
    pending: BTreeMap<Digest, Pending>,
    /// Open foreign requests per origin, for the DoS rate limit.
    open_by_origin: HashMap<NodeId, HashSet<Digest>>,
    dedup: DedupLog,
    builder: BlockBuilder,
    store: ChainStore,
    stable_proofs: Vec<CheckpointProof>,
    /// Latest bus time observed, stamped into blocks.
    last_time_ms: u64,
    effects: Vec<NodeEffect>,
    stats: NodeStats,
    /// Registry handles for the layer's instrument points, resolved by
    /// [`TrainNode::set_telemetry`]; disabled (free) by default.
    metrics: NodeMetrics,
    /// Span-emission handle (train-scoped when the node belongs to a
    /// fleet train); disabled by default.
    telemetry: zugchain_telemetry::Telemetry,
}

/// Cached registry handles for the communication layer's instrument
/// points (the consensus-level points live in `zugchain-pbft`).
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeMetrics {
    pub(crate) logged: zugchain_telemetry::Counter,
    pub(crate) blocks: zugchain_telemetry::Counter,
    pub(crate) dedup_hits: zugchain_telemetry::Counter,
    pub(crate) rate_limited: zugchain_telemetry::Counter,
    pub(crate) state_transfers: zugchain_telemetry::Counter,
    pub(crate) open_requests: zugchain_telemetry::Gauge,
    pub(crate) open_origins: zugchain_telemetry::Gauge,
}

impl NodeMetrics {
    pub(crate) fn resolve(telemetry: &zugchain_telemetry::Telemetry) -> Self {
        Self {
            logged: telemetry.counter("zugchain_node_logged_total"),
            blocks: telemetry.counter("zugchain_node_blocks_total"),
            dedup_hits: telemetry.counter("zugchain_node_dedup_hits_total"),
            rate_limited: telemetry.counter("zugchain_node_rate_limited_total"),
            state_transfers: telemetry.counter("zugchain_node_state_transfers_total"),
            open_requests: telemetry.gauge("zugchain_node_open_requests"),
            open_origins: telemetry.gauge("zugchain_node_open_origins"),
        }
    }
}

impl ZugchainNode {
    /// Creates a node with a single bus input source.
    pub fn new(id: u64, config: NodeConfig, nsdb: Nsdb, key: KeyPair, keystore: Keystore) -> Self {
        let pbft_config = config
            .pbft
            .clone()
            .with_view_change_timeout(config.view_change_timeout_ms);
        let replica = Replica::new(NodeId(id), pbft_config, key.clone(), keystore);
        Self {
            id: NodeId(id),
            sources: vec![CycleConsolidator::new(nsdb.clone())],
            nsdb,
            pending: BTreeMap::new(),
            open_by_origin: HashMap::new(),
            dedup: DedupLog::new(config.dedup_window_checkpoints),
            builder: BlockBuilder::new(config.block_size),
            store: ChainStore::new(),
            stable_proofs: Vec::new(),
            last_time_ms: 0,
            effects: Vec::new(),
            stats: NodeStats::default(),
            metrics: NodeMetrics::default(),
            telemetry: zugchain_telemetry::Telemetry::disabled(),
            config,
            key,
            replica,
        }
    }

    /// Recovers a node from durable state after a power loss: the
    /// reloaded (verified) chain plus its stable checkpoint proofs. The
    /// block builder resumes at the chain head, consensus resumes after
    /// the last stable checkpoint, and the duplicate filter is re-seeded
    /// from the resident blocks so pre-restart payloads are not logged
    /// twice.
    ///
    /// # Panics
    ///
    /// Panics if `proofs` is empty or its last entry does not match the
    /// chain head (the caller must have verified the reloaded chain).
    pub fn recover(
        id: u64,
        config: NodeConfig,
        nsdb: Nsdb,
        key: KeyPair,
        keystore: Keystore,
        store: zugchain_blockchain::ChainStore,
        proofs: Vec<CheckpointProof>,
    ) -> Self {
        let last = proofs
            .last()
            .expect("recovery requires a stable checkpoint");
        assert_eq!(
            last.checkpoint.state_digest,
            store.head_hash(),
            "checkpoint proof must cover the reloaded chain head"
        );
        let pbft_config = config
            .pbft
            .clone()
            .with_view_change_timeout(config.view_change_timeout_ms);
        let replica = Replica::resume(NodeId(id), pbft_config, key.clone(), keystore, last.clone());
        let mut dedup = DedupLog::new(config.dedup_window_checkpoints);
        for block in store.blocks() {
            for request in &block.requests {
                dedup.record(request.payload_digest(), request.sn);
            }
            dedup.on_checkpoint();
        }
        let builder = BlockBuilder::resume(config.block_size, store.height(), store.head_hash());
        Self {
            id: NodeId(id),
            sources: vec![CycleConsolidator::new(nsdb.clone())],
            nsdb,
            pending: BTreeMap::new(),
            open_by_origin: HashMap::new(),
            dedup,
            builder,
            store,
            stable_proofs: proofs,
            last_time_ms: 0,
            effects: Vec::new(),
            stats: NodeStats::default(),
            metrics: NodeMetrics::default(),
            telemetry: zugchain_telemetry::Telemetry::disabled(),
            config,
            key,
            replica,
        }
    }

    /// Mutation hook (chaos harness only): makes this node's replica
    /// equivocate while primary — see
    /// [`Replica::enable_equivocation_bug`].
    #[cfg(feature = "mutation-hooks")]
    pub fn enable_equivocation_bug(&mut self) {
        self.replica.enable_equivocation_bug();
    }

    /// Installs a state-transfer package fetched from a peer: a chain
    /// whose head is covered by `proofs.last()`, replacing this node's
    /// (lagging) chain, stable proofs, dedup log, and block builder.
    ///
    /// The consensus replica is deliberately untouched. A node requests
    /// a transfer when a stable checkpoint overtakes its decide stream
    /// (`NodeEvent::StateTransferNeeded`); at that point the replica has
    /// already advanced its watermark and decide cursor past the gap and
    /// kept its view — only the logging layer is behind. Rebuilding the
    /// replica instead (as crash recovery does) would reset its view and
    /// strand the node if it can no longer learn the cluster's current
    /// view.
    ///
    /// Pending requests bundled in the transferred blocks are cleared
    /// and their timers cancelled, exactly as if their decides had been
    /// observed locally.
    pub fn install_transfer(
        &mut self,
        store: zugchain_blockchain::ChainStore,
        proofs: Vec<CheckpointProof>,
    ) {
        let last = proofs
            .last()
            .expect("a state transfer carries a stable checkpoint");
        assert_eq!(
            last.checkpoint.state_digest,
            store.head_hash(),
            "checkpoint proof must cover the transferred chain head"
        );
        let mut dedup = DedupLog::new(self.config.dedup_window_checkpoints);
        for block in store.blocks() {
            for request in &block.requests {
                dedup.record(request.payload_digest(), request.sn);
                if let Some(pending) = self.pending.remove(&request.payload_digest()) {
                    self.release_open_slot(pending.request.origin, &request.payload_digest());
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::Soft(request.payload_digest()),
                    });
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::Hard(request.payload_digest()),
                    });
                }
            }
            dedup.on_checkpoint();
        }
        self.dedup = dedup;
        self.builder =
            BlockBuilder::resume(self.config.block_size, store.height(), store.head_hash());
        self.store = store;
        self.stable_proofs = proofs;
    }

    /// Attaches an additional bus input source, returning its index.
    pub fn add_input_source(&mut self) -> usize {
        self.sources.push(CycleConsolidator::new(self.nsdb.clone()));
        self.sources.len() - 1
    }

    /// The train this node's consensus group belongs to.
    pub fn train_id(&self) -> TrainId {
        self.config.train
    }

    /// Returns `true` if this node is co-located with the current BFT
    /// primary.
    pub fn is_primary(&self) -> bool {
        self.replica.is_primary()
    }

    /// The current view number of the underlying replica.
    pub fn view(&self) -> u64 {
        self.replica.view()
    }

    /// The underlying PBFT replica (read-only).
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// Number of requests currently open (undecided).
    pub fn open_requests(&self) -> usize {
        self.pending.len()
    }

    /// Number of origins currently holding a rate-limit slot. Bounded by
    /// the group size when slots are released correctly.
    pub fn open_origins(&self) -> usize {
        self.open_by_origin.len()
    }

    /// Releases `digest`'s per-origin rate-limit slot, dropping the
    /// origin's entry entirely once it empties — otherwise the map keeps
    /// one `HashSet` per origin ever seen and grows forever.
    fn release_open_slot(&mut self, origin: NodeId, digest: &Digest) {
        if let std::collections::hash_map::Entry::Occupied(mut open) =
            self.open_by_origin.entry(origin)
        {
            open.get_mut().remove(digest);
            if open.get().is_empty() {
                open.remove();
            }
        }
    }

    /// Algorithm 1, `upon RECEIVE(req)` (ln. 5–11).
    fn handle_local_request(&mut self, payload: Vec<u8>) {
        let digest = Digest::of(&payload);
        if self.dedup.contains(&digest) || self.pending.contains_key(&digest) {
            // Already logged or already in flight: a delayed duplicate
            // delivery from the bus.
            self.stats.duplicates_filtered += 1;
            self.metrics.dedup_hits.inc();
            return;
        }
        let request = ProposedRequest::application(payload, self.id).with_time(self.last_time_ms);
        if self.telemetry.is_enabled() {
            self.trace_origin_spans(&digest);
        }
        self.pending.insert(
            digest,
            Pending {
                request: request.clone(),
                mine: true,
            },
        );
        if self.is_primary() {
            // ln. 7–9: the primary proposes directly.
            self.stats.proposed += 1;
            self.replica.propose(request);
            self.pump_replica();
        } else {
            // ln. 11: backups arm the soft timeout.
            self.effects.push(Effect::SetTimer {
                id: TimerId::Soft(digest),
                duration_ms: self.config.soft_timeout_ms,
            });
        }
        self.update_open_gauges();
    }

    /// Emits the origin-side spans of a freshly accepted bus payload:
    /// `record` — the MVB read itself, a point in time at the agreed bus
    /// timestamp (the root of the request's trace) — and `submit`, the
    /// hand-off from reception to consensus. Every later stage re-derives
    /// the same trace id from `(train, origin, payload digest)`.
    fn trace_origin_spans(&self, digest: &Digest) {
        let train = self.telemetry.train_id();
        let node = self.id.0;
        let recorded = self.last_time_ms;
        let now = self.telemetry.now_ms().max(recorded);
        let trace_id = derive_trace_id(train, node, digest.as_bytes());
        let record_span = derive_span_id(trace_id, Stage::Record.as_str(), node);
        self.telemetry.record_span(|| Span {
            trace_id,
            span_id: record_span,
            parent_span: 0,
            stage: Stage::Record,
            node,
            train,
            sn: 0,
            start_ms: recorded,
            end_ms: recorded,
        });
        self.telemetry.record_span(|| Span {
            trace_id,
            span_id: derive_span_id(trace_id, Stage::Submit.as_str(), node),
            parent_span: record_span,
            stage: Stage::Submit,
            node,
            train,
            sn: 0,
            start_ms: recorded,
            end_ms: now,
        });
    }

    /// Publishes the open-request and rate-limit occupancy gauges.
    fn update_open_gauges(&self) {
        self.metrics.open_requests.set(self.pending.len() as i64);
        self.metrics
            .open_origins
            .set(self.open_by_origin.len() as i64);
    }

    /// Algorithm 1, `upon DECIDE(r, sn)` (ln. 12–20).
    fn on_decide(&mut self, sn: u64, request: ProposedRequest) {
        if request.is_noop() {
            return; // view-change gap filler, nothing to log
        }
        let digest = request.payload_digest();

        // ln. 13–16: clear queue entry and any timers.
        if let Some(pending) = self.pending.remove(&digest) {
            self.release_open_slot(pending.request.origin, &digest);
            self.effects.push(Effect::CancelTimer {
                id: TimerId::Soft(digest),
            });
            self.effects.push(Effect::CancelTimer {
                id: TimerId::Hard(digest),
            });
        }

        // ln. 17–18: a payload already in the log means the primary
        // proposed a duplicate — suspect it.
        if self.dedup.contains(&digest) {
            self.stats.primary_duplicates_detected += 1;
            let primary = self.replica.primary();
            self.replica.suspect(primary);
            self.pump_replica();
            return;
        }

        // ln. 20: append to the log with the origin's id.
        self.dedup.record(digest, sn);
        self.stats.logged += 1;
        self.metrics.logged.inc();
        self.update_open_gauges();
        self.effects.push(Effect::Output(NodeEvent::Logged {
            sn,
            origin: request.origin,
            payload: request.payload.clone(),
        }));
        let logged = LoggedRequest {
            sn,
            origin: request.origin.0,
            payload: request.payload,
        };
        // Stamp the block with the *agreed* request time, never a local
        // clock: all replicas must bundle bit-identical blocks.
        if let Some(block) = self.builder.push(logged, request.time_ms) {
            let block_hash = block.hash();
            let last_sn = block.header.last_sn;
            self.store
                .append(block.clone())
                .expect("builder output always extends the local chain");
            self.stats.blocks_created += 1;
            self.metrics.blocks.inc();
            self.effects
                .push(Effect::Output(NodeEvent::BlockCreated { block }));
            // One checkpoint per block (§III-C): the checkpoint digest is
            // the block hash, backing the block with replica signatures.
            self.replica.record_checkpoint(last_sn, block_hash);
            self.pump_replica();
        }
    }

    /// Algorithm 1, `upon NEWPRIMARY(pid)` (ln. 36–43).
    ///
    /// Open requests are those "without a corresponding DECIDE or running
    /// consensus instance" (§III-C): requests the `NewView` already
    /// re-preprepared must not be proposed (or timed) again — ordering
    /// them twice would make honest nodes suspect the new primary.
    fn on_new_primary(&mut self, view: u64, primary: NodeId) {
        self.effects
            .push(Effect::Output(NodeEvent::NewPrimary { view, primary }));
        let pending: Vec<(Digest, Pending)> =
            self.pending.iter().map(|(d, p)| (*d, p.clone())).collect();
        if primary == self.id {
            // ln. 39–41: the new primary proposes all open requests. Its
            // own timers from when it was a backup are void — it cannot
            // censor itself, and a stale hard timer must not push the
            // fresh primary into suspecting itself.
            for (digest, entry) in pending {
                self.effects.push(Effect::CancelTimer {
                    id: TimerId::Soft(digest),
                });
                self.effects.push(Effect::CancelTimer {
                    id: TimerId::Hard(digest),
                });
                if !self.dedup.contains(&digest) && !self.replica.has_in_flight_payload(&digest) {
                    self.stats.proposed += 1;
                    self.replica.propose(entry.request);
                }
            }
            self.pump_replica();
        } else {
            // ln. 43: backups restart timers for open requests — soft for
            // requests they read themselves, hard for foreign requests
            // they already broadcast or received.
            for (digest, entry) in pending {
                if self.replica.has_in_flight_payload(&digest) {
                    // Its re-preprepare is already running: disarm any
                    // timer left over from the old view so the about-to-
                    // arrive decide is not mistaken for censorship.
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::Soft(digest),
                    });
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::Hard(digest),
                    });
                    continue;
                }
                // A fresh primary gets a fresh accusation window: void
                // timers armed against the deposed primary before
                // re-arming (ln. 43 "restart their SOFT_TIMEOUTs").
                self.effects.push(Effect::CancelTimer {
                    id: TimerId::Soft(digest),
                });
                self.effects.push(Effect::CancelTimer {
                    id: TimerId::Hard(digest),
                });
                let (id, duration_ms) = if entry.mine {
                    (TimerId::Soft(digest), self.config.soft_timeout_ms)
                } else {
                    (TimerId::Hard(digest), self.config.hard_timeout_ms)
                };
                self.effects.push(Effect::SetTimer { id, duration_ms });
            }
        }
    }

    /// Algorithm 1, `upon BROADCAST(r)` receiver side (ln. 25–32), plus
    /// forwarded requests reaching the primary.
    fn on_layer_message(&mut self, message: LayerMessage) {
        let keystore_ok = message.request().verify(self.keystore());
        if !keystore_ok {
            self.stats.invalid_signatures += 1;
            return;
        }
        let signed = message.request().clone();
        let digest = signed.payload_digest();
        let origin = signed.request.origin;

        // ln. 26–27: ignore duplicates already in the log.
        if self.dedup.contains(&digest) {
            self.stats.duplicates_filtered += 1;
            self.metrics.dedup_hits.inc();
            return;
        }

        // DoS containment (§III-C, fault (iii)): cap open requests per
        // origin; drop the excess.
        if origin != self.id && !self.pending.contains_key(&digest) {
            let open = self.open_by_origin.entry(origin).or_default();
            if open.len() >= self.config.open_request_limit {
                self.stats.rate_limited += 1;
                self.metrics.rate_limited.inc();
                return;
            }
            open.insert(digest);
            self.update_open_gauges();
        }

        let already_pending = self.pending.contains_key(&digest);
        if !already_pending {
            self.pending.insert(
                digest,
                Pending {
                    request: signed.request.clone(),
                    mine: false,
                },
            );
        }

        match message {
            LayerMessage::BroadcastRequest(_) => {
                if self.is_primary() {
                    // ln. 28–29: propose with the id of the broadcasting
                    // node, unless it is already in flight.
                    if !already_pending {
                        self.stats.proposed += 1;
                        self.replica.propose(signed.request);
                        self.pump_replica();
                    }
                } else {
                    // ln. 31–32: arm the hard timeout and make sure the
                    // primary receives the request even if the (possibly
                    // faulty) broadcaster omitted it.
                    self.effects.push(Effect::SetTimer {
                        id: TimerId::Hard(digest),
                        duration_ms: self.config.hard_timeout_ms,
                    });
                    let primary = self.replica.primary();
                    self.effects.push(Effect::Send {
                        to: primary,
                        message: NodeMessage::Layer(LayerMessage::ForwardRequest(signed)),
                    });
                }
            }
            LayerMessage::ForwardRequest(_) => {
                if self.is_primary() && !already_pending {
                    self.stats.proposed += 1;
                    self.replica.propose(signed.request);
                    self.pump_replica();
                }
            }
            LayerMessage::ClientRequest(_) => {
                // Baseline-mode message; a ZugChain node never orders it.
            }
        }
    }

    fn keystore(&self) -> &Keystore {
        // The replica owns the keystore; reuse it rather than carrying a
        // second copy.
        self.replica.keystore()
    }

    /// Translates buffered PBFT effects into node effects. The replica
    /// owns its view-change timer; this layer only relabels the timer id
    /// into the node's [`TimerId`] vocabulary.
    fn pump_replica(&mut self) {
        let effects = self.replica.drain_effects();
        for effect in effects {
            match effect {
                Effect::Broadcast { message } => self.effects.push(Effect::Broadcast {
                    message: NodeMessage::Consensus(message),
                }),
                Effect::Send { to, message } => self.effects.push(Effect::Send {
                    to,
                    message: NodeMessage::Consensus(message),
                }),
                Effect::SetTimer {
                    id: ReplicaTimer::ViewChange(view),
                    duration_ms,
                } => {
                    self.effects.push(Effect::SetTimer {
                        id: TimerId::ViewChange(view),
                        duration_ms,
                    });
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::ViewChange(view),
                } => {
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::ViewChange(view),
                    });
                }
                Effect::SetTimer {
                    id: ReplicaTimer::BatchFlush,
                    duration_ms,
                } => {
                    self.effects.push(Effect::SetTimer {
                        id: TimerId::BatchFlush,
                        duration_ms,
                    });
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::BatchFlush,
                } => {
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::BatchFlush,
                    });
                }
                Effect::SetTimer {
                    id: ReplicaTimer::CollectorPrepare(sn),
                    duration_ms,
                } => {
                    self.effects.push(Effect::SetTimer {
                        id: TimerId::CollectorPrepare(sn),
                        duration_ms,
                    });
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::CollectorPrepare(sn),
                } => {
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::CollectorPrepare(sn),
                    });
                }
                Effect::SetTimer {
                    id: ReplicaTimer::CollectorCommit(sn),
                    duration_ms,
                } => {
                    self.effects.push(Effect::SetTimer {
                        id: TimerId::CollectorCommit(sn),
                        duration_ms,
                    });
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::CollectorCommit(sn),
                } => {
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::CollectorCommit(sn),
                    });
                }
                Effect::Output(ReplicaEvent::Decide { sn, request }) => {
                    self.on_decide(sn, request);
                }
                Effect::Output(ReplicaEvent::NewPrimary { view, primary }) => {
                    self.on_new_primary(view, primary);
                }
                Effect::Output(ReplicaEvent::PrePrepareSeen { payload_digest, .. }) => {
                    // §III-C optimization: the preprepare is a reliable
                    // enough signal to cancel the soft timeout early.
                    if self.pending.contains_key(&payload_digest) {
                        self.effects.push(Effect::CancelTimer {
                            id: TimerId::Soft(payload_digest),
                        });
                    }
                }
                Effect::Output(ReplicaEvent::StableCheckpoint { proof }) => {
                    self.dedup.on_checkpoint();
                    self.stable_proofs.push(proof.clone());
                    self.effects
                        .push(Effect::Output(NodeEvent::CheckpointStable { proof }));
                }
                Effect::Output(ReplicaEvent::NeedStateTransfer { from_sn, to_sn }) => {
                    self.metrics.state_transfers.inc();
                    self.effects
                        .push(Effect::Output(NodeEvent::StateTransferNeeded {
                            from_sn,
                            to_sn,
                        }));
                }
            }
        }
    }
}

impl TrainNode for ZugchainNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn view(&self) -> u64 {
        ZugchainNode::view(self)
    }

    fn is_primary(&self) -> bool {
        ZugchainNode::is_primary(self)
    }

    fn on_raw_bus_payload(&mut self, payload: Vec<u8>, time_ms: u64) {
        self.last_time_ms = self.last_time_ms.max(time_ms);
        self.stats.bus_requests += 1;
        self.handle_local_request(payload);
    }

    fn on_bus_cycle(&mut self, source: usize, cycle: u64, time_ms: u64, telegrams: &[Telegram]) {
        self.last_time_ms = self.last_time_ms.max(time_ms);
        assert!(source < self.sources.len(), "unknown input source {source}");
        if let Some(request) = self.sources[source].consolidate(cycle, time_ms, telegrams) {
            self.stats.bus_requests += 1;
            let payload = zugchain_wire::to_bytes(&request);
            self.handle_local_request(payload);
        }
    }

    fn on_message(&mut self, message: NodeMessage) {
        match message {
            NodeMessage::Consensus(signed) => {
                self.replica.on_message(signed);
                self.pump_replica();
            }
            NodeMessage::Layer(layer) => self.on_layer_message(layer),
        }
    }

    fn on_timer(&mut self, timer: TimerId) {
        match timer {
            TimerId::Soft(digest) => {
                // ln. 21–24: broadcast the request and arm the hard
                // timeout.
                let Some(pending) = self.pending.get(&digest) else {
                    return;
                };
                if self.dedup.contains(&digest) || self.replica.has_in_flight_payload(&digest) {
                    return;
                }
                if self.is_primary() {
                    // A timer that survived into our own primaryship just
                    // means the request is ours to order.
                    let request = pending.request.clone();
                    self.stats.proposed += 1;
                    self.replica.propose(request);
                    self.pump_replica();
                    return;
                }
                self.stats.soft_timeouts += 1;
                let signed = SignedRequest::sign(pending.request.clone(), &self.key);
                self.effects.push(Effect::SetTimer {
                    id: TimerId::Hard(digest),
                    duration_ms: self.config.hard_timeout_ms,
                });
                self.effects.push(Effect::Broadcast {
                    message: NodeMessage::Layer(LayerMessage::BroadcastRequest(signed)),
                });
            }
            TimerId::Hard(digest) => {
                // ln. 33–35: the primary failed to order the request.
                if self.pending.contains_key(&digest) && !self.dedup.contains(&digest) {
                    if self.is_primary() {
                        // We became the primary since arming this timer:
                        // order the request instead of suspecting
                        // ourselves.
                        if !self.replica.has_in_flight_payload(&digest) {
                            let request = self.pending[&digest].request.clone();
                            self.stats.proposed += 1;
                            self.replica.propose(request);
                            self.pump_replica();
                        }
                        return;
                    }
                    self.stats.hard_timeouts += 1;
                    let primary = self.replica.primary();
                    self.replica.suspect(primary);
                    self.pump_replica();
                }
            }
            TimerId::ViewChange(view) => {
                self.replica.on_timer(ReplicaTimer::ViewChange(view));
                self.pump_replica();
            }
            TimerId::BatchFlush => {
                self.replica.on_timer(ReplicaTimer::BatchFlush);
                self.pump_replica();
            }
            TimerId::CollectorPrepare(sn) => {
                self.replica.on_timer(ReplicaTimer::CollectorPrepare(sn));
                self.pump_replica();
            }
            TimerId::CollectorCommit(sn) => {
                self.replica.on_timer(ReplicaTimer::CollectorCommit(sn));
                self.pump_replica();
            }
        }
    }

    fn drain_effects(&mut self) -> Vec<NodeEffect> {
        std::mem::take(&mut self.effects)
    }

    fn chain(&self) -> &ChainStore {
        &self.store
    }

    fn chain_mut(&mut self) -> &mut ChainStore {
        &mut self.store
    }

    fn stable_proofs(&self) -> &[CheckpointProof] {
        &self.stable_proofs
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn open_requests(&self) -> usize {
        self.pending.len()
    }

    fn open_origins(&self) -> usize {
        self.open_by_origin.len()
    }

    fn consensus_stats(&self) -> zugchain_pbft::ReplicaStats {
        self.replica.stats()
    }

    fn slot_snapshot(&self) -> Vec<(u64, bool, usize, usize, bool, bool)> {
        self.replica.slot_snapshot()
    }

    fn progress_snapshot(&self) -> (u64, u64, u64, u64, usize) {
        self.replica.progress_snapshot()
    }

    fn approx_memory_bytes(&self) -> usize {
        let pending_bytes: usize = self
            .pending
            .values()
            .map(|p| p.request.payload.len() + 96)
            .sum();
        self.replica.approx_memory_bytes()
            + self.store.resident_bytes()
            + self.dedup.approx_memory_bytes()
            + pending_bytes
            + self.stable_proofs.len() * 512
    }

    fn set_telemetry(&mut self, telemetry: &zugchain_telemetry::Telemetry) {
        // A fleet node publishes under `train="<id>"` next to the node
        // label; the default train keeps the legacy single-train label
        // set so existing dashboards and smoke checks are unchanged.
        let telemetry = if self.config.train == TrainId::DEFAULT || telemetry.train().is_some() {
            telemetry.clone()
        } else {
            telemetry.for_train(self.config.train.0)
        };
        self.metrics = NodeMetrics::resolve(&telemetry);
        self.replica.set_telemetry(&telemetry);
        self.telemetry = telemetry;
        self.update_open_gauges();
    }
}

/// Adapter implementing the shared [`Machine`] contract for any
/// [`TrainNode`] — the glue that lets one generic driver run
/// [`ZugchainNode`] and [`BaselineNode`](crate::BaselineNode) under the
/// simulator, the threaded runtime, and the TCP runtime alike.
///
/// (A blanket `impl Machine for N: TrainNode` would be a foreign-trait
/// blanket impl, which coherence forbids; the newtype keeps both traits
/// usable.)
#[derive(Debug)]
pub struct TrainMachine<N>(pub N);

impl<N: TrainNode> Machine for TrainMachine<N> {
    type Addr = NodeId;
    type Message = NodeMessage;
    type Timer = TimerId;
    type Output = NodeEvent;
    type Input = NodeInput;

    fn on_input(&mut self, input: NodeInput) -> Vec<NodeEffect> {
        match input {
            NodeInput::RawPayload { payload, time_ms } => {
                self.0.on_raw_bus_payload(payload, time_ms);
            }
            NodeInput::BusCycle {
                source,
                cycle,
                time_ms,
                telegrams,
            } => {
                self.0.on_bus_cycle(source, cycle, time_ms, &telegrams);
            }
            NodeInput::Message(message) => self.0.on_message(message),
        }
        self.0.drain_effects()
    }

    fn on_timer(&mut self, timer: TimerId) -> Vec<NodeEffect> {
        self.0.on_timer(timer);
        self.0.drain_effects()
    }
}

#[cfg(test)]
mod tests;
#[cfg(test)]
pub(crate) mod testutil;
