use zugchain_crypto::Digest;
use zugchain_pbft::{Commit, Message, NodeId, PrePrepare, Prepare, ProposedRequest, SignedMessage};

use crate::node::testutil::Cluster;
use crate::node::TrainNode;
use crate::{LayerMessage, NodeMessage, SignedRequest};

#[test]
fn identical_bus_input_is_logged_exactly_once() {
    let mut cluster = Cluster::zugchain(4);
    cluster.bus_payload_everywhere(b"cycle-0".to_vec());
    cluster.run_until_quiet();
    for id in 0..4 {
        let entries = cluster.logged_entries(id);
        assert_eq!(entries.len(), 1, "node {id} logs the payload once");
        assert_eq!(entries[0].payload, b"cycle-0");
        assert_eq!(entries[0].origin, NodeId(0), "primary's id is recorded");
    }
    // Only the primary proposed; backups filtered their copies.
    assert_eq!(cluster.node(0).stats().proposed, 1);
    for id in 1..4 {
        assert_eq!(cluster.node(id).stats().proposed, 0, "node {id}");
    }
}

#[test]
fn soft_timers_are_cancelled_after_ordering() {
    let mut cluster = Cluster::zugchain(4);
    cluster.bus_payload_everywhere(b"cycle-0".to_vec());
    cluster.run_until_quiet();
    for id in 0..4 {
        assert_eq!(
            cluster.armed_timers(id),
            0,
            "node {id} has no leftover timers"
        );
    }
    // No soft timeout ever fired.
    for id in 0..4 {
        assert_eq!(cluster.node(id).stats().soft_timeouts, 0);
    }
}

#[test]
fn blocks_form_at_block_size_and_checkpoint_stabilizes() {
    let mut cluster = Cluster::zugchain(4); // block size 3 in test config
    for tag in 0..3u8 {
        cluster.bus_payload_everywhere(vec![tag; 8]);
    }
    cluster.run_until_quiet();
    for id in 0..4 {
        let chain = cluster.node(id).chain();
        assert_eq!(chain.height(), 1, "node {id} created one block");
        let proofs = cluster.node(id).stable_proofs();
        assert_eq!(proofs.len(), 1, "node {id} has a stable checkpoint");
        let proof = &proofs[0];
        assert!(proof.verify(&cluster.keystore, 3));
        assert_eq!(
            proof.checkpoint.state_digest,
            chain.blocks()[0].hash(),
            "checkpoint digest is the block hash"
        );
        assert_eq!(proof.checkpoint.sn, 3);
    }
    // All nodes built the identical block.
    let hash0 = cluster.node(0).chain().head_hash();
    for id in 1..4 {
        assert_eq!(cluster.node(id).chain().head_hash(), hash0);
    }
}

#[test]
fn input_received_by_single_backup_is_logged_via_soft_timeout() {
    let mut cluster = Cluster::zugchain(4);
    // Only node 2 reads the payload (diverging bus reception).
    cluster.bus_payload_at(&[2], b"only-node-2".to_vec());
    cluster.run_until_quiet();
    assert_eq!(cluster.logged_payload_count(0), 0, "not ordered yet");

    // The soft timeout fires: node 2 broadcasts, the primary proposes.
    cluster.fire_due_timers();
    for id in 0..4 {
        let entries = cluster.logged_entries(id);
        assert_eq!(entries.len(), 1, "node {id}");
        assert_eq!(entries[0].payload, b"only-node-2");
        assert_eq!(entries[0].origin, NodeId(2), "origin is the receiver");
    }
    assert_eq!(cluster.node(2).stats().soft_timeouts, 1);
}

#[test]
fn input_received_only_at_primary_is_logged_immediately() {
    let mut cluster = Cluster::zugchain(4);
    cluster.bus_payload_at(&[0], b"only-primary".to_vec());
    cluster.run_until_quiet();
    for id in 0..4 {
        let entries = cluster.logged_entries(id);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].origin, NodeId(0));
    }
}

#[test]
fn censoring_primary_is_replaced_and_request_survives() {
    let mut cluster = Cluster::zugchain(4);
    // The primary is isolated (crashed/censoring); backups read a payload.
    cluster.silence_node(0);
    cluster.bus_payload_at(&[1, 2, 3], b"censored".to_vec());
    cluster.run_until_quiet();
    assert_eq!(cluster.logged_payload_count(1), 0);

    // Soft timeouts fire → broadcasts reach only backups; hard timeouts
    // fire → suspicion → view change to node 1 → the request is ordered.
    cluster.advance_time(1_000);
    for id in 1..4 {
        let entries = cluster.logged_entries(id);
        assert_eq!(entries.len(), 1, "node {id} logs after view change");
        assert_eq!(entries[0].payload, b"censored");
    }
    assert!(cluster
        .new_primaries()
        .iter()
        .any(|(_, view, primary)| *view == 1 && *primary == NodeId(1)));
}

#[test]
fn fabricated_request_is_logged_with_its_originator_id() {
    let mut cluster = Cluster::zugchain(4);
    // Node 3 fabricates data never seen on the bus and broadcasts it
    // directly (skipping its soft timer — it is faulty and impatient).
    let fabricated = ProposedRequest::application(b"fabricated".to_vec(), NodeId(3));
    let signed = SignedRequest::sign(fabricated, &cluster.pairs[3]);
    let message = NodeMessage::Layer(LayerMessage::BroadcastRequest(signed));
    for dest in 0..3 {
        cluster.node_mut(dest).on_message(message.clone());
    }
    cluster.run_until_quiet();
    // §III-B: fabricated data is logged *with the node identifier* so
    // post-analysis can attribute it.
    for id in 0..3 {
        let entries = cluster.logged_entries(id);
        assert_eq!(entries.len(), 1, "node {id}");
        assert_eq!(entries[0].origin, NodeId(3));
    }
}

#[test]
fn misattributed_broadcast_is_dropped() {
    let mut cluster = Cluster::zugchain(4);
    // Node 3 signs a request but claims node 1 received it.
    let forged = ProposedRequest::application(b"forged".to_vec(), NodeId(1));
    let signed = SignedRequest::sign(forged, &cluster.pairs[3]);
    cluster
        .node_mut(0)
        .on_message(NodeMessage::Layer(LayerMessage::BroadcastRequest(signed)));
    cluster.run_until_quiet();
    assert_eq!(cluster.node(0).stats().invalid_signatures, 1);
    assert_eq!(cluster.logged_payload_count(0), 0);
}

#[test]
fn flooding_node_is_rate_limited() {
    let mut cluster = Cluster::zugchain(4);
    let limit = crate::NodeConfig::default_for_testing().open_request_limit;
    // Node 3 floods node 1 with distinct fabricated requests.
    for tag in 0..(limit as u32 + 10) {
        let request = ProposedRequest::application(tag.to_le_bytes().to_vec(), NodeId(3));
        let signed = SignedRequest::sign(request, &cluster.pairs[3]);
        cluster
            .node_mut(1)
            .on_message(NodeMessage::Layer(LayerMessage::BroadcastRequest(signed)));
    }
    let stats = cluster.node(1).stats();
    assert_eq!(stats.rate_limited, 10, "excess requests are dropped");
}

#[test]
fn broadcast_to_backup_arms_hard_timer_and_forwards_to_primary() {
    let mut cluster = Cluster::zugchain(4);
    let request = ProposedRequest::application(b"via-broadcast".to_vec(), NodeId(3));
    let signed = SignedRequest::sign(request, &cluster.pairs[3]);
    // Deliver only to backup node 1; it must forward to the primary so a
    // faulty broadcaster cannot cause a false suspicion (Alg. 1 ln. 32).
    cluster
        .node_mut(1)
        .on_message(NodeMessage::Layer(LayerMessage::BroadcastRequest(signed)));
    cluster.collect_effects();
    assert_eq!(cluster.armed_timers(1), 1, "hard timer armed");
    cluster.run_until_quiet();
    // Forwarding reached the primary, which proposed; all log it.
    for id in 0..4 {
        assert_eq!(cluster.logged_payload_count(id), 1, "node {id}");
    }
    assert_eq!(cluster.armed_timers(1), 0, "hard timer cancelled by decide");
}

#[test]
fn bus_duplicate_deliveries_are_filtered_locally() {
    let mut cluster = Cluster::zugchain(4);
    cluster.bus_payload_everywhere(b"dup".to_vec());
    cluster.run_until_quiet();
    // The same payload arrives again (delayed bus frame).
    cluster.bus_payload_everywhere(b"dup".to_vec());
    cluster.run_until_quiet();
    for id in 0..4 {
        assert_eq!(cluster.logged_payload_count(id), 1, "node {id}");
        assert!(cluster.node(id).stats().duplicates_filtered >= 1);
    }
}

#[test]
fn ordered_duplicate_from_faulty_primary_triggers_suspicion() {
    // Drive a single node with hand-crafted consensus traffic that orders
    // the same payload twice — the behaviour of a filtering-bypassing
    // faulty primary. The node must log it once and suspect the primary.
    let cluster = Cluster::zugchain(4);
    let pairs = cluster.pairs.clone();
    let keystore = cluster.keystore.clone();
    let config = crate::NodeConfig::default_for_testing();
    let mut node = crate::ZugchainNode::new(
        3,
        config,
        zugchain_mvb::Nsdb::jru_default(),
        pairs[3].clone(),
        keystore,
    );

    let payload = b"duplicated-by-primary".to_vec();
    let order_at = |sn: u64| {
        let request = ProposedRequest::application(payload.clone(), NodeId(0));
        let batch = zugchain_pbft::ProposedBatch::single(request);
        let digest = batch.digest();
        let mut messages = vec![SignedMessage::sign(
            NodeId(0),
            Message::PrePrepare(PrePrepare { view: 0, sn, batch }),
            &pairs[0],
        )];
        for id in [1u64, 2] {
            messages.push(SignedMessage::sign(
                NodeId(id),
                Message::Prepare(Prepare {
                    view: 0,
                    sn,
                    digest,
                }),
                &pairs[id as usize],
            ));
        }
        for id in [0u64, 1, 2] {
            messages.push(SignedMessage::sign(
                NodeId(id),
                Message::Commit(Commit {
                    view: 0,
                    sn,
                    digest,
                }),
                &pairs[id as usize],
            ));
        }
        messages
    };

    for message in order_at(1).into_iter().chain(order_at(2)) {
        node.on_message(NodeMessage::Consensus(message));
    }
    let effects = node.drain_effects();

    assert_eq!(node.stats().logged, 1, "payload logged exactly once");
    assert_eq!(node.stats().primary_duplicates_detected, 1);
    // The node must have initiated a view change (Alg. 1 ln. 17–18).
    assert!(effects.iter().any(|effect| matches!(
        effect,
        zugchain_machine::Effect::Broadcast {
            message: NodeMessage::Consensus(m)
        } if matches!(m.message, Message::ViewChange(_))
    )));
}

#[test]
fn multiple_input_sources_are_all_logged() {
    let mut cluster = Cluster::zugchain(4);
    // Give every node a second input source and feed diverging telegrams
    // through the real consolidation path of source 0 via raw payloads.
    cluster.bus_payload_everywhere(b"bus-A".to_vec());
    cluster.bus_payload_everywhere(b"bus-B".to_vec());
    cluster.run_until_quiet();
    for id in 0..4 {
        assert_eq!(cluster.logged_payload_count(id), 2, "node {id}");
    }
}

#[test]
fn telegram_pipeline_logs_changed_signals() {
    use zugchain_mvb::{Bus, BusConfig, SignalGenerator};
    let mut cluster = Cluster::zugchain(4);
    let config = BusConfig::jru_default(64);
    let mut bus = Bus::new(config, 4, 5);
    bus.attach_device(Box::new(SignalGenerator::new(11)));

    for _ in 0..6 {
        let out = bus.run_cycle();
        for obs in &out.observations {
            cluster
                .node_mut(obs.tap)
                .on_bus_cycle(0, out.cycle, out.time_ms, &obs.telegrams);
        }
        cluster.run_until_quiet();
    }
    // The accelerating train changes speed every cycle: several requests
    // must have been logged, identically on every node.
    let count = cluster.logged_payload_count(0);
    assert!(count >= 3, "expected several logged cycles, got {count}");
    for id in 1..4 {
        assert_eq!(cluster.logged_payload_count(id), count, "node {id}");
    }
    let digests: Vec<Digest> = cluster
        .logged_entries(0)
        .iter()
        .map(|e| Digest::of(&e.payload))
        .collect();
    for id in 1..4 {
        let other: Vec<Digest> = cluster
            .logged_entries(id)
            .iter()
            .map(|e| Digest::of(&e.payload))
            .collect();
        assert_eq!(other, digests, "logs agree in content and order");
    }
}

#[test]
fn chain_survives_and_extends_across_view_changes() {
    let mut cluster = Cluster::zugchain(4);
    for tag in 0..3u8 {
        cluster.bus_payload_everywhere(vec![tag; 4]);
    }
    cluster.run_until_quiet();
    assert_eq!(cluster.node(1).chain().height(), 1);

    cluster.silence_node(0);
    cluster.bus_payload_at(&[1, 2, 3], b"during-fault".to_vec());
    cluster.advance_time(1_000);

    // Log two more on the new primary to complete the next block.
    cluster.bus_payload_at(&[1, 2, 3], b"after-1".to_vec());
    cluster.bus_payload_at(&[1, 2, 3], b"after-2".to_vec());
    cluster.advance_time(1_000);

    let chain = cluster.node(1).chain();
    assert_eq!(chain.height(), 2, "second block formed in the new view");
    assert!(zugchain_blockchain::verify_chain(chain.blocks(), None).is_ok());
}

#[test]
fn stats_expose_bus_and_log_counters() {
    let mut cluster = Cluster::zugchain(4);
    cluster.bus_payload_everywhere(b"x".to_vec());
    cluster.run_until_quiet();
    let stats = cluster.node(0).stats();
    assert_eq!(stats.bus_requests, 1);
    assert_eq!(stats.logged, 1);
    assert_eq!(stats.blocks_created, 0);
}

/// Regression for the `open_by_origin` leak: once every request from an
/// origin decides, the origin's rate-limit entry must disappear — not
/// linger as an empty `HashSet` — so the map stays bounded no matter how
/// many requests flow through.
#[test]
fn origin_rate_slots_drain_to_zero_over_ten_thousand_requests() {
    let mut config = crate::NodeConfig::default_for_testing().with_block_size(4);
    // Full batches of one rate-limit window flush without timers.
    config.pbft = config.pbft.with_max_batch_size(8);
    let limit = config.open_request_limit;
    assert_eq!(limit, 8, "waves below assume the testing limit");
    let mut cluster = Cluster::zugchain_with_config(4, config);

    let waves = 10_000 / limit;
    for wave in 0..waves {
        for i in 0..limit {
            let payload = ((wave * limit + i) as u32).to_le_bytes().to_vec();
            let request = ProposedRequest::application(payload, NodeId(3));
            let signed = SignedRequest::sign(request, &cluster.pairs[3]);
            for node in 0..3 {
                cluster.node_mut(node).on_message(NodeMessage::Layer(
                    LayerMessage::BroadcastRequest(signed.clone()),
                ));
            }
        }
        cluster.run_until_quiet();
        for node in 0..3 {
            assert_eq!(
                cluster.node(node).open_origins(),
                0,
                "node {node} still holds origin entries after wave {wave}"
            );
        }
    }
    for node in 0..4 {
        assert_eq!(cluster.logged_payload_count(node), waves * limit);
        assert_eq!(cluster.node(node).stats().rate_limited, 0);
    }
}

/// Regression for the `open_by_origin` leak on the state-transfer path:
/// a node that recovers via `install_transfer` must release the decided
/// requests' rate-limit slots, or the crashed-and-recovered origin stays
/// rate-limited forever.
#[test]
fn crash_recovered_origin_can_broadcast_again() {
    let config = crate::NodeConfig::default_for_testing().with_block_size(4);
    let limit = config.open_request_limit;
    let mut cluster = Cluster::zugchain_with_config(4, config.clone());

    // Origin 3 broadcasts one full rate-limit window of requests.
    let signed: Vec<SignedRequest> = (0..limit)
        .map(|i| {
            let request = ProposedRequest::application(vec![i as u8; 16], NodeId(3));
            SignedRequest::sign(request, &cluster.pairs[3])
        })
        .collect();
    for request in &signed {
        for node in 0..3 {
            cluster
                .node_mut(node)
                .on_message(NodeMessage::Layer(LayerMessage::BroadcastRequest(
                    request.clone(),
                )));
        }
    }
    cluster.run_until_quiet();
    assert_eq!(cluster.node(0).chain().height(), 2, "two blocks formed");

    // A standalone replica of node 1 saw the broadcasts but missed every
    // decide (crashed mid-run): its slots for origin 3 are all taken.
    let mut node = crate::ZugchainNode::new(
        1,
        config,
        zugchain_mvb::Nsdb::jru_default(),
        cluster.pairs[1].clone(),
        cluster.keystore.clone(),
    );
    for request in &signed {
        node.on_message(NodeMessage::Layer(LayerMessage::BroadcastRequest(
            request.clone(),
        )));
    }
    let _ = node.drain_effects();
    let extra = SignedRequest::sign(
        ProposedRequest::application(b"one-too-many".to_vec(), NodeId(3)),
        &cluster.pairs[3],
    );
    node.on_message(NodeMessage::Layer(LayerMessage::BroadcastRequest(extra)));
    assert_eq!(node.stats().rate_limited, 1, "window is full");

    // Recovery: install the chain + checkpoint proofs from a live node.
    node.install_transfer(
        cluster.node(0).chain().clone(),
        cluster.node(0).stable_proofs().to_vec(),
    );
    let _ = node.drain_effects();
    assert_eq!(
        TrainNode::open_origins(&node),
        0,
        "decided requests must release their origin's entry"
    );

    // The recovered origin can broadcast again.
    let fresh = SignedRequest::sign(
        ProposedRequest::application(b"after-recovery".to_vec(), NodeId(3)),
        &cluster.pairs[3],
    );
    node.on_message(NodeMessage::Layer(LayerMessage::BroadcastRequest(fresh)));
    assert_eq!(node.stats().rate_limited, 1, "no new drop after recovery");
    assert_eq!(TrainNode::open_origins(&node), 1);
}

#[test]
fn memory_accounting_grows_with_chain() {
    let mut cluster = Cluster::zugchain(4);
    let before = cluster.node(0).approx_memory_bytes();
    for tag in 0..6u8 {
        cluster.bus_payload_everywhere(vec![tag; 512]);
    }
    cluster.run_until_quiet();
    let after = cluster.node(0).approx_memory_bytes();
    assert!(after > before + 2 * 512, "chain blocks are accounted");
}
