//! A deterministic, virtual-time cluster harness for unit tests.
//!
//! The real runtimes live in `zugchain-sim`; this harness is the minimum
//! needed to drive [`TrainNode`] implementations through messages and
//! timers inside unit tests.

#![allow(dead_code)] // helpers are used unevenly across the test modules

use std::collections::{BTreeMap, VecDeque};

use zugchain_crypto::{KeyPair, Keystore};
use zugchain_machine::Effect;
use zugchain_mvb::Nsdb;
use zugchain_pbft::NodeId;

use crate::node::{NodeEvent, TrainNode, ZugchainNode};
use crate::{BaselineNode, NodeConfig, NodeMessage, TimerId};

/// One logged entry observed on a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedEntry {
    /// Sequence number.
    pub sn: u64,
    /// Origin node id.
    pub origin: NodeId,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A synchronous router with virtual time for a group of train nodes.
pub struct Cluster {
    nodes: Vec<Box<dyn TrainNode>>,
    /// Key pairs, index = node id (for crafting Byzantine messages).
    pub pairs: Vec<KeyPair>,
    /// The group keystore.
    pub keystore: Keystore,
    queue: VecDeque<(usize, NodeMessage)>,
    /// Armed timers: (deadline, node, id). BTreeMap gives deadline order.
    timers: BTreeMap<(u64, usize, TimerId), ()>,
    now_ms: u64,
    silenced: Vec<bool>,
    logged: Vec<Vec<LoggedEntry>>,
    new_primaries: Vec<(usize, u64, NodeId)>,
}

impl Cluster {
    /// Builds a ZugChain cluster of `n` nodes with the testing config.
    pub fn zugchain(n: usize) -> Self {
        Self::zugchain_with_config(n, NodeConfig::default_for_testing())
    }

    /// Builds a ZugChain cluster with an explicit config.
    pub fn zugchain_with_config(n: usize, config: NodeConfig) -> Self {
        let (pairs, keystore) = Keystore::generate(n, 7);
        let nodes: Vec<Box<dyn TrainNode>> = pairs
            .iter()
            .enumerate()
            .map(|(id, key)| {
                Box::new(ZugchainNode::new(
                    id as u64,
                    config.clone(),
                    Nsdb::jru_default(),
                    key.clone(),
                    keystore.clone(),
                )) as Box<dyn TrainNode>
            })
            .collect();
        Self::wrap(nodes, pairs, keystore)
    }

    /// Builds a baseline cluster of `n` nodes with the testing config.
    pub fn baseline(n: usize) -> Self {
        let config = NodeConfig::default_for_testing();
        let (pairs, keystore) = Keystore::generate(n, 7);
        let nodes: Vec<Box<dyn TrainNode>> = pairs
            .iter()
            .enumerate()
            .map(|(id, key)| {
                Box::new(BaselineNode::new(
                    id as u64,
                    config.clone(),
                    Nsdb::jru_default(),
                    key.clone(),
                    keystore.clone(),
                )) as Box<dyn TrainNode>
            })
            .collect();
        Self::wrap(nodes, pairs, keystore)
    }

    fn wrap(nodes: Vec<Box<dyn TrainNode>>, pairs: Vec<KeyPair>, keystore: Keystore) -> Self {
        let n = nodes.len();
        Self {
            nodes,
            pairs,
            keystore,
            queue: VecDeque::new(),
            timers: BTreeMap::new(),
            now_ms: 0,
            silenced: vec![false; n],
            logged: vec![Vec::new(); n],
            new_primaries: Vec::new(),
        }
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Read access to a node.
    pub fn node(&self, index: usize) -> &dyn TrainNode {
        self.nodes[index].as_ref()
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, index: usize) -> &mut dyn TrainNode {
        self.nodes[index].as_mut()
    }

    /// Drops all traffic to and from a node (crash / isolation).
    pub fn silence_node(&mut self, index: usize) {
        self.silenced[index] = true;
    }

    /// Restores a silenced node's connectivity.
    pub fn unsilence_node(&mut self, index: usize) {
        self.silenced[index] = false;
    }

    /// Entries logged on a node, in log order.
    pub fn logged_entries(&self, index: usize) -> &[LoggedEntry] {
        &self.logged[index]
    }

    /// Number of entries logged on a node.
    pub fn logged_payload_count(&self, index: usize) -> usize {
        self.logged[index].len()
    }

    /// Completed view changes observed: `(node index, view, primary)`.
    pub fn new_primaries(&self) -> &[(usize, u64, NodeId)] {
        &self.new_primaries
    }

    /// Number of timers currently armed for a node.
    pub fn armed_timers(&self, index: usize) -> usize {
        self.timers
            .keys()
            .filter(|(_, node, _)| *node == index)
            .count()
    }

    /// Feeds the same raw payload to every node, as if all read it from
    /// the same bus cycle.
    pub fn bus_payload_everywhere(&mut self, payload: Vec<u8>) {
        let now = self.now_ms;
        for index in 0..self.nodes.len() {
            self.nodes[index].on_raw_bus_payload(payload.clone(), now);
        }
    }

    /// Feeds a payload to a subset of nodes (diverging bus reception).
    pub fn bus_payload_at(&mut self, indices: &[usize], payload: Vec<u8>) {
        let now = self.now_ms;
        for &index in indices {
            self.nodes[index].on_raw_bus_payload(payload.clone(), now);
        }
    }

    /// Collects a node's effects into the queue / records.
    fn pump(&mut self, index: usize) {
        let effects = self.nodes[index].drain_effects();
        for effect in effects {
            match effect {
                Effect::Broadcast { message } => {
                    if self.silenced[index] {
                        continue;
                    }
                    for dest in 0..self.nodes.len() {
                        if dest != index && !self.silenced[dest] {
                            self.queue.push_back((dest, message.clone()));
                        }
                    }
                }
                Effect::Send { to, message } => {
                    let dest = to.0 as usize;
                    if !self.silenced[index] && dest != index && !self.silenced[dest] {
                        self.queue.push_back((dest, message));
                    }
                }
                Effect::SetTimer { id, duration_ms } => {
                    // Re-arming replaces the previous deadline.
                    self.timers
                        .retain(|(_, node, timer), ()| !(*node == index && *timer == id));
                    self.timers
                        .insert((self.now_ms + duration_ms, index, id), ());
                }
                Effect::CancelTimer { id } => {
                    self.timers
                        .retain(|(_, node, timer), ()| !(*node == index && *timer == id));
                }
                Effect::Output(NodeEvent::Logged {
                    sn,
                    origin,
                    payload,
                }) => {
                    self.logged[index].push(LoggedEntry {
                        sn,
                        origin,
                        payload,
                    });
                }
                Effect::Output(NodeEvent::NewPrimary { view, primary }) => {
                    self.new_primaries.push((index, view, primary));
                }
                Effect::Output(
                    NodeEvent::BlockCreated { .. }
                    | NodeEvent::CheckpointStable { .. }
                    | NodeEvent::StateTransferNeeded { .. },
                ) => {}
            }
        }
    }

    /// Pumps every node's pending effects (arming timers, queueing
    /// messages) without delivering any queued message.
    pub fn collect_effects(&mut self) {
        for index in 0..self.nodes.len() {
            self.pump(index);
        }
    }

    /// Delivers all queued messages (and any they trigger) without
    /// advancing time.
    pub fn run_until_quiet(&mut self) {
        for index in 0..self.nodes.len() {
            self.pump(index);
        }
        while let Some((dest, message)) = self.queue.pop_front() {
            self.nodes[dest].on_message(message);
            self.pump(dest);
        }
    }

    /// Advances virtual time by `ms`, firing timers in deadline order and
    /// processing all resulting traffic.
    pub fn advance_time(&mut self, ms: u64) {
        // Flush buffered actions first so freshly-armed timers are seen.
        self.run_until_quiet();
        let deadline = self.now_ms + ms;
        while let Some((&(when, index, id), ())) = self.timers.iter().next() {
            if when > deadline {
                break;
            }
            self.timers.remove(&(when, index, id));
            self.now_ms = when;
            self.nodes[index].on_timer(id);
            self.pump(index);
            self.run_until_quiet();
        }
        self.now_ms = deadline;
    }

    /// Advances time to the earliest armed deadline and fires everything
    /// due at that instant. No-op if nothing is armed.
    pub fn fire_due_timers(&mut self) {
        let Some((&(when, _, _), ())) = self.timers.iter().next() else {
            return;
        };
        let delta = when.saturating_sub(self.now_ms);
        self.advance_time(delta);
    }
}
