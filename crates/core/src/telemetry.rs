//! The node-level [`Observer`]: maps the typed traffic at the
//! [`Driver`](zugchain_machine::Driver) seam — inputs, effects and the
//! timer lifecycle of a [`TrainMachine`] — into the structured
//! [`TraceEvent`] vocabulary of the flight recorder. Every runtime that
//! drives nodes through the shared driver (simulator, threaded, TCP,
//! chaos) gets identical traces by attaching this one observer.

use zugchain_machine::{Effect, MachineEffect, Observer};
use zugchain_telemetry::{Telemetry, TraceEvent};

use crate::messages::TimerId;
use crate::node::{NodeEvent, NodeInput, TrainMachine, TrainNode};

/// Renders a [`TimerId`] as the short label used in traces.
pub fn timer_label(id: &TimerId) -> String {
    match id {
        TimerId::Soft(digest) => format!("soft({})", digest.short()),
        TimerId::Hard(digest) => format!("hard({})", digest.short()),
        TimerId::ViewChange(view) => format!("view-change({view})"),
        TimerId::BatchFlush => "batch-flush".to_string(),
        TimerId::CollectorPrepare(sn) => format!("collector-prepare({sn})"),
        TimerId::CollectorCommit(sn) => format!("collector-commit({sn})"),
    }
}

/// Observer wiring one node's [`Telemetry`] handle into its driver.
///
/// Message deliveries, protocol milestones (decide, view change,
/// checkpoint, state transfer — read off the machine's
/// [`NodeEvent`] outputs), send/broadcast effects, and the timer
/// lifecycle (with generations) all land in the node's flight recorder,
/// timestamped from the telemetry clock.
#[derive(Debug, Clone)]
pub struct NodeObserver {
    telemetry: Telemetry,
}

impl NodeObserver {
    /// Wraps a telemetry handle. A disabled handle yields an observer
    /// whose every hook is a no-op branch.
    pub fn new(telemetry: Telemetry) -> Self {
        Self { telemetry }
    }

    /// The wrapped telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

impl<N: TrainNode> Observer<TrainMachine<N>> for NodeObserver {
    fn input(&mut self, input: &NodeInput) {
        if let NodeInput::Message(message) = input {
            self.telemetry.record_with(|| TraceEvent::MessageDelivered {
                kind: message.kind().to_string(),
            });
        }
    }

    fn effect(&mut self, effect: &MachineEffect<TrainMachine<N>>) {
        match effect {
            Effect::Output(event) => {
                self.telemetry.record_with(|| match event {
                    NodeEvent::Logged { sn, origin, .. } => TraceEvent::Decide {
                        sn: *sn,
                        origin: origin.0,
                    },
                    NodeEvent::NewPrimary { view, primary } => TraceEvent::ViewChange {
                        view: *view,
                        primary: primary.0,
                    },
                    NodeEvent::CheckpointStable { proof } => TraceEvent::Checkpoint {
                        sn: proof.checkpoint.sn,
                    },
                    NodeEvent::StateTransferNeeded { to_sn, .. } => {
                        TraceEvent::StateTransfer { target_sn: *to_sn }
                    }
                    NodeEvent::BlockCreated { .. } => TraceEvent::EffectEmitted {
                        kind: "block-created",
                    },
                });
            }
            Effect::Send { .. } | Effect::Broadcast { .. } => {
                let kind = effect.kind().as_str();
                self.telemetry
                    .record_with(|| TraceEvent::EffectEmitted { kind });
            }
            // Timer effects are traced via the dedicated hooks below,
            // which carry the assigned generation.
            Effect::SetTimer { .. } | Effect::CancelTimer { .. } => {}
        }
    }

    fn timer_set(&mut self, id: &TimerId, gen: u64, duration_ms: u64) {
        self.telemetry.record_with(|| TraceEvent::TimerSet {
            timer: timer_label(id),
            generation: gen,
            duration_ms,
        });
    }

    fn timer_cancelled(&mut self, id: &TimerId) {
        self.telemetry.record_with(|| TraceEvent::TimerCancelled {
            timer: timer_label(id),
        });
    }

    fn timer_fired(&mut self, id: &TimerId, gen: u64, stale: bool) {
        self.telemetry.record_with(|| TraceEvent::TimerFired {
            timer: timer_label(id),
            generation: gen,
            stale,
        });
    }
}
