use std::collections::BTreeMap;

use zugchain_blockchain::{BlockBuilder, ChainStore, LoggedRequest};
use zugchain_crypto::{Digest, KeyPair, Keystore};
use zugchain_machine::Effect;
use zugchain_mvb::{Nsdb, Telegram};
use zugchain_pbft::{
    CheckpointProof, NodeId, ProposedRequest, Replica, ReplicaEvent, ReplicaTimer,
};
use zugchain_signals::CycleConsolidator;
use zugchain_wire::{Encode, Writer};

use crate::node::{NodeEffect, NodeEvent, NodeMetrics, NodeStats, TrainNode};
use crate::{LayerMessage, NodeConfig, NodeMessage, SignedRequest, TimerId};

/// The evaluation baseline: PBFT with traditional client handling
/// (paper §V-A).
///
/// Every node runs a client and a replica process. The client reads bus
/// data and forwards each consolidated request to the primary as an
/// ordinary BFT client request — framed with the client id and a client
/// sequence number, so requests from different clients are distinct even
/// when their payloads are identical. Identical bus data is therefore
/// ordered up to n times, and every copy is logged; this is exactly the
/// duplication ZugChain's communication layer eliminates.
///
/// The client suspects the primary when a request is not ordered within
/// the view-change timeout (500 ms in the paper's Fig. 8) and resends its
/// open requests to the new primary after a view change.
#[derive(Debug)]
pub struct BaselineNode {
    id: NodeId,
    config: NodeConfig,
    key: KeyPair,
    replica: Replica,
    sources: Vec<CycleConsolidator>,
    nsdb: Nsdb,
    /// Client state: open requests by framed-payload digest (ordered so
    /// resends after a view change are deterministic).
    open: BTreeMap<Digest, ProposedRequest>,
    client_seq: u64,
    builder: BlockBuilder,
    store: ChainStore,
    stable_proofs: Vec<CheckpointProof>,
    last_time_ms: u64,
    effects: Vec<NodeEffect>,
    stats: NodeStats,
    /// Registry handles shared with the ZugChain flavour so evaluation
    /// runs report both modes from the same metric names; inert until
    /// [`TrainNode::set_telemetry`].
    metrics: NodeMetrics,
}

impl BaselineNode {
    /// Creates a baseline node with a single bus input source.
    pub fn new(id: u64, config: NodeConfig, nsdb: Nsdb, key: KeyPair, keystore: Keystore) -> Self {
        let pbft_config = config
            .pbft
            .clone()
            .with_view_change_timeout(config.view_change_timeout_ms);
        let replica = Replica::new(NodeId(id), pbft_config, key.clone(), keystore);
        Self {
            id: NodeId(id),
            sources: vec![CycleConsolidator::new(nsdb.clone())],
            nsdb,
            open: BTreeMap::new(),
            client_seq: 0,
            builder: BlockBuilder::new(config.block_size),
            store: ChainStore::new(),
            stable_proofs: Vec::new(),
            last_time_ms: 0,
            effects: Vec::new(),
            stats: NodeStats::default(),
            metrics: NodeMetrics::default(),
            config,
            key,
            replica,
        }
    }

    /// Returns `true` if this node hosts the current primary replica.
    pub fn is_primary(&self) -> bool {
        self.replica.is_primary()
    }

    /// The current view number.
    pub fn view(&self) -> u64 {
        self.replica.view()
    }

    /// Number of client requests awaiting a decide.
    pub fn open_requests(&self) -> usize {
        self.open.len()
    }

    /// Attaches an additional bus input source, returning its index.
    pub fn add_input_source(&mut self) -> usize {
        self.sources.push(CycleConsolidator::new(self.nsdb.clone()));
        self.sources.len() - 1
    }

    /// Frames and submits one bus payload as a traditional client request.
    fn submit_client_request(&mut self, payload: Vec<u8>) {
        // Traditional client framing: (client id, client sequence,
        // payload). Identical payloads from different clients differ.
        let mut framed = Writer::with_capacity(payload.len() + 16);
        self.id.encode(&mut framed);
        framed.write_u64(self.client_seq);
        framed.write_bytes(&payload);
        self.client_seq += 1;

        let request =
            ProposedRequest::application(framed.into_bytes(), self.id).with_time(self.last_time_ms);
        let digest = request.payload_digest();
        self.open.insert(digest, request.clone());

        // Client-side view-change timer: suspect if not ordered in time.
        self.effects.push(Effect::SetTimer {
            id: TimerId::Hard(digest),
            duration_ms: self.config.view_change_timeout_ms,
        });

        if self.is_primary() {
            self.stats.proposed += 1;
            self.replica.propose(request);
            self.pump_replica();
        } else {
            let signed = SignedRequest::sign(request, &self.key);
            let primary = self.replica.primary();
            self.effects.push(Effect::Send {
                to: primary,
                message: NodeMessage::Layer(LayerMessage::ClientRequest(signed)),
            });
        }
    }

    fn on_decide(&mut self, sn: u64, request: ProposedRequest) {
        if request.is_noop() {
            return;
        }
        let digest = request.payload_digest();
        if self.open.remove(&digest).is_some() {
            self.effects.push(Effect::CancelTimer {
                id: TimerId::Hard(digest),
            });
        }
        // No duplicate filtering: the baseline logs every ordered copy.
        self.stats.logged += 1;
        self.metrics.logged.inc();
        self.effects.push(Effect::Output(NodeEvent::Logged {
            sn,
            origin: request.origin,
            payload: request.payload.clone(),
        }));
        let logged = LoggedRequest {
            sn,
            origin: request.origin.0,
            payload: request.payload,
        };
        if let Some(block) = self.builder.push(logged, request.time_ms) {
            let block_hash = block.hash();
            let last_sn = block.header.last_sn;
            self.store
                .append(block.clone())
                .expect("builder output always extends the local chain");
            self.stats.blocks_created += 1;
            self.metrics.blocks.inc();
            self.effects
                .push(Effect::Output(NodeEvent::BlockCreated { block }));
            self.replica.record_checkpoint(last_sn, block_hash);
            self.pump_replica();
        }
    }

    fn on_new_primary(&mut self, view: u64, primary: NodeId) {
        self.effects
            .push(Effect::Output(NodeEvent::NewPrimary { view, primary }));
        // The client resends its open requests to the new primary.
        let open: Vec<ProposedRequest> = self.open.values().cloned().collect();
        for request in open {
            let digest = request.payload_digest();
            self.effects.push(Effect::SetTimer {
                id: TimerId::Hard(digest),
                duration_ms: self.config.view_change_timeout_ms,
            });
            if primary == self.id {
                self.stats.proposed += 1;
                self.replica.propose(request);
            } else {
                let signed = SignedRequest::sign(request, &self.key);
                self.effects.push(Effect::Send {
                    to: primary,
                    message: NodeMessage::Layer(LayerMessage::ClientRequest(signed)),
                });
            }
        }
        if primary == self.id {
            self.pump_replica();
        }
    }

    fn pump_replica(&mut self) {
        let effects = self.replica.drain_effects();
        for effect in effects {
            match effect {
                Effect::Broadcast { message } => self.effects.push(Effect::Broadcast {
                    message: NodeMessage::Consensus(message),
                }),
                Effect::Send { to, message } => self.effects.push(Effect::Send {
                    to,
                    message: NodeMessage::Consensus(message),
                }),
                Effect::SetTimer {
                    id: ReplicaTimer::ViewChange(view),
                    duration_ms,
                } => {
                    self.effects.push(Effect::SetTimer {
                        id: TimerId::ViewChange(view),
                        duration_ms,
                    });
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::ViewChange(view),
                } => {
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::ViewChange(view),
                    });
                }
                Effect::SetTimer {
                    id: ReplicaTimer::BatchFlush,
                    duration_ms,
                } => {
                    self.effects.push(Effect::SetTimer {
                        id: TimerId::BatchFlush,
                        duration_ms,
                    });
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::BatchFlush,
                } => {
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::BatchFlush,
                    });
                }
                Effect::SetTimer {
                    id: ReplicaTimer::CollectorPrepare(sn),
                    duration_ms,
                } => {
                    self.effects.push(Effect::SetTimer {
                        id: TimerId::CollectorPrepare(sn),
                        duration_ms,
                    });
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::CollectorPrepare(sn),
                } => {
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::CollectorPrepare(sn),
                    });
                }
                Effect::SetTimer {
                    id: ReplicaTimer::CollectorCommit(sn),
                    duration_ms,
                } => {
                    self.effects.push(Effect::SetTimer {
                        id: TimerId::CollectorCommit(sn),
                        duration_ms,
                    });
                }
                Effect::CancelTimer {
                    id: ReplicaTimer::CollectorCommit(sn),
                } => {
                    self.effects.push(Effect::CancelTimer {
                        id: TimerId::CollectorCommit(sn),
                    });
                }
                Effect::Output(ReplicaEvent::Decide { sn, request }) => {
                    self.on_decide(sn, request);
                }
                Effect::Output(ReplicaEvent::NewPrimary { view, primary }) => {
                    self.on_new_primary(view, primary);
                }
                Effect::Output(ReplicaEvent::PrePrepareSeen { .. }) => {}
                Effect::Output(ReplicaEvent::StableCheckpoint { proof }) => {
                    self.stable_proofs.push(proof.clone());
                    self.effects
                        .push(Effect::Output(NodeEvent::CheckpointStable { proof }));
                }
                Effect::Output(ReplicaEvent::NeedStateTransfer { from_sn, to_sn }) => {
                    self.metrics.state_transfers.inc();
                    self.effects
                        .push(Effect::Output(NodeEvent::StateTransferNeeded {
                            from_sn,
                            to_sn,
                        }));
                }
            }
        }
    }
}

impl TrainNode for BaselineNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn view(&self) -> u64 {
        BaselineNode::view(self)
    }

    fn is_primary(&self) -> bool {
        BaselineNode::is_primary(self)
    }

    fn on_raw_bus_payload(&mut self, payload: Vec<u8>, time_ms: u64) {
        self.last_time_ms = self.last_time_ms.max(time_ms);
        self.stats.bus_requests += 1;
        self.submit_client_request(payload);
    }

    fn on_bus_cycle(&mut self, source: usize, cycle: u64, time_ms: u64, telegrams: &[Telegram]) {
        self.last_time_ms = self.last_time_ms.max(time_ms);
        assert!(source < self.sources.len(), "unknown input source {source}");
        if let Some(request) = self.sources[source].consolidate(cycle, time_ms, telegrams) {
            self.stats.bus_requests += 1;
            let payload = zugchain_wire::to_bytes(&request);
            self.submit_client_request(payload);
        }
    }

    fn on_message(&mut self, message: NodeMessage) {
        match message {
            NodeMessage::Consensus(signed) => {
                self.replica.on_message(signed);
                self.pump_replica();
            }
            NodeMessage::Layer(LayerMessage::ClientRequest(signed)) => {
                if !signed.verify(self.replica.keystore()) {
                    self.stats.invalid_signatures += 1;
                    return;
                }
                if self.is_primary() {
                    // Traditional PBFT: the primary orders every client
                    // request; duplication is only avoided on identical
                    // (client, sequence) pairs, which the framing makes
                    // unique per client.
                    self.stats.proposed += 1;
                    self.replica.propose(signed.request);
                    self.pump_replica();
                }
            }
            NodeMessage::Layer(_) => {
                // ZugChain-layer traffic is not part of the baseline.
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId) {
        match timer {
            TimerId::Hard(digest) => {
                if self.open.contains_key(&digest) {
                    self.stats.hard_timeouts += 1;
                    let primary = self.replica.primary();
                    self.replica.suspect(primary);
                    self.pump_replica();
                }
            }
            TimerId::Soft(_) => {
                // The baseline has no soft timers.
            }
            TimerId::ViewChange(view) => {
                self.replica.on_timer(ReplicaTimer::ViewChange(view));
                self.pump_replica();
            }
            TimerId::BatchFlush => {
                self.replica.on_timer(ReplicaTimer::BatchFlush);
                self.pump_replica();
            }
            TimerId::CollectorPrepare(sn) => {
                self.replica.on_timer(ReplicaTimer::CollectorPrepare(sn));
                self.pump_replica();
            }
            TimerId::CollectorCommit(sn) => {
                self.replica.on_timer(ReplicaTimer::CollectorCommit(sn));
                self.pump_replica();
            }
        }
    }

    fn drain_effects(&mut self) -> Vec<NodeEffect> {
        std::mem::take(&mut self.effects)
    }

    fn chain(&self) -> &ChainStore {
        &self.store
    }

    fn chain_mut(&mut self) -> &mut ChainStore {
        &mut self.store
    }

    fn stable_proofs(&self) -> &[CheckpointProof] {
        &self.stable_proofs
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn open_requests(&self) -> usize {
        self.open.len()
    }

    fn consensus_stats(&self) -> zugchain_pbft::ReplicaStats {
        self.replica.stats()
    }

    fn set_telemetry(&mut self, telemetry: &zugchain_telemetry::Telemetry) {
        self.metrics = NodeMetrics::resolve(telemetry);
        self.replica.set_telemetry(telemetry);
    }

    fn slot_snapshot(&self) -> Vec<(u64, bool, usize, usize, bool, bool)> {
        self.replica.slot_snapshot()
    }

    fn progress_snapshot(&self) -> (u64, u64, u64, u64, usize) {
        self.replica.progress_snapshot()
    }

    fn approx_memory_bytes(&self) -> usize {
        let open_bytes: usize = self.open.values().map(|r| r.payload.len() + 96).sum();
        self.replica.approx_memory_bytes()
            + self.store.resident_bytes()
            + open_bytes
            + self.stable_proofs.len() * 512
    }
}

#[cfg(test)]
mod tests {
    use crate::node::testutil::Cluster;

    #[test]
    fn baseline_orders_every_copy() {
        let mut cluster = Cluster::baseline(4);
        cluster.bus_payload_everywhere(b"cycle-1".to_vec());
        cluster.run_until_quiet();
        // All four clients' copies are ordered and logged on every node.
        for id in 0..4 {
            assert_eq!(cluster.logged_payload_count(id), 4, "node {id}");
        }
    }

    #[test]
    fn baseline_client_framing_makes_copies_distinct() {
        let mut cluster = Cluster::baseline(4);
        cluster.bus_payload_everywhere(b"same".to_vec());
        cluster.bus_payload_everywhere(b"same".to_vec());
        cluster.run_until_quiet();
        // 4 nodes × 2 cycles = 8 ordered requests (client seq makes the
        // second cycle distinct even with identical bus bytes).
        assert_eq!(cluster.logged_payload_count(0), 8);
    }

    #[test]
    fn baseline_blocks_grow_n_times_faster() {
        let zc = {
            let mut cluster = Cluster::zugchain(4);
            for tag in 0..12u8 {
                cluster.bus_payload_everywhere(vec![tag]);
            }
            cluster.run_until_quiet();
            cluster.node(0).chain().height()
        };
        let baseline = {
            let mut cluster = Cluster::baseline(4);
            for tag in 0..12u8 {
                cluster.bus_payload_everywhere(vec![tag]);
            }
            cluster.run_until_quiet();
            cluster.node(0).chain().height()
        };
        assert!(
            baseline >= zc * 3,
            "baseline ({baseline}) must order ~4x the blocks of zugchain ({zc})"
        );
    }

    #[test]
    fn baseline_client_timeout_triggers_view_change() {
        let mut cluster = Cluster::baseline(4);
        // Primary (node 0) drops everything: client requests go nowhere.
        cluster.silence_node(0);
        cluster.bus_payload_everywhere(b"lost".to_vec());
        cluster.run_until_quiet();
        assert_eq!(cluster.logged_payload_count(1), 0);

        // Client timers fire on the backups; they suspect and rotate the
        // primary, then resend, and the request is finally ordered.
        cluster.fire_due_timers();
        cluster.run_until_quiet();
        cluster.fire_due_timers();
        cluster.run_until_quiet();
        assert!(cluster.node(1).view() >= 1, "view change happened");
        assert!(
            cluster.logged_payload_count(1) >= 3,
            "surviving clients' copies are ordered in the new view"
        );
    }
}
