use zugchain_pbft::Config as PbftConfig;
use zugchain_wire::TrainId;

/// Configuration of a ZugChain node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The train this node's consensus group belongs to. Every train in
    /// a fleet runs its own independent chain and PBFT group; the id
    /// flows into export segments, archive shards, and the `train`
    /// telemetry label. Single-train deployments keep the default.
    pub train: TrainId,
    /// The PBFT group configuration (n, f, watermarks).
    pub pbft: PbftConfig,
    /// Ordered requests bundled per block (the paper evaluates 10).
    pub block_size: usize,
    /// Soft timeout in milliseconds: how long a backup waits for the
    /// primary to order a request it received from the bus before
    /// broadcasting it itself (paper Fig. 8 uses 250 ms).
    pub soft_timeout_ms: u64,
    /// Hard timeout in milliseconds: how long after broadcasting a node
    /// waits for the decide before suspecting the primary (250 ms in the
    /// paper, for a combined 500 ms view-change trigger).
    pub hard_timeout_ms: u64,
    /// View-change timeout: how long to wait for a `NewView` before
    /// escalating to the next view.
    pub view_change_timeout_ms: u64,
    /// Maximum open (broadcast but undecided) requests accepted per node —
    /// the DoS rate limit of §III-C, "calculated based on the bus
    /// frequency".
    pub open_request_limit: usize,
    /// Number of recent checkpoints whose requests stay in the duplicate
    /// filter's sliding window (§III-C: "a hashmap over the requests of a
    /// sliding window of past checkpoints").
    pub dedup_window_checkpoints: usize,
    /// Capacity of the per-node flight-recorder ring and causal-span ring
    /// (events retained per node). Overflow keeps the newest events.
    pub trace_capacity: usize,
}

impl NodeConfig {
    /// The paper's evaluation configuration: n=4, block size 10, soft and
    /// hard timeouts of 250 ms each.
    pub fn evaluation_default() -> Self {
        Self {
            train: TrainId::DEFAULT,
            pbft: PbftConfig::new(4).expect("4 >= 4"),
            block_size: 10,
            soft_timeout_ms: 250,
            hard_timeout_ms: 250,
            view_change_timeout_ms: 500,
            open_request_limit: 16,
            dedup_window_checkpoints: 8,
            trace_capacity: zugchain_telemetry::DEFAULT_TRACE_CAPACITY,
        }
    }

    /// A small configuration convenient for unit tests: block size 3 and
    /// short timeouts.
    pub fn default_for_testing() -> Self {
        Self {
            train: TrainId::DEFAULT,
            pbft: PbftConfig::new(4).expect("4 >= 4"),
            block_size: 3,
            soft_timeout_ms: 50,
            hard_timeout_ms: 50,
            view_change_timeout_ms: 100,
            open_request_limit: 8,
            dedup_window_checkpoints: 4,
            trace_capacity: zugchain_telemetry::DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Computes the open-request limit from the bus frequency: a node can
    /// legitimately have at most a few cycles' worth of requests in
    /// flight, so the limit is the number of bus cycles covered by the
    /// combined timeouts, plus slack.
    #[must_use]
    pub fn with_limit_from_bus_cycle(mut self, bus_cycle_ms: u64) -> Self {
        let window = self.soft_timeout_ms + self.hard_timeout_ms;
        let cycles = window.div_ceil(bus_cycle_ms.max(1)) as usize;
        self.open_request_limit = (cycles + 2).max(4);
        self
    }

    /// Assigns the node's consensus group to a train of the fleet.
    #[must_use]
    pub fn with_train(mut self, train: TrainId) -> Self {
        self.train = train;
        self
    }

    /// Overrides the block size.
    #[must_use]
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Overrides both timeouts.
    #[must_use]
    pub fn with_timeouts(mut self, soft_ms: u64, hard_ms: u64) -> Self {
        self.soft_timeout_ms = soft_ms;
        self.hard_timeout_ms = hard_ms;
        self
    }

    /// Overrides the flight-recorder / span-ring capacity (a floor of 1
    /// is applied by the ring itself).
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_default_matches_paper() {
        let config = NodeConfig::evaluation_default();
        assert_eq!(config.pbft.n, 4);
        assert_eq!(config.block_size, 10);
        assert_eq!(config.soft_timeout_ms + config.hard_timeout_ms, 500);
    }

    #[test]
    fn limit_follows_bus_frequency() {
        let fast = NodeConfig::evaluation_default().with_limit_from_bus_cycle(32);
        let slow = NodeConfig::evaluation_default().with_limit_from_bus_cycle(256);
        assert!(fast.open_request_limit > slow.open_request_limit);
        assert!(slow.open_request_limit >= 4);
    }
}
