//! Property tests for the wire codec over every message the node layer
//! exchanges: each [`NodeMessage`] variant (covering all six PBFT
//! [`Message`] kinds and all three [`LayerMessage`] kinds) must survive
//! an encode/decode roundtrip unchanged, every strict prefix of an
//! encoding must be rejected (a torn read never yields a phantom
//! message), and trailing garbage after a valid encoding must be
//! rejected (framing bugs cannot smuggle extra bytes past the decoder).

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use zugchain::{LayerMessage, NodeMessage, SignedRequest};
use zugchain_crypto::{Digest, KeyPair, Keystore};
use zugchain_pbft::{
    Checkpoint, CheckpointProof, Message, NewView, NodeId, PrePrepare, Prepare, PreparedCert,
    ProposedBatch, ProposedRequest, SignedMessage, ViewChange,
};
use zugchain_wire::{from_bytes, to_bytes, Decode, Encode};

/// Roundtrip + truncation + trailing-garbage checks for one value.
fn check_codec<T>(value: &T, garbage: &[u8]) -> Result<(), TestCaseError>
where
    T: Encode + Decode + PartialEq + std::fmt::Debug,
{
    let bytes = to_bytes(value);

    let decoded: T = match from_bytes(&bytes) {
        Ok(decoded) => decoded,
        Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e:?}"))),
    };
    prop_assert_eq!(&decoded, value);

    // Every field is consumed in order and the reader demands full
    // consumption, so no strict prefix may parse as a message.
    for cut in 0..bytes.len() {
        prop_assert!(
            from_bytes::<T>(&bytes[..cut]).is_err(),
            "prefix of length {} of a {}-byte encoding decoded",
            cut,
            bytes.len(),
        );
    }

    let mut extended = bytes;
    extended.extend_from_slice(garbage);
    prop_assert!(
        from_bytes::<T>(&extended).is_err(),
        "encoding with {} trailing garbage bytes decoded",
        garbage.len(),
    );
    Ok(())
}

/// One exemplar of every PBFT [`Message`] variant, driven by the
/// property inputs. The certificate-bearing variants get both populated
/// and empty option/list fields.
fn pbft_messages(
    view: u64,
    sn: u64,
    payload: &[u8],
    time_ms: u64,
    keys: &[KeyPair],
) -> Vec<Message> {
    let origin = NodeId(payload.len() as u64 % keys.len() as u64);
    let request = ProposedRequest::application(payload.to_vec(), origin).with_time(time_ms);
    let digest = Digest::of(payload);
    // A multi-request batch, so the length-prefixed batch codec is part
    // of the property.
    let batch = ProposedBatch::new(vec![
        request.clone(),
        ProposedRequest::noop(origin),
        ProposedRequest::application(payload.to_vec(), NodeId(0)),
    ]);
    let preprepare = PrePrepare {
        view,
        sn,
        batch: batch.clone(),
    };
    let checkpoint = Checkpoint {
        sn,
        state_digest: digest,
    };
    let proof = CheckpointProof {
        checkpoint,
        signatures: keys
            .iter()
            .enumerate()
            .map(|(id, key)| (NodeId(id as u64), key.sign(&to_bytes(&checkpoint))))
            .collect(),
    };
    let prepared = PreparedCert {
        view,
        sn,
        batch,
        prepare_signatures: vec![(NodeId(1), keys[1].sign(payload))],
    };
    let full_vc = ViewChange {
        new_view: view + 1,
        last_stable_sn: sn,
        checkpoint_proof: Some(proof),
        prepared: vec![prepared],
    };
    let empty_vc = ViewChange {
        new_view: view + 1,
        last_stable_sn: 0,
        checkpoint_proof: None,
        prepared: Vec::new(),
    };
    let new_view = NewView {
        view: view + 1,
        view_changes: vec![
            SignedMessage::sign(NodeId(2), Message::ViewChange(full_vc.clone()), &keys[2]),
            SignedMessage::sign(NodeId(3), Message::ViewChange(empty_vc.clone()), &keys[3]),
        ],
        preprepares: vec![preprepare.clone()],
    };
    vec![
        Message::PrePrepare(preprepare),
        Message::Prepare(Prepare { view, sn, digest }),
        Message::Commit(zugchain_pbft::Commit { view, sn, digest }),
        Message::Checkpoint(checkpoint),
        Message::ViewChange(full_vc),
        Message::ViewChange(empty_vc),
        Message::NewView(new_view),
    ]
}

/// Every [`NodeMessage`] variant: each PBFT message wrapped as
/// consensus traffic, plus all three layer-message kinds.
fn node_messages(
    view: u64,
    sn: u64,
    payload: &[u8],
    time_ms: u64,
    keys: &[KeyPair],
) -> Vec<NodeMessage> {
    let mut messages: Vec<NodeMessage> = pbft_messages(view, sn, payload, time_ms, keys)
        .into_iter()
        .map(|m| NodeMessage::Consensus(SignedMessage::sign(NodeId(0), m, &keys[0])))
        .collect();
    let origin = NodeId(payload.len() as u64 % keys.len() as u64);
    let request = ProposedRequest::application(payload.to_vec(), origin).with_time(time_ms);
    let signed = SignedRequest::sign(request, &keys[origin.0 as usize]);
    messages.push(NodeMessage::Layer(LayerMessage::BroadcastRequest(
        signed.clone(),
    )));
    messages.push(NodeMessage::Layer(LayerMessage::ForwardRequest(
        signed.clone(),
    )));
    messages.push(NodeMessage::Layer(LayerMessage::ClientRequest(signed)));
    messages
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    /// All PBFT consensus message kinds roundtrip and reject torn or
    /// padded encodings, both bare and wrapped in a signed envelope.
    fn pbft_message_codec_is_exact(
        view in 0u64..1000,
        sn in 0u64..100_000,
        payload in proptest::collection::vec(any::<u8>(), 0..48),
        time_ms in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let (keys, _) = Keystore::generate(4, 0xC0DEC);
        for message in pbft_messages(view, sn, &payload, time_ms, &keys) {
            check_codec(&message, &garbage)?;
        }
    }

    #[test]
    /// All node-layer message kinds (consensus envelope and the three
    /// layer requests) roundtrip and reject torn or padded encodings.
    fn node_message_codec_is_exact(
        view in 0u64..1000,
        sn in 0u64..100_000,
        payload in proptest::collection::vec(any::<u8>(), 0..48),
        time_ms in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let (keys, _) = Keystore::generate(4, 0xC0DEC);
        for message in node_messages(view, sn, &payload, time_ms, &keys) {
            check_codec(&message, &garbage)?;
        }
    }
}
