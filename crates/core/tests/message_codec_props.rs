//! Property tests for the wire codec over every message the node layer
//! exchanges: each [`NodeMessage`] variant (covering all eight PBFT
//! [`Message`] kinds — including the collector-mode certificate
//! variants — and all three [`LayerMessage`] kinds) must survive
//! an encode/decode roundtrip unchanged, every strict prefix of an
//! encoding must be rejected (a torn read never yields a phantom
//! message), and trailing garbage after a valid encoding must be
//! rejected (framing bugs cannot smuggle extra bytes past the decoder).
//!
//! The MAC-authenticated envelope ([`Auth::Mac`]) gets the same codec
//! treatment plus its authentication properties: at arbitrary key
//! pairs, a forged tag (computed under a different master secret) and a
//! tampered tag byte must both fail verification.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use zugchain::{LayerMessage, NodeMessage, SignedRequest};
use zugchain_crypto::{Digest, KeyPair, Keystore, SessionKeys};
use zugchain_pbft::{
    Auth, AuthVerdict, Checkpoint, CheckpointProof, Message, NewView, NodeId, PrePrepare, Prepare,
    PreparedCert, ProposedBatch, ProposedRequest, SignedMessage, ViewChange, VoteCert,
};
use zugchain_wire::{from_bytes, to_bytes, Decode, Encode};

/// Roundtrip + truncation + trailing-garbage checks for one value.
fn check_codec<T>(value: &T, garbage: &[u8]) -> Result<(), TestCaseError>
where
    T: Encode + Decode + PartialEq + std::fmt::Debug,
{
    let bytes = to_bytes(value);

    let decoded: T = match from_bytes(&bytes) {
        Ok(decoded) => decoded,
        Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e:?}"))),
    };
    prop_assert_eq!(&decoded, value);

    // Every field is consumed in order and the reader demands full
    // consumption, so no strict prefix may parse as a message.
    for cut in 0..bytes.len() {
        prop_assert!(
            from_bytes::<T>(&bytes[..cut]).is_err(),
            "prefix of length {} of a {}-byte encoding decoded",
            cut,
            bytes.len(),
        );
    }

    let mut extended = bytes;
    extended.extend_from_slice(garbage);
    prop_assert!(
        from_bytes::<T>(&extended).is_err(),
        "encoding with {} trailing garbage bytes decoded",
        garbage.len(),
    );
    Ok(())
}

/// One exemplar of every PBFT [`Message`] variant, driven by the
/// property inputs. The certificate-bearing variants get both populated
/// and empty option/list fields.
fn pbft_messages(
    view: u64,
    sn: u64,
    payload: &[u8],
    time_ms: u64,
    keys: &[KeyPair],
) -> Vec<Message> {
    let origin = NodeId(payload.len() as u64 % keys.len() as u64);
    let request = ProposedRequest::application(payload.to_vec(), origin).with_time(time_ms);
    let digest = Digest::of(payload);
    // A multi-request batch, so the length-prefixed batch codec is part
    // of the property.
    let batch = ProposedBatch::new(vec![
        request.clone(),
        ProposedRequest::noop(origin),
        ProposedRequest::application(payload.to_vec(), NodeId(0)),
    ]);
    let preprepare = PrePrepare {
        view,
        sn,
        batch: batch.clone(),
    };
    let checkpoint = Checkpoint {
        sn,
        state_digest: digest,
    };
    let proof = CheckpointProof {
        checkpoint,
        signatures: keys
            .iter()
            .enumerate()
            .map(|(id, key)| (NodeId(id as u64), key.sign(&to_bytes(&checkpoint))))
            .collect(),
    };
    let prepared = PreparedCert {
        view,
        sn,
        batch,
        prepare_signatures: vec![(NodeId(1), keys[1].sign(payload))],
    };
    let full_vc = ViewChange {
        new_view: view + 1,
        last_stable_sn: sn,
        checkpoint_proof: Some(proof),
        prepared: vec![prepared],
    };
    let empty_vc = ViewChange {
        new_view: view + 1,
        last_stable_sn: 0,
        checkpoint_proof: None,
        prepared: Vec::new(),
    };
    let new_view = NewView {
        view: view + 1,
        view_changes: vec![
            SignedMessage::sign(NodeId(2), Message::ViewChange(full_vc.clone()), &keys[2]),
            SignedMessage::sign(NodeId(3), Message::ViewChange(empty_vc.clone()), &keys[3]),
        ],
        preprepares: vec![preprepare.clone()],
    };
    // Collector-mode certificates: a populated signature list (one
    // entry per replica, so the varint list codec is exercised) and the
    // degenerate empty list.
    let full_cert = VoteCert {
        view,
        sn,
        digest,
        signatures: keys
            .iter()
            .enumerate()
            .map(|(id, key)| (NodeId(id as u64), key.sign(payload)))
            .collect(),
    };
    let empty_cert = VoteCert {
        view,
        sn,
        digest,
        signatures: Vec::new(),
    };
    vec![
        Message::PrePrepare(preprepare),
        Message::Prepare(Prepare { view, sn, digest }),
        Message::Commit(zugchain_pbft::Commit { view, sn, digest }),
        Message::Checkpoint(checkpoint),
        Message::ViewChange(full_vc),
        Message::ViewChange(empty_vc),
        Message::NewView(new_view),
        Message::PrepareCert(full_cert.clone()),
        Message::PrepareCert(empty_cert.clone()),
        Message::CommitCert(full_cert),
        Message::CommitCert(empty_cert),
    ]
}

/// Every [`NodeMessage`] variant: each PBFT message wrapped as
/// consensus traffic, plus all three layer-message kinds.
fn node_messages(
    view: u64,
    sn: u64,
    payload: &[u8],
    time_ms: u64,
    keys: &[KeyPair],
) -> Vec<NodeMessage> {
    let mut messages: Vec<NodeMessage> = pbft_messages(view, sn, payload, time_ms, keys)
        .into_iter()
        .map(|m| NodeMessage::Consensus(SignedMessage::sign(NodeId(0), m, &keys[0])))
        .collect();
    let origin = NodeId(payload.len() as u64 % keys.len() as u64);
    let request = ProposedRequest::application(payload.to_vec(), origin).with_time(time_ms);
    let signed = SignedRequest::sign(request, &keys[origin.0 as usize]);
    messages.push(NodeMessage::Layer(LayerMessage::BroadcastRequest(
        signed.clone(),
    )));
    messages.push(NodeMessage::Layer(LayerMessage::ForwardRequest(
        signed.clone(),
    )));
    messages.push(NodeMessage::Layer(LayerMessage::ClientRequest(signed)));
    messages
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    /// All PBFT consensus message kinds roundtrip and reject torn or
    /// padded encodings, both bare and wrapped in a signed envelope.
    fn pbft_message_codec_is_exact(
        view in 0u64..1000,
        sn in 0u64..100_000,
        payload in proptest::collection::vec(any::<u8>(), 0..48),
        time_ms in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let (keys, _) = Keystore::generate(4, 0xC0DEC);
        for message in pbft_messages(view, sn, &payload, time_ms, &keys) {
            check_codec(&message, &garbage)?;
        }
    }

    #[test]
    /// All node-layer message kinds (consensus envelope and the three
    /// layer requests) roundtrip and reject torn or padded encodings.
    fn node_message_codec_is_exact(
        view in 0u64..1000,
        sn in 0u64..100_000,
        payload in proptest::collection::vec(any::<u8>(), 0..48),
        time_ms in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let (keys, _) = Keystore::generate(4, 0xC0DEC);
        for message in node_messages(view, sn, &payload, time_ms, &keys) {
            check_codec(&message, &garbage)?;
        }
    }

    #[test]
    /// MAC-tagged envelopes — with and without the embedded signature
    /// fallback — roundtrip exactly and reject every strict prefix and
    /// any trailing garbage, over every PBFT message kind.
    fn mac_envelope_codec_is_exact(
        view in 0u64..1000,
        sn in 0u64..100_000,
        payload in proptest::collection::vec(any::<u8>(), 0..48),
        time_ms in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let (keys, keystore) = Keystore::generate(4, 0xC0DEC);
        let session = SessionKeys::derive(&keystore, 0);
        for message in pbft_messages(view, sn, &payload, time_ms, &keys) {
            let tagged = SignedMessage::sign_mac(NodeId(0), message.clone(), &session, None);
            check_codec(&tagged, &garbage)?;
            let with_fallback =
                SignedMessage::sign_mac(NodeId(0), message, &session, Some(&keys[0]));
            check_codec(&with_fallback, &garbage)?;
        }
    }

    #[test]
    /// At arbitrary key pairs: a genuine MAC envelope verifies on the
    /// fast path; one forged under a different master secret is
    /// rejected outright (no fallback signature) or demoted to the
    /// signature fallback (valid embedded signature); and flipping any
    /// single byte of the receiver's tag kills the fast path.
    fn forged_and_tampered_macs_are_rejected(
        keyset_seed in any::<u64>(),
        forged_seed in any::<u64>(),
        sn in 0u64..100_000,
        payload in proptest::collection::vec(any::<u8>(), 1..48),
        flip_byte in 0usize..32,
    ) {
        prop_assume!(keyset_seed != forged_seed);
        let (keys, keystore) = Keystore::generate(4, keyset_seed);
        let sender = SessionKeys::derive(&keystore, 1);
        let receiver = SessionKeys::derive(&keystore, 2);
        let message = Message::Commit(zugchain_pbft::Commit {
            view: 0,
            sn,
            digest: Digest::of(&payload),
        });

        // Genuine envelope: fast path.
        let genuine = SignedMessage::sign_mac(NodeId(1), message.clone(), &sender, None);
        prop_assert_eq!(
            genuine.verify_auth(&keystore, &receiver),
            AuthVerdict::MacValid
        );

        // Forged under a different permissioned keyset: the pairwise
        // keys differ, so every tag fails. Without a fallback signature
        // the envelope is dead; with a *valid* embedded signature it
        // survives, but only via the (counted) signature fallback.
        let (_, forged_keystore) = Keystore::generate(4, forged_seed);
        let forger = SessionKeys::derive(&forged_keystore, 1);
        let forged = SignedMessage::sign_mac(NodeId(1), message.clone(), &forger, None);
        prop_assert_eq!(
            forged.verify_auth(&keystore, &receiver),
            AuthVerdict::Invalid
        );
        let forged_with_sig =
            SignedMessage::sign_mac(NodeId(1), message.clone(), &forger, Some(&keys[1]));
        prop_assert_eq!(
            forged_with_sig.verify_auth(&keystore, &receiver),
            AuthVerdict::SigFallback
        );

        // Tamper with the receiver's tag: any single flipped byte must
        // break it.
        let mut tampered = genuine;
        if let Auth::Mac { ref mut tags, .. } = tampered.auth {
            for (peer, tag) in tags.iter_mut() {
                if peer.0 == 2 {
                    let mut bytes = *tag.as_bytes();
                    bytes[flip_byte] ^= 0x01;
                    *tag = zugchain_crypto::MacTag::from_bytes(bytes);
                }
            }
        }
        prop_assert_eq!(
            tampered.verify_auth(&keystore, &receiver),
            AuthVerdict::Invalid
        );
    }
}
