//! Causal spans: the distributed-tracing half of the telemetry crate
//! (DESIGN.md §17).
//!
//! A [`Span`] is one pipeline stage of one request's lifecycle on one
//! node, timestamped from the same runtime-driven clock as the flight
//! recorder — virtual milliseconds under the simulator, so a seeded run
//! dumps byte-identical spans. Spans land in a per-node ring buffer
//! (like the flight recorder) *and*, when the runtime wires one up, in
//! a cluster-shared [`TraceStore`] that joins spans across nodes by
//! trace id so the serving layer can assemble a whole lifecycle.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;

use crate::json::{parse_flat_object, push_field, JsonValue};

/// The pipeline stages of a request's life, in causal order. The
/// vocabulary is closed: stage names appear in metric labels, JSONL
/// dumps, and the trace API, and the assembly order below is the
/// canonical chain order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// MVB bus read: the payload came into existence on the origin node.
    Record,
    /// The origin submitted the request into ordering (propose or
    /// broadcast/forward toward the primary).
    Submit,
    /// The primary flushed the batch containing the request into a
    /// preprepare.
    BatchFlush,
    /// A replica accepted the preprepare carrying the request.
    PrePrepare,
    /// A replica completed the prepare phase for the request's slot.
    Prepare,
    /// A replica completed the commit phase for the request's slot.
    Commit,
    /// The request entered the totally ordered log.
    Decide,
    /// An export round moved the request's block to a data center.
    Export,
    /// A juridical archive ingested the certified segment holding it.
    Ingest,
    /// The request became servable through the archive's query surface.
    Servable,
}

/// Every stage, in canonical chain order.
pub const STAGES: [Stage; 10] = [
    Stage::Record,
    Stage::Submit,
    Stage::BatchFlush,
    Stage::PrePrepare,
    Stage::Prepare,
    Stage::Commit,
    Stage::Decide,
    Stage::Export,
    Stage::Ingest,
    Stage::Servable,
];

impl Stage {
    /// The stable string form used in labels, dumps, and span-id
    /// derivation.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Record => "record",
            Stage::Submit => "submit",
            Stage::BatchFlush => "batch_flush",
            Stage::PrePrepare => "preprepare",
            Stage::Prepare => "prepare",
            Stage::Commit => "commit",
            Stage::Decide => "decide",
            Stage::Export => "export",
            Stage::Ingest => "ingest",
            Stage::Servable => "servable",
        }
    }

    /// Position in the canonical chain order.
    pub fn order(self) -> usize {
        STAGES.iter().position(|s| *s == self).expect("closed enum")
    }

    /// Parses the string form written by [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        STAGES.iter().copied().find(|stage| stage.as_str() == s)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One stage of one request's lifecycle on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to
    /// ([`zugchain_wire::derive_trace_id`]-compatible; never 0 for a
    /// real span).
    pub trace_id: u64,
    /// This span's id ([`zugchain_wire::derive_span_id`]-compatible).
    pub span_id: u64,
    /// The causal parent's span id (0 for the root `record` span).
    pub parent_span: u64,
    /// Pipeline stage.
    pub stage: Stage,
    /// Recording node.
    pub node: u64,
    /// Train the trace belongs to (0 for the default train).
    pub train: u64,
    /// Consensus sequence number, once assigned (0 before ordering).
    pub sn: u64,
    /// Stage start on the trace clock.
    pub start_ms: u64,
    /// Stage end on the trace clock (`>= start_ms`).
    pub end_ms: u64,
}

impl Span {
    /// Stage duration in milliseconds.
    pub fn latency_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }

    /// Renders this span as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        push_field(
            &mut out,
            &mut first,
            "trace_id",
            &JsonValue::U64(self.trace_id),
        );
        push_field(
            &mut out,
            &mut first,
            "span_id",
            &JsonValue::U64(self.span_id),
        );
        push_field(
            &mut out,
            &mut first,
            "parent_span",
            &JsonValue::U64(self.parent_span),
        );
        push_field(
            &mut out,
            &mut first,
            "stage",
            &JsonValue::Str(self.stage.as_str().to_string()),
        );
        push_field(&mut out, &mut first, "node", &JsonValue::U64(self.node));
        push_field(&mut out, &mut first, "train", &JsonValue::U64(self.train));
        push_field(&mut out, &mut first, "sn", &JsonValue::U64(self.sn));
        push_field(
            &mut out,
            &mut first,
            "start_ms",
            &JsonValue::U64(self.start_ms),
        );
        push_field(&mut out, &mut first, "end_ms", &JsonValue::U64(self.end_ms));
        out.push('}');
        out
    }
}

/// Parses a span JSONL dump back into [`Span`]s — the inverse of
/// concatenating [`Span::to_json`] lines.
///
/// # Errors
///
/// A message naming the first offending line.
pub fn parse_span_jsonl(text: &str) -> Result<Vec<Span>, String> {
    let mut spans = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_flat_object(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let get_u64 = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| v.as_u64())
                .ok_or_else(|| format!("line {}: missing {name}", idx + 1))
        };
        let stage_str = fields
            .iter()
            .find(|(k, _)| k == "stage")
            .and_then(|(_, v)| v.as_str())
            .ok_or_else(|| format!("line {}: missing stage", idx + 1))?;
        let stage = Stage::parse(stage_str)
            .ok_or_else(|| format!("line {}: unknown stage {stage_str:?}", idx + 1))?;
        spans.push(Span {
            trace_id: get_u64("trace_id")?,
            span_id: get_u64("span_id")?,
            parent_span: get_u64("parent_span")?,
            stage,
            node: get_u64("node")?,
            train: get_u64("train")?,
            sn: get_u64("sn")?,
            start_ms: get_u64("start_ms")?,
            end_ms: get_u64("end_ms")?,
        });
    }
    Ok(spans)
}

/// A fixed-capacity ring of spans: one per node, alongside the flight
/// recorder, so a post-mortem has the node's own span tail even when no
/// shared store was wired.
#[derive(Debug)]
pub struct SpanBuffer {
    capacity: usize,
    spans: VecDeque<Span>,
}

impl SpanBuffer {
    /// An empty buffer retaining at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            spans: VecDeque::new(),
        }
    }

    /// Appends a span, evicting the oldest when full.
    pub fn record(&mut self, span: Span) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
        }
        self.spans.push_back(span);
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Dumps the retained spans as JSONL, oldest first.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    by_trace: BTreeMap<u64, Vec<Span>>,
    /// Secondary index: consensus sn → trace ids whose spans carry it.
    /// Invariant-violation dumps look up by sn (that is what a decide
    /// conflict or equivocation names), not by trace id.
    by_sn: BTreeMap<u64, BTreeSet<u64>>,
}

/// The cluster-shared join point: every node's spans keyed by trace id.
/// One store per cluster/simulation; cloning the `Arc` it lives behind
/// is how runtimes hand it to each node's `Telemetry`.
#[derive(Debug, Default)]
pub struct TraceStore {
    inner: Mutex<StoreInner>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one span.
    pub fn record(&self, span: Span) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        if span.sn != 0 {
            inner
                .by_sn
                .entry(span.sn)
                .or_default()
                .insert(span.trace_id);
        }
        inner.by_trace.entry(span.trace_id).or_default().push(span);
    }

    /// Number of distinct traces recorded.
    pub fn trace_count(&self) -> usize {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .by_trace
            .len()
    }

    /// Every recorded trace id, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .by_trace
            .keys()
            .copied()
            .collect()
    }

    /// Trace ids that have a span carrying consensus sequence number
    /// `sn`, ascending. More than one id at one sn is itself evidence:
    /// honest replicas decide exactly one request per sn.
    pub fn traces_for_sn(&self, sn: u64) -> Vec<u64> {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .by_sn
            .get(&sn)
            .map(|ids| ids.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Assembles one trace: every node's spans for `trace_id`, sorted
    /// canonically (stage order, then node, then start time) so the
    /// result is deterministic regardless of arrival interleaving.
    pub fn assemble(&self, trace_id: u64) -> Vec<Span> {
        let mut spans = self
            .inner
            .lock()
            .expect("trace store poisoned")
            .by_trace
            .get(&trace_id)
            .cloned()
            .unwrap_or_default();
        spans.sort_by_key(|s| (s.stage.order(), s.node, s.start_ms, s.end_ms));
        spans.dedup();
        spans
    }

    /// Renders one trace as an indented span tree (one line per span,
    /// children under their parent), preceded by a header line. The
    /// chaos harness writes this next to the flight-recorder dump on an
    /// invariant violation.
    pub fn render_tree(&self, trace_id: u64) -> String {
        let spans = self.assemble(trace_id);
        let mut out = format!("trace {trace_id}: {} spans\n", spans.len());
        // Roots first (parent absent from the trace), then descendants
        // depth-first; an orphan subtree still prints under its missing
        // parent's id so nothing is silently dropped.
        let ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
        let mut roots: Vec<&Span> = Vec::new();
        for span in &spans {
            if span.parent_span != 0 && ids.contains(&span.parent_span) {
                children.entry(span.parent_span).or_default().push(span);
            } else {
                roots.push(span);
            }
        }
        fn walk(out: &mut String, span: &Span, depth: usize, children: &BTreeMap<u64, Vec<&Span>>) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} node={} sn={} [{}..{}ms] span={} parent={}\n",
                span.stage,
                span.node,
                span.sn,
                span.start_ms,
                span.end_ms,
                span.span_id,
                span.parent_span
            ));
            for child in children.get(&span.span_id).into_iter().flatten() {
                walk(out, child, depth + 1, children);
            }
        }
        for root in roots {
            walk(&mut out, root, 0, &children);
        }
        out
    }

    /// Dumps every trace's spans as JSONL, ordered by trace id then
    /// canonical span order.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for trace_id in self.trace_ids() {
            for span in self.assemble(trace_id) {
                out.push_str(&span.to_json());
                out.push('\n');
            }
        }
        out
    }
}

/// The result of validating one assembled trace as a lifecycle chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainCheck {
    /// The chain covers every required stage with monotone timestamps.
    Complete,
    /// A required stage is missing.
    MissingStage(Stage),
    /// Two consecutive spans (canonical order) go backwards in time.
    NonMonotone {
        /// The earlier stage (whose end is after the later start).
        from: Stage,
        /// The later stage.
        to: Stage,
    },
    /// A span names a parent that is neither 0 nor a span in the trace.
    OrphanSpan(Stage),
}

/// Validates an assembled span chain: every stage in `required` must be
/// present, timestamps must be monotone along the canonical stage
/// order, and no span may dangle off a parent outside the trace.
pub fn check_chain(spans: &[Span], required: &[Stage]) -> ChainCheck {
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    for span in spans {
        if span.parent_span != 0 && !ids.contains(&span.parent_span) {
            return ChainCheck::OrphanSpan(span.stage);
        }
    }
    for stage in required {
        if !spans.iter().any(|s| s.stage == *stage) {
            return ChainCheck::MissingStage(*stage);
        }
    }
    // Monotonicity across stages: the earliest start of each present
    // stage must not precede the earliest start of any earlier stage.
    let mut last: Option<(Stage, u64)> = None;
    for stage in STAGES {
        let Some(start) = spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.start_ms)
            .min()
        else {
            continue;
        };
        if let Some((prev, prev_start)) = last {
            if start < prev_start {
                return ChainCheck::NonMonotone {
                    from: prev,
                    to: stage,
                };
            }
        }
        last = Some((stage, start));
    }
    for span in spans {
        if span.end_ms < span.start_ms {
            return ChainCheck::NonMonotone {
                from: span.stage,
                to: span.stage,
            };
        }
    }
    ChainCheck::Complete
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: Stage, node: u64, start: u64, end: u64) -> Span {
        Span {
            trace_id: 7,
            span_id: zugchain_span_id(7, stage, node),
            parent_span: 0,
            stage,
            node,
            train: 1,
            sn: 4,
            start_ms: start,
            end_ms: end,
        }
    }

    // Local stand-in for the wire crate's derivation (telemetry must
    // not depend on wire); only uniqueness matters here.
    fn zugchain_span_id(trace: u64, stage: Stage, node: u64) -> u64 {
        trace
            .wrapping_mul(1000)
            .wrapping_add(stage.order() as u64 * 10)
            .wrapping_add(node)
    }

    #[test]
    fn stage_vocabulary_round_trips() {
        for stage in STAGES {
            assert_eq!(Stage::parse(stage.as_str()), Some(stage));
        }
        assert_eq!(Stage::parse("warp"), None);
        assert_eq!(Stage::Record.order(), 0);
        assert_eq!(Stage::Servable.order(), STAGES.len() - 1);
    }

    #[test]
    fn span_json_round_trips() {
        let s = span(Stage::Decide, 2, 10, 12);
        let parsed = parse_span_jsonl(&format!("{}\n", s.to_json())).unwrap();
        assert_eq!(parsed, vec![s]);
    }

    #[test]
    fn buffer_keeps_the_newest_spans() {
        let mut buffer = SpanBuffer::new(2);
        for i in 0..5u64 {
            buffer.record(span(Stage::Record, i, i, i));
        }
        let kept: Vec<u64> = buffer.spans().map(|s| s.node).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn store_joins_across_nodes_and_sorts_canonically() {
        let store = TraceStore::new();
        // Recorded out of order, across nodes.
        store.record(span(Stage::Commit, 1, 20, 21));
        store.record(span(Stage::Record, 0, 1, 2));
        store.record(span(Stage::Commit, 0, 19, 22));
        let spans = store.assemble(7);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].stage, Stage::Record);
        assert_eq!(spans[1].node, 0);
        assert_eq!(spans[2].node, 1);
        assert_eq!(store.traces_for_sn(4), vec![7]);
        assert!(store.traces_for_sn(5).is_empty());
    }

    #[test]
    fn chain_check_flags_gaps_and_time_travel() {
        let required = [Stage::Record, Stage::Decide];
        let mut spans = vec![span(Stage::Record, 0, 1, 2)];
        assert_eq!(
            check_chain(&spans, &required),
            ChainCheck::MissingStage(Stage::Decide)
        );
        spans.push(span(Stage::Decide, 0, 10, 11));
        assert_eq!(check_chain(&spans, &required), ChainCheck::Complete);
        // A decide that starts before the record is time travel.
        spans[1].start_ms = 0;
        assert!(matches!(
            check_chain(&spans, &required),
            ChainCheck::NonMonotone { .. }
        ));
        spans[1].start_ms = 10;
        spans[1].parent_span = 999;
        assert_eq!(
            check_chain(&spans, &required),
            ChainCheck::OrphanSpan(Stage::Decide)
        );
    }

    #[test]
    fn tree_renders_roots_and_children() {
        let store = TraceStore::new();
        let mut record = span(Stage::Record, 0, 1, 2);
        record.parent_span = 0;
        let mut decide = span(Stage::Decide, 0, 5, 6);
        decide.parent_span = record.span_id;
        store.record(record);
        store.record(decide);
        let tree = store.render_tree(7);
        assert!(tree.starts_with("trace 7: 2 spans\n"), "{tree}");
        assert!(tree.contains("record node=0"), "{tree}");
        assert!(tree.contains("\n  decide node=0"), "{tree}");
    }
}
