//! The metrics registry: atomic counters, gauges and log2-bucket
//! histograms keyed by `(name, sorted labels)`, with a consistent
//! snapshot API and Prometheus-text-format exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `k`
/// (1..=64) holds values in `[2^(k-1), 2^k - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index for `value` under the log2 scheme.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value falling in bucket `index` (inclusive).
///
/// # Panics
///
/// Panics if `index >= HISTOGRAM_BUCKETS`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    match index {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// A monotonically increasing counter. Disabled handles (from a
/// disabled [`crate::Telemetry`]) ignore every operation.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores everything.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A handle that ignores everything.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Shared storage of one histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A log2-bucket histogram of `u64` observations.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that ignores everything.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.observe(value);
        }
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |c| c.snapshot())
    }
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`. Returns
    /// 0 for an empty histogram; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean of the observed values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

type MetricKey = (String, Vec<(String, String)>);

/// The shared metrics registry of one cluster: every node's
/// [`crate::Telemetry`] handle publishes into the same registry, so one
/// snapshot covers the whole deployment.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

/// One metric in a [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// The value of one [`Sample`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram state.
    Histogram(HistogramSnapshot),
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (registering on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same name/labels were already registered as a
    /// different metric type — that is a programming error.
    pub fn counter(&self, name: &str, labels: &[(String, String)]) -> Counter {
        match self.resolve(name, labels, || {
            Metric::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            Metric::Counter(cell) => Counter(Some(cell)),
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Resolves (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type mismatch, as for [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(String, String)]) -> Gauge {
        match self.resolve(name, labels, || Metric::Gauge(Arc::new(AtomicI64::new(0)))) {
            Metric::Gauge(cell) => Gauge(Some(cell)),
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Resolves (registering on first use) the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type mismatch, as for [`Registry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(String, String)]) -> Histogram {
        match self.resolve(name, labels, || {
            Metric::Histogram(Arc::new(HistogramCore::new()))
        }) {
            Metric::Histogram(core) => Histogram(Some(core)),
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    fn resolve(
        &self,
        name: &str,
        labels: &[(String, String)],
        create: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut labels: Vec<(String, String)> = labels.to_vec();
        labels.sort();
        let key = (name.to_string(), labels);
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        metrics.entry(key).or_insert_with(create).clone()
    }

    /// Reads one counter's current value, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.lookup(name, labels)? {
            Metric::Counter(cell) => Some(cell.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// Reads one gauge's current value, if registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.lookup(name, labels)? {
            Metric::Gauge(cell) => Some(cell.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// Reads one histogram's current state, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        match self.lookup(name, labels)? {
            Metric::Histogram(core) => Some(core.snapshot()),
            _ => None,
        }
    }

    fn lookup(&self, name: &str, labels: &[(&str, &str)]) -> Option<Metric> {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let key = (name.to_string(), labels);
        self.metrics
            .lock()
            .expect("registry poisoned")
            .get(&key)
            .cloned()
    }

    /// A consistent point-in-time copy of every registered metric,
    /// sorted by `(name, labels)`.
    pub fn snapshot(&self) -> Vec<Sample> {
        let metrics = self.metrics.lock().expect("registry poisoned");
        metrics
            .iter()
            .map(|((name, labels), metric)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => SampleValue::Gauge(g.load(Ordering::Relaxed)),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// one `# TYPE` comment per metric name, `name{labels} value` lines,
    /// and the `_bucket`/`_sum`/`_count` expansion (with cumulative
    /// `le` buckets) for histograms.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<String> = None;
        for sample in self.snapshot() {
            if last_name.as_deref() != Some(sample.name.as_str()) {
                let kind = match sample.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {kind}\n", sample.name));
                last_name = Some(sample.name.clone());
            }
            match &sample.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        sample.name,
                        render_labels(&sample.labels, None)
                    ));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        sample.name,
                        render_labels(&sample.labels, None)
                    ));
                }
                SampleValue::Histogram(h) => {
                    // Standard Prometheus ingestion expects a *dense*
                    // cumulative series: every `le` boundary up to the
                    // highest populated bucket, so rate()/quantile math
                    // never interpolates across silently-missing
                    // boundaries. Buckets past the last observation are
                    // elided (they would all repeat the total, which
                    // `+Inf` already carries) — that keeps a log2
                    // histogram at ≤ 1 + highest-populated-index lines
                    // instead of a fixed 65.
                    let highest = h.buckets.iter().rposition(|&n| n != 0).map_or(0, |i| i + 1);
                    let mut cumulative = 0u64;
                    for (i, &n) in h.buckets.iter().enumerate().take(highest) {
                        cumulative += n;
                        let le = bucket_upper_bound(i).to_string();
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            sample.name,
                            render_labels(&sample.labels, Some(&le))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, Some("+Inf")),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One data line parsed back out of the exposition format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Metric name as written (histogram lines keep their
    /// `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in written order (including `le` for buckets).
    pub labels: Vec<(String, String)>,
    /// The numeric value (`+Inf` bucket counts are finite, so `f64`
    /// covers every value we emit).
    pub value: f64,
}

/// Parses Prometheus-text exposition output: `#` comment lines are
/// skipped, every other non-empty line must be `name{labels} value`.
/// Used by the round-trip tests and the CI smoke job.
pub fn parse_prometheus(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut samples = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<ParsedSample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .ok_or("missing value")?;
    let name = &line[..name_end];
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        let close = body.find('}').ok_or("unterminated label set")?;
        (parse_labels(&body[..close])?, &body[close + 1..])
    } else {
        (Vec::new(), rest)
    };
    let value_text = rest.trim();
    let value: f64 = if value_text == "+Inf" {
        f64::INFINITY
    } else {
        value_text
            .parse()
            .map_err(|e| format!("bad value {value_text:?}: {e}"))?
    };
    Ok(ParsedSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if key.is_empty() {
            return Err("empty label name".into());
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("label {key:?} missing =\"...\""));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated label value".into()),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => value.push('"'),
                    Some('\\') => value.push('\\'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad label escape {other:?}")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(c) => return Err(format!("expected ',' between labels, got {c:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn bucket_scheme_covers_the_domain() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn registry_reuses_and_type_checks_metrics() {
        let registry = Registry::new();
        let a = registry.counter("zugchain_x_total", &labels(&[("node", "0")]));
        let b = registry.counter("zugchain_x_total", &labels(&[("node", "0")]));
        a.inc();
        b.add(2);
        assert_eq!(
            registry.counter_value("zugchain_x_total", &[("node", "0")]),
            Some(3)
        );
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.gauge("zugchain_x_total", &labels(&[("node", "0")]))
        }));
        assert!(panicked.is_err(), "type mismatch must panic");
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let registry = Registry::new();
        let h = registry.histogram("zugchain_h", &[]);
        for v in [0u64, 1, 1, 5, 9] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 16);
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(0.5), 1);
        assert_eq!(snap.quantile(1.0), 15);
    }

    #[test]
    fn multi_label_lines_round_trip_with_escaping() {
        let registry = Registry::new();
        let tricky = "a\"b\\c\nd";
        registry
            .counter(
                "zugchain_archive_segments_total",
                &labels(&[("node", "0"), ("train", "12"), ("note", tricky)]),
            )
            .add(4);
        let text = registry.render_prometheus();
        let parsed = parse_prometheus(&text).expect("escaped multi-label line parses");
        let sample = parsed
            .iter()
            .find(|s| s.name == "zugchain_archive_segments_total")
            .expect("sample present");
        assert_eq!(sample.value, 4.0);
        // Labels come back sorted (registry key order) and byte-exact
        // through escaping.
        assert_eq!(
            sample.labels,
            labels(&[("node", "0"), ("note", tricky), ("train", "12")])
        );
    }

    #[test]
    fn histogram_exposition_is_dense_cumulative_with_inf_sum_count() {
        let registry = Registry::new();
        let h = registry.histogram("zugchain_stage_latency_ms", &labels(&[("node", "0")]));
        // Sparse observations: buckets 1 and 9 populated, everything
        // between empty — the interior boundaries must still be emitted.
        h.observe(1);
        h.observe(300);
        h.observe(400);
        let text = registry.render_prometheus();
        let parsed = parse_prometheus(&text).expect("exposition parses");
        let buckets: Vec<&ParsedSample> = parsed
            .iter()
            .filter(|s| s.name == "zugchain_stage_latency_ms_bucket")
            .collect();
        // Dense through bucket_index(400) = 9, plus +Inf: boundaries
        // 0,1,3,7,15,31,63,127,255,511,+Inf.
        let les: Vec<String> = buckets
            .iter()
            .map(|s| {
                s.labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .expect("bucket line has le")
            })
            .collect();
        let expected: Vec<String> = (0..=9)
            .map(|i| bucket_upper_bound(i).to_string())
            .chain(std::iter::once("+Inf".to_string()))
            .collect();
        assert_eq!(les, expected, "dense le boundaries:\n{text}");
        // Cumulative and monotone, ending at the total.
        let counts: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "cumulative counts must be monotone: {counts:?}"
        );
        assert_eq!(*counts.last().unwrap(), 3.0, "+Inf carries the total");
        // _sum/_count present and consistent.
        let get = |name: &str| {
            parsed
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} line present"))
                .value
        };
        assert_eq!(get("zugchain_stage_latency_ms_count"), 3.0);
        assert_eq!(get("zugchain_stage_latency_ms_sum"), 701.0);
        // An empty histogram exposes just +Inf/_sum/_count zeros.
        registry.histogram("zugchain_empty_ms", &labels(&[("node", "0")]));
        let parsed = parse_prometheus(&registry.render_prometheus()).expect("parses");
        let empty: Vec<&ParsedSample> = parsed
            .iter()
            .filter(|s| s.name == "zugchain_empty_ms_bucket")
            .collect();
        assert_eq!(empty.len(), 1);
        assert_eq!(empty[0].value, 0.0);
    }

    #[test]
    fn exposition_round_trips() {
        let registry = Registry::new();
        registry
            .counter("zugchain_pbft_decided_total", &labels(&[("node", "0")]))
            .add(7);
        registry
            .gauge("zugchain_pbft_view", &labels(&[("node", "0")]))
            .set(-2);
        let h = registry.histogram("zugchain_archive_ingest_ms", &labels(&[("node", "1")]));
        h.observe(0);
        h.observe(300);
        let text = registry.render_prometheus();
        let parsed = parse_prometheus(&text).expect("every emitted line parses");
        assert!(parsed
            .iter()
            .any(|s| s.name == "zugchain_pbft_decided_total" && s.value == 7.0));
        assert!(parsed
            .iter()
            .any(|s| s.name == "zugchain_pbft_view" && s.value == -2.0));
        assert!(parsed
            .iter()
            .any(|s| s.name == "zugchain_archive_ingest_ms_count" && s.value == 2.0));
        let inf_bucket = parsed
            .iter()
            .find(|s| {
                s.name == "zugchain_archive_ingest_ms_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket present");
        assert_eq!(inf_bucket.value, 2.0);
    }
}
