//! Zero-dependency observability for ZugChain.
//!
//! Two halves, both hand-rolled because the build environment is offline
//! (no `prometheus`, no `tracing` — the `shims/` discipline):
//!
//! * a **metrics registry** ([`Registry`]) of atomic counters, gauges and
//!   log2-bucket histograms, namespaced per node, with a consistent
//!   [`Registry::snapshot`] API and Prometheus-text-format exposition
//!   ([`Registry::render_prometheus`]) plus a round-trip parser
//!   ([`parse_prometheus`]) so tests can verify every emitted line;
//! * a **flight recorder** ([`FlightRecorder`]) — a fixed-capacity ring
//!   buffer of structured [`TraceEvent`]s timestamped from a
//!   runtime-driven clock (virtual time under the simulator, wall-clock
//!   milliseconds on the threaded/TCP runtimes), dumpable to JSONL on
//!   demand and parseable back ([`parse_jsonl`]) for post-mortems.
//!
//! The per-node entry point is [`Telemetry`]: a cheap, cloneable handle
//! that is either *enabled* (backed by a shared registry and a private
//! ring buffer) or *disabled* (a `None` — every operation is a single
//! branch, so instrumented hot paths stay free when observability is
//! off). Metric handles ([`Counter`], [`Gauge`], [`Histogram`]) follow
//! the same scheme and are meant to be resolved once and cached in the
//! instrumented struct, not looked up per event.
//!
//! Naming convention: `zugchain_<crate>_<name>` with a `node="<id>"`
//! label added by [`Telemetry`] (DESIGN.md §12 has the full vocabulary).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod json;
mod metrics;
mod recorder;
mod span;

pub use json::{parse_flat_object, JsonValue};
pub use metrics::{
    bucket_index, bucket_upper_bound, parse_prometheus, Counter, Gauge, Histogram,
    HistogramSnapshot, ParsedSample, Registry, Sample, SampleValue, HISTOGRAM_BUCKETS,
};
pub use recorder::{parse_jsonl, FlightRecorder, ParsedRecord, TraceEvent, TraceRecord};
pub use span::{
    check_chain, parse_span_jsonl, ChainCheck, Span, SpanBuffer, Stage, TraceStore, STAGES,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Default flight-recorder capacity (events retained per node).
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// A per-node observability handle: clock, flight recorder, and a view
/// onto the shared metrics registry with the node label pre-applied.
///
/// Cloning is cheap (an `Arc` bump); a [`Telemetry::disabled`] handle
/// (also the `Default`) makes every operation a no-op behind one branch.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

struct TelemetryInner {
    node: u64,
    node_label: String,
    /// Fleet dimension: when set, every metric resolved through this
    /// handle carries `train="<id>"` next to `node="<id>"`.
    train_label: Option<String>,
    /// Numeric form of `train_label` (0 for the default train) — the
    /// value trace-id derivation hashes, so every layer agrees.
    train_id: u64,
    trace_capacity: usize,
    /// Milliseconds on the runtime's clock: virtual time in the
    /// simulator and chaos executor, elapsed wall-clock on the threaded
    /// and TCP runtimes. Advanced monotonically via `fetch_max`. Shared
    /// (`Arc`) with handles derived via [`Telemetry::for_train`], so the
    /// runtime only has to drive the parent handle's clock.
    now_ms: Arc<AtomicU64>,
    recorder: Mutex<FlightRecorder>,
    /// Span ring alongside the flight recorder, same capacity.
    spans: Mutex<SpanBuffer>,
    /// Cluster-shared cross-node join point, when the runtime wired one.
    trace_store: Option<Arc<TraceStore>>,
    /// `zugchain_stage_latency_ms{stage=...}` handles, resolved once on
    /// the first span so the per-span path never takes the registry
    /// lock.
    stage_latency: OnceLock<Vec<Histogram>>,
    registry: Arc<Registry>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(inner) => write!(f, "Telemetry(node={})", inner.node),
        }
    }
}

impl Telemetry {
    /// A handle that ignores everything. Instrumented code can hold one
    /// unconditionally; the cost of an event is a single `None` check.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle for `node`, publishing metrics into `registry`
    /// and tracing into a private ring buffer of `trace_capacity` events.
    pub fn new(node: u64, registry: Arc<Registry>, trace_capacity: usize) -> Self {
        Self::new_with_store(node, registry, trace_capacity, None)
    }

    /// Like [`Telemetry::new`] with a cluster-shared [`TraceStore`]:
    /// spans recorded through this handle land in the node's private
    /// ring *and* in `store`, joining them with every other node that
    /// shares it.
    pub fn new_with_store(
        node: u64,
        registry: Arc<Registry>,
        trace_capacity: usize,
        store: Option<Arc<TraceStore>>,
    ) -> Self {
        Self {
            inner: Some(Arc::new(TelemetryInner {
                node,
                node_label: node.to_string(),
                train_label: None,
                train_id: 0,
                trace_capacity,
                now_ms: Arc::new(AtomicU64::new(0)),
                recorder: Mutex::new(FlightRecorder::new(trace_capacity)),
                spans: Mutex::new(SpanBuffer::new(trace_capacity)),
                trace_store: store,
                stage_latency: OnceLock::new(),
                registry,
            })),
        }
    }

    /// Derives a handle namespaced under a train of the fleet: metrics
    /// it resolves carry a `train="<id>"` label in addition to the
    /// `node="<id>"` label. The derived handle shares the registry and
    /// trace store **and the runtime clock** but owns a fresh flight
    /// recorder and span ring. Deriving from a disabled handle stays
    /// disabled.
    pub fn for_train(&self, train: u64) -> Telemetry {
        match &self.inner {
            None => Telemetry::disabled(),
            Some(inner) => Telemetry {
                inner: Some(Arc::new(TelemetryInner {
                    node: inner.node,
                    node_label: inner.node_label.clone(),
                    train_label: Some(train.to_string()),
                    train_id: train,
                    trace_capacity: inner.trace_capacity,
                    now_ms: Arc::clone(&inner.now_ms),
                    recorder: Mutex::new(FlightRecorder::new(inner.trace_capacity)),
                    spans: Mutex::new(SpanBuffer::new(inner.trace_capacity)),
                    trace_store: inner.trace_store.clone(),
                    stage_latency: OnceLock::new(),
                    registry: Arc::clone(&inner.registry),
                })),
            },
        }
    }

    /// The train id this handle is namespaced under, if any.
    pub fn train(&self) -> Option<&str> {
        self.inner.as_ref()?.train_label.as_deref()
    }

    /// Numeric train id (0 when disabled or on the default train) —
    /// what trace-id derivation hashes.
    pub fn train_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.train_id)
    }

    /// Whether this handle actually records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The node id this handle is namespaced under, if enabled.
    pub fn node(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.node)
    }

    /// Advances the trace clock to `t` milliseconds (monotonic: earlier
    /// values are ignored, so out-of-order threads cannot rewind time).
    pub fn set_time_ms(&self, t: u64) {
        if let Some(inner) = &self.inner {
            inner.now_ms.fetch_max(t, Ordering::Relaxed);
        }
    }

    /// Current trace-clock reading in milliseconds.
    pub fn now_ms(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.now_ms.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Appends a trace event, timestamping it from the trace clock. The
    /// closure only runs when enabled, so a disabled handle never pays
    /// for event construction.
    pub fn record_with(&self, event: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            let t = inner.now_ms.load(Ordering::Relaxed);
            let mut recorder = inner.recorder.lock().expect("recorder poisoned");
            recorder.record(t, inner.node, event());
        }
    }

    /// Records one causal span: it lands in this node's span ring, the
    /// cluster-shared [`TraceStore`] (when wired), and the
    /// `zugchain_stage_latency_ms{stage=...}` histogram family. The
    /// closure only runs when enabled, so a disabled handle pays one
    /// branch.
    pub fn record_span(&self, make: impl FnOnce() -> Span) {
        let Some(inner) = &self.inner else { return };
        let span = make();
        let stage_hist = inner.stage_latency.get_or_init(|| {
            span::STAGES
                .iter()
                .map(|stage| {
                    let labels = inner.with_node_label(&[("stage", stage.as_str())]);
                    inner
                        .registry
                        .histogram("zugchain_stage_latency_ms", &labels)
                })
                .collect()
        });
        stage_hist[span.stage.order()].observe(span.latency_ms());
        if let Some(store) = &inner.trace_store {
            store.record(span.clone());
        }
        inner
            .spans
            .lock()
            .expect("span buffer poisoned")
            .record(span);
    }

    /// The cluster-shared trace store behind this handle, if one was
    /// wired at construction.
    pub fn trace_store(&self) -> Option<Arc<TraceStore>> {
        self.inner.as_ref()?.trace_store.clone()
    }

    /// Dumps this node's span ring as JSONL, oldest span first. Empty
    /// string when disabled.
    pub fn span_jsonl(&self) -> String {
        match &self.inner {
            Some(inner) => inner
                .spans
                .lock()
                .expect("span buffer poisoned")
                .dump_jsonl(),
            None => String::new(),
        }
    }

    /// Resolves (registering on first use) a counter named `name` with
    /// this node's label. Cache the returned handle.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Like [`Telemetry::counter`] with extra labels (e.g.
    /// `type="preprepare"`).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name, &inner.with_node_label(labels)),
            None => Counter::disabled(),
        }
    }

    /// Resolves (registering on first use) a gauge named `name` with
    /// this node's label.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name, &inner.with_node_label(&[])),
            None => Gauge::disabled(),
        }
    }

    /// Resolves (registering on first use) a log2-bucket histogram named
    /// `name` with this node's label.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, &inner.with_node_label(&[])),
            None => Histogram::disabled(),
        }
    }

    /// The shared registry behind this handle, if enabled.
    pub fn registry(&self) -> Option<Arc<Registry>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.registry))
    }

    /// Dumps the flight recorder as JSONL, oldest event first. Empty
    /// string when disabled.
    pub fn dump_jsonl(&self) -> String {
        match &self.inner {
            Some(inner) => inner
                .recorder
                .lock()
                .expect("recorder poisoned")
                .dump_jsonl(),
            None => String::new(),
        }
    }

    /// The most recent `n` trace records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        match &self.inner {
            Some(inner) => inner.recorder.lock().expect("recorder poisoned").tail(n),
            None => Vec::new(),
        }
    }

    /// Registers this handle with a process-wide panic hook that dumps
    /// every registered (and still live) flight recorder to stderr as
    /// JSONL before the previous hook runs — so a crashing node thread
    /// leaves its last events behind instead of taking them down with
    /// the process. Registration holds only a weak reference; dropped
    /// handles are pruned and never dumped. No-op when disabled.
    pub fn dump_on_panic(&self) {
        let Some(inner) = &self.inner else { return };
        let traces = panic_traces();
        let mut traces = traces.lock().expect("panic-dump registry poisoned");
        traces.retain(|weak| weak.strong_count() > 0);
        traces.push(Arc::downgrade(inner));
    }
}

static PANIC_TRACES: OnceLock<Mutex<Vec<Weak<TelemetryInner>>>> = OnceLock::new();

fn panic_traces() -> &'static Mutex<Vec<Weak<TelemetryInner>>> {
    PANIC_TRACES.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            eprint!("{}", panic_dump());
            previous(info);
        }));
        Mutex::new(Vec::new())
    })
}

/// Renders every panic-registered, still-live flight recorder as a
/// stderr-ready block (what the panic hook prints). `try_lock` is used
/// throughout: if the panicking thread holds a recorder or registry
/// lock, its dump is skipped rather than deadlocking the hook.
fn panic_dump() -> String {
    let mut out = String::new();
    let Some(traces) = PANIC_TRACES.get() else {
        return out;
    };
    let Ok(traces) = traces.try_lock() else {
        return out;
    };
    for inner in traces.iter().filter_map(Weak::upgrade) {
        if let Ok(recorder) = inner.recorder.try_lock() {
            out.push_str(&format!("--- flight recorder: node {} ---\n", inner.node));
            out.push_str(&recorder.dump_jsonl());
        }
    }
    out
}

impl TelemetryInner {
    fn with_node_label(&self, labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut all = Vec::with_capacity(labels.len() + 2);
        all.push(("node".to_string(), self.node_label.clone()));
        if let Some(train) = &self.train_label {
            all.push(("train".to_string(), train.clone()));
        }
        for (k, v) in labels {
            all.push((k.to_string(), v.to_string()));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.set_time_ms(55);
        assert_eq!(t.now_ms(), 0);
        t.record_with(|| unreachable!("closure must not run when disabled"));
        t.counter("zugchain_test_total").inc();
        t.gauge("zugchain_test_gauge").set(7);
        t.histogram("zugchain_test_hist").observe(9);
        assert_eq!(t.dump_jsonl(), "");
        assert!(t.tail(10).is_empty());
    }

    #[test]
    fn enabled_handle_publishes_with_node_label() {
        let registry = Arc::new(Registry::new());
        let t = Telemetry::new(3, Arc::clone(&registry), 16);
        t.counter("zugchain_test_total").add(2);
        assert_eq!(
            registry.counter_value("zugchain_test_total", &[("node", "3")]),
            Some(2)
        );
    }

    #[test]
    fn for_train_adds_the_train_label() {
        let registry = Arc::new(Registry::new());
        let t = Telemetry::new(3, Arc::clone(&registry), 16);
        let t12 = t.for_train(12);
        assert_eq!(t12.node(), Some(3));
        assert_eq!(t12.train(), Some("12"));
        assert_eq!(t.train(), None);
        t12.counter("zugchain_test_total").add(5);
        assert_eq!(
            registry.counter_value("zugchain_test_total", &[("node", "3"), ("train", "12")]),
            Some(5)
        );
        // The plain handle's series stays distinct.
        assert_eq!(
            registry.counter_value("zugchain_test_total", &[("node", "3")]),
            None
        );
        assert!(!Telemetry::disabled().for_train(12).is_enabled());
        // The runtime drives the parent handle's clock; derived handles
        // share it (spans recorded through them must not freeze in time).
        t.set_time_ms(40);
        assert_eq!(t12.now_ms(), 40);
        t12.set_time_ms(90);
        assert_eq!(t.now_ms(), 90);
    }

    #[test]
    fn clock_is_monotonic_and_stamps_events() {
        let registry = Arc::new(Registry::new());
        let t = Telemetry::new(0, registry, 4);
        t.set_time_ms(10);
        t.set_time_ms(5); // ignored: the clock never rewinds
        t.record_with(|| TraceEvent::Checkpoint { sn: 1 });
        let tail = t.tail(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].time_ms, 10);
        assert_eq!(tail[0].node, 0);
    }

    #[test]
    fn panic_dump_covers_live_handles_and_prunes_dropped_ones() {
        let registry = Arc::new(Registry::new());
        let live = Telemetry::new(7, Arc::clone(&registry), 8);
        live.dump_on_panic();
        live.record_with(|| TraceEvent::Decide { sn: 9, origin: 7 });
        let dropped = Telemetry::new(8, registry, 8);
        dropped.dump_on_panic();
        drop(dropped);
        let dump = panic_dump();
        assert!(dump.contains("node 7"), "live handle missing: {dump}");
        assert!(dump.contains("\"sn\":9"), "recorded event missing: {dump}");
        assert!(
            !dump.contains("node 8"),
            "dropped handle must not dump: {dump}"
        );
    }

    #[test]
    fn spans_land_in_ring_store_and_stage_histogram() {
        let registry = Arc::new(Registry::new());
        let store = Arc::new(TraceStore::new());
        let t = Telemetry::new_with_store(2, Arc::clone(&registry), 8, Some(Arc::clone(&store)))
            .for_train(9);
        assert_eq!(t.train_id(), 9);
        t.record_span(|| Span {
            trace_id: 77,
            span_id: 5,
            parent_span: 0,
            stage: Stage::Decide,
            node: 2,
            train: 9,
            sn: 3,
            start_ms: 10,
            end_ms: 14,
        });
        // Ring dump has the span.
        let parsed = parse_span_jsonl(&t.span_jsonl()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].trace_id, 77);
        // Shared store joined it.
        assert_eq!(store.assemble(77).len(), 1);
        assert_eq!(store.traces_for_sn(3), vec![77]);
        // Stage histogram observed the 4 ms latency.
        let snap = registry
            .histogram_snapshot(
                "zugchain_stage_latency_ms",
                &[("node", "2"), ("stage", "decide"), ("train", "9")],
            )
            .expect("stage series registered");
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 4);
        // Disabled handles never construct the span.
        Telemetry::disabled().record_span(|| unreachable!("disabled"));
    }

    #[test]
    fn ring_buffer_keeps_only_the_tail() {
        let registry = Arc::new(Registry::new());
        let t = Telemetry::new(1, registry, 2);
        for sn in 0..5u64 {
            t.record_with(|| TraceEvent::Checkpoint { sn });
        }
        let tail = t.tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 3);
        assert_eq!(tail[1].seq, 4);
    }
}
