//! The minimal flat-JSON dialect the flight recorder emits: one object
//! per line, string/unsigned-integer/boolean values only, no nesting.
//! A hand-rolled writer/parser pair keeps the crate dependency-free
//! while letting tests round-trip every dumped line.

/// A value in a flat JSON object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// An unsigned integer.
    U64(u64),
    /// A string (unescaped).
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl JsonValue {
    /// The integer value, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escapes `s` for use inside a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes one `"key":value` pair onto `out` (comma-prefixed when not
/// first).
pub(crate) fn push_field(out: &mut String, first: &mut bool, key: &str, value: &JsonValue) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    out.push_str(&escape(key));
    out.push_str("\":");
    match value {
        JsonValue::U64(v) => out.push_str(&v.to_string()),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}`) into its key/value pairs,
/// preserving order. Rejects nesting, trailing garbage, and any syntax
/// outside the dialect the recorder emits.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let text = line.trim();
    let mut fields = Vec::new();

    expect_char(text, &mut chars, '{')?;
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(text, &mut chars)?;
            skip_ws(&mut chars);
            expect_char(text, &mut chars, ':')?;
            skip_ws(&mut chars);
            let value = parse_value(text, &mut chars)?;
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((i, c)) = chars.next() {
        return Err(format!("trailing input at byte {i}: {c:?}"));
    }
    Ok(fields)
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect_char(text: &str, chars: &mut Chars<'_>, want: char) -> Result<(), String> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        Some((i, c)) => Err(format!(
            "expected {want:?} at byte {i}, got {c:?} in {text:?}"
        )),
        None => Err(format!("expected {want:?}, got end of input in {text:?}")),
    }
}

fn parse_string(text: &str, chars: &mut Chars<'_>) -> Result<String, String> {
    expect_char(text, chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, c) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + c.to_digit(16).ok_or("bad \\u escape digit")?;
                    }
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                }
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some((_, c)) => out.push(c),
        }
    }
}

fn parse_value(text: &str, chars: &mut Chars<'_>) -> Result<JsonValue, String> {
    match chars.peek() {
        Some((_, '"')) => Ok(JsonValue::Str(parse_string(text, chars)?)),
        Some((_, 't')) => parse_keyword(chars, "true").map(|_| JsonValue::Bool(true)),
        Some((_, 'f')) => parse_keyword(chars, "false").map(|_| JsonValue::Bool(false)),
        Some((_, c)) if c.is_ascii_digit() => {
            let mut n: u64 = 0;
            let mut any = false;
            while let Some((_, c)) = chars.peek().copied() {
                let Some(d) = c.to_digit(10) else { break };
                chars.next();
                any = true;
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(d as u64))
                    .ok_or("integer overflow")?;
            }
            if !any {
                return Err("expected digits".into());
            }
            Ok(JsonValue::U64(n))
        }
        other => Err(format!("unsupported value start {other:?} in {text:?}")),
    }
}

fn parse_keyword(chars: &mut Chars<'_>, word: &str) -> Result<(), String> {
    for want in word.chars() {
        match chars.next() {
            Some((_, c)) if c == want => {}
            other => return Err(format!("expected keyword {word:?}, got {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_kind() {
        let mut line = String::from("{");
        let mut first = true;
        push_field(&mut line, &mut first, "n", &JsonValue::U64(u64::MAX));
        push_field(
            &mut line,
            &mut first,
            "s",
            &JsonValue::Str("a\"b\\c\nd\u{1}".into()),
        );
        push_field(&mut line, &mut first, "b", &JsonValue::Bool(true));
        line.push('}');
        let fields = parse_flat_object(&line).unwrap();
        assert_eq!(fields[0], ("n".into(), JsonValue::U64(u64::MAX)));
        assert_eq!(
            fields[1],
            ("s".into(), JsonValue::Str("a\"b\\c\nd\u{1}".into()))
        );
        assert_eq!(fields[2], ("b".into(), JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage_and_nesting() {
        assert!(parse_flat_object("{\"a\":1} x").is_err());
        assert!(parse_flat_object("{\"a\":{}}").is_err());
        assert!(parse_flat_object("{\"a\":[1]}").is_err());
    }

    #[test]
    fn parses_empty_object() {
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }
}
