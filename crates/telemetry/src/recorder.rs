//! The flight recorder: a fixed-capacity ring buffer of structured
//! trace events, dumped as one flat JSON object per line (JSONL).
//! Timestamps come from the runtime-driven [`crate::Telemetry`] clock,
//! so a simulated run dumps byte-identical traces for the same seed.

use std::collections::VecDeque;

use crate::json::{parse_flat_object, push_field, JsonValue};

/// One structured event in a node's flight-recorder trace. The
/// vocabulary covers the observable life of a replica: bus/peer inputs,
/// driver effects, timers (with the [`zugchain-machine`] generation
/// discipline), and the protocol milestones every runtime shares.
///
/// [`zugchain-machine`]: https://docs.rs/zugchain-machine
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A peer or bus message was delivered to the node.
    MessageDelivered {
        /// Short message-kind label (e.g. `preprepare`).
        kind: String,
    },
    /// The state machine emitted an effect.
    EffectEmitted {
        /// The effect discriminant (`send`, `broadcast`, `set-timer`,
        /// `cancel-timer`, `output`).
        kind: &'static str,
    },
    /// A timer was armed.
    TimerSet {
        /// Timer label (e.g. `view-change(3)`).
        timer: String,
        /// Arming generation from the driver's timer table.
        generation: u64,
        /// Requested duration.
        duration_ms: u64,
    },
    /// A timer was cancelled.
    TimerCancelled {
        /// Timer label.
        timer: String,
    },
    /// A timer expiry was delivered to the driver.
    TimerFired {
        /// Timer label.
        timer: String,
        /// Expiry generation.
        generation: u64,
        /// Whether the expiry was stale (superseded by a re-arm or
        /// cancel) and therefore dropped.
        stale: bool,
    },
    /// A request was decided (entered the totally ordered log).
    Decide {
        /// Assigned sequence number.
        sn: u64,
        /// Node that received the request from the bus.
        origin: u64,
    },
    /// A view change completed.
    ViewChange {
        /// The new view.
        view: u64,
        /// Primary of the new view.
        primary: u64,
    },
    /// A checkpoint became stable.
    Checkpoint {
        /// Sequence number covered by the checkpoint certificate.
        sn: u64,
    },
    /// The node fell behind and requested a state transfer.
    StateTransfer {
        /// The stable sequence number to catch up to.
        target_sn: u64,
    },
    /// An export round completed at a data center.
    ExportRound {
        /// Blocks moved in the round.
        blocks: u64,
    },
    /// A certified segment was ingested by a juridical archive.
    ArchiveIngest {
        /// Segment sequence number.
        seq: u64,
        /// Blocks in the segment.
        blocks: u64,
    },
    /// A free-form annotation (e.g. an invariant-violation note).
    Mark {
        /// The annotation text.
        label: String,
    },
}

impl TraceEvent {
    /// The stable `kind` discriminant written to JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MessageDelivered { .. } => "message",
            TraceEvent::EffectEmitted { .. } => "effect",
            TraceEvent::TimerSet { .. } => "timer-set",
            TraceEvent::TimerCancelled { .. } => "timer-cancel",
            TraceEvent::TimerFired { .. } => "timer-fire",
            TraceEvent::Decide { .. } => "decide",
            TraceEvent::ViewChange { .. } => "view-change",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::StateTransfer { .. } => "state-transfer",
            TraceEvent::ExportRound { .. } => "export-round",
            TraceEvent::ArchiveIngest { .. } => "archive-ingest",
            TraceEvent::Mark { .. } => "mark",
        }
    }

    fn fields(&self) -> Vec<(&'static str, JsonValue)> {
        match self {
            TraceEvent::MessageDelivered { kind } => {
                vec![("msg", JsonValue::Str(kind.clone()))]
            }
            TraceEvent::EffectEmitted { kind } => {
                vec![("effect", JsonValue::Str((*kind).to_string()))]
            }
            TraceEvent::TimerSet {
                timer,
                generation,
                duration_ms,
            } => vec![
                ("timer", JsonValue::Str(timer.clone())),
                ("gen", JsonValue::U64(*generation)),
                ("duration_ms", JsonValue::U64(*duration_ms)),
            ],
            TraceEvent::TimerCancelled { timer } => {
                vec![("timer", JsonValue::Str(timer.clone()))]
            }
            TraceEvent::TimerFired {
                timer,
                generation,
                stale,
            } => vec![
                ("timer", JsonValue::Str(timer.clone())),
                ("gen", JsonValue::U64(*generation)),
                ("stale", JsonValue::Bool(*stale)),
            ],
            TraceEvent::Decide { sn, origin } => vec![
                ("sn", JsonValue::U64(*sn)),
                ("origin", JsonValue::U64(*origin)),
            ],
            TraceEvent::ViewChange { view, primary } => vec![
                ("view", JsonValue::U64(*view)),
                ("primary", JsonValue::U64(*primary)),
            ],
            TraceEvent::Checkpoint { sn } => vec![("sn", JsonValue::U64(*sn))],
            TraceEvent::StateTransfer { target_sn } => {
                vec![("target_sn", JsonValue::U64(*target_sn))]
            }
            TraceEvent::ExportRound { blocks } => vec![("blocks", JsonValue::U64(*blocks))],
            TraceEvent::ArchiveIngest { seq, blocks } => vec![
                ("seq", JsonValue::U64(*seq)),
                ("blocks", JsonValue::U64(*blocks)),
            ],
            TraceEvent::Mark { label } => vec![("label", JsonValue::Str(label.clone()))],
        }
    }
}

/// One timestamped entry in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Trace-clock milliseconds at record time.
    pub time_ms: u64,
    /// Recording node.
    pub node: u64,
    /// Monotone per-recorder sequence number (survives ring eviction,
    /// so gaps reveal how much history was dropped).
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders this record as one flat JSON object (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        push_field(&mut out, &mut first, "t_ms", &JsonValue::U64(self.time_ms));
        push_field(&mut out, &mut first, "node", &JsonValue::U64(self.node));
        push_field(&mut out, &mut first, "seq", &JsonValue::U64(self.seq));
        push_field(
            &mut out,
            &mut first,
            "kind",
            &JsonValue::Str(self.event.kind().to_string()),
        );
        for (key, value) in self.event.fields() {
            push_field(&mut out, &mut first, key, &value);
        }
        out.push('}');
        out
    }
}

/// A fixed-capacity ring buffer of [`TraceRecord`]s: constant memory,
/// newest events win.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    events: VecDeque<TraceRecord>,
}

impl FlightRecorder {
    /// An empty recorder retaining at most `capacity` events (minimum
    /// 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            next_seq: 0,
            events: VecDeque::new(),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&mut self, time_ms: u64, node: u64, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceRecord {
            time_ms,
            node,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The most recent `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).cloned().collect()
    }

    /// Dumps the retained events as JSONL, oldest first (one JSON
    /// object per line, trailing newline after each).
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.events {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }
}

/// One record parsed back out of a JSONL dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRecord {
    /// Trace-clock milliseconds.
    pub time_ms: u64,
    /// Recording node.
    pub node: u64,
    /// Recorder sequence number.
    pub seq: u64,
    /// The event-kind discriminant (see [`TraceEvent::kind`]).
    pub kind: String,
    /// The event's remaining fields, in written order.
    pub fields: Vec<(String, JsonValue)>,
}

impl ParsedRecord {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Parses a flight-recorder JSONL dump back into records. Every line
/// must be a flat JSON object with the `t_ms`/`node`/`seq`/`kind`
/// header fields.
pub fn parse_jsonl(text: &str) -> Result<Vec<ParsedRecord>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_flat_object(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let mut time_ms = None;
        let mut node = None;
        let mut seq = None;
        let mut kind = None;
        let mut rest = Vec::new();
        for (key, value) in fields {
            match key.as_str() {
                "t_ms" => time_ms = value.as_u64(),
                "node" => node = value.as_u64(),
                "seq" => seq = value.as_u64(),
                "kind" => kind = value.as_str().map(str::to_string),
                _ => rest.push((key, value)),
            }
        }
        records.push(ParsedRecord {
            time_ms: time_ms.ok_or_else(|| format!("line {}: missing t_ms", idx + 1))?,
            node: node.ok_or_else(|| format!("line {}: missing node", idx + 1))?,
            seq: seq.ok_or_else(|| format!("line {}: missing seq", idx + 1))?,
            kind: kind.ok_or_else(|| format!("line {}: missing kind", idx + 1))?,
            fields: rest,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_round_trips_through_the_parser() {
        let mut recorder = FlightRecorder::new(8);
        recorder.record(
            1,
            0,
            TraceEvent::MessageDelivered {
                kind: "preprepare".into(),
            },
        );
        recorder.record(2, 0, TraceEvent::Decide { sn: 1, origin: 3 });
        recorder.record(
            3,
            0,
            TraceEvent::TimerFired {
                timer: "view-change(1)".into(),
                generation: 2,
                stale: true,
            },
        );
        let dump = recorder.dump_jsonl();
        let parsed = parse_jsonl(&dump).expect("dump parses");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].kind, "message");
        assert_eq!(parsed[1].kind, "decide");
        assert_eq!(parsed[1].field("sn"), Some(&JsonValue::U64(1)));
        assert_eq!(parsed[2].field("stale"), Some(&JsonValue::Bool(true)));
        assert_eq!(parsed[2].seq, 2);
    }

    #[test]
    fn eviction_preserves_sequence_numbers() {
        let mut recorder = FlightRecorder::new(2);
        for sn in 0..4 {
            recorder.record(sn, 1, TraceEvent::Checkpoint { sn });
        }
        let tail = recorder.tail(2);
        assert_eq!(tail[0].seq, 2);
        assert_eq!(tail[1].seq, 3);
        assert_eq!(recorder.len(), 2);
    }
}
