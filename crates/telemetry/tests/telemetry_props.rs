//! Property tests for the metrics half of `zugchain-telemetry`: the
//! log2 bucket scheme must partition the whole `u64` domain, quantiles
//! must be monotone in `q`, atomic counters must not lose concurrent
//! increments, and every line the Prometheus renderer emits must parse
//! back to the exact value that was recorded.

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use zugchain_telemetry::{
    bucket_index, bucket_upper_bound, parse_prometheus, Registry, HISTOGRAM_BUCKETS,
};

/// The fixed edges of the bucket scheme: 0 and 1 get their own buckets,
/// every power of two opens a new one, and `u64::MAX` lands in the last.
#[test]
fn bucket_edges_are_exact() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    assert_eq!(bucket_upper_bound(0), 0);
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    for k in 1..HISTOGRAM_BUCKETS - 1 {
        let low = 1u64 << (k - 1);
        assert_eq!(bucket_index(low), k, "2^{} opens bucket {k}", k - 1);
        assert_eq!(
            bucket_index(low - 1),
            k - 1,
            "2^{} - 1 closes bucket {}",
            k - 1,
            k - 1
        );
        assert_eq!(bucket_upper_bound(k), (1u64 << k) - 1);
    }
}

/// Relaxed-ordering `fetch_add` still sums exactly: no increment from
/// any thread may be lost, because hot-path instrument points rely on
/// the registry totals matching the simulator's own accounting.
#[test]
fn concurrent_counter_increments_sum_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("zugchain_test_concurrent_total", &[]);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counter = counter.clone();
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("incrementer thread panicked");
    }
    assert_eq!(counter.get(), THREADS * PER_THREAD);
    assert_eq!(
        registry.counter_value("zugchain_test_concurrent_total", &[]),
        Some(THREADS * PER_THREAD)
    );
}

fn labels(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

proptest! {
    /// Buckets partition the domain: every value falls inside exactly
    /// one bucket, below its upper bound and above the previous one's.
    #[test]
    fn every_value_lands_in_its_bucket(value: u64) {
        let index = bucket_index(value);
        prop_assert!(index < HISTOGRAM_BUCKETS);
        prop_assert!(value <= bucket_upper_bound(index));
        if index > 0 {
            prop_assert!(value > bucket_upper_bound(index - 1));
        }
    }

    /// Nearest-rank quantiles over log2 buckets are monotone in `q`,
    /// never under-report the maximum, and keep exact count/sum.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(any::<u64>(), 1..64),
        qa in 0u64..=1000,
        qb in 0u64..=1000,
    ) {
        let registry = Registry::new();
        let histogram = registry.histogram("zugchain_test_hist", &[]);
        for v in &values {
            histogram.observe(*v);
        }
        let snap = histogram.snapshot();
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        prop_assert!(
            snap.quantile(lo as f64 / 1000.0) <= snap.quantile(hi as f64 / 1000.0),
            "q={} exceeded q={}", lo, hi
        );
        let max = values.iter().copied().max().unwrap();
        prop_assert!(snap.quantile(1.0) >= max);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(
            snap.sum,
            values.iter().copied().fold(0u64, u64::wrapping_add)
        );
    }

    /// Everything the renderer emits parses back to the recorded value:
    /// counters and gauges exactly (modulo the shared decimal->f64
    /// rounding on both sides), histograms with the `+Inf` bucket and
    /// `_count` carrying the exact observation count.
    #[test]
    fn exposition_round_trips_exactly(
        counters in proptest::collection::vec(any::<u64>(), 1..8),
        gauge in any::<i64>(),
        observations in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let registry = Registry::new();
        for (i, v) in counters.iter().enumerate() {
            let node = i.to_string();
            registry
                .counter("zugchain_test_total", &labels(&[("node", &node)]))
                .add(*v);
        }
        registry.gauge("zugchain_test_gauge", &[]).set(gauge);
        let histogram =
            registry.histogram("zugchain_test_latency", &labels(&[("node", "0")]));
        for v in &observations {
            histogram.observe(*v);
        }

        let text = registry.render_prometheus();
        let parsed = parse_prometheus(&text);
        prop_assert!(parsed.is_ok(), "exposition failed to parse: {:?}", parsed);
        let parsed = parsed.unwrap();

        for (i, v) in counters.iter().enumerate() {
            let node = i.to_string();
            let sample = parsed.iter().find(|s| {
                s.name == "zugchain_test_total"
                    && s.labels.iter().any(|(k, val)| k == "node" && *val == node)
            });
            prop_assert!(sample.is_some(), "counter for node {} missing", node);
            prop_assert_eq!(sample.unwrap().value, *v as f64);
        }
        let gauge_sample = parsed
            .iter()
            .find(|s| s.name == "zugchain_test_gauge")
            .expect("gauge line present");
        prop_assert_eq!(gauge_sample.value, gauge as f64);
        let count = parsed
            .iter()
            .find(|s| s.name == "zugchain_test_latency_count")
            .expect("histogram _count present");
        prop_assert_eq!(count.value, observations.len() as f64);
        let inf = parsed
            .iter()
            .find(|s| {
                s.name == "zugchain_test_latency_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket present");
        prop_assert_eq!(inf.value, observations.len() as f64);
    }

    /// Label values survive escaping: quotes, backslashes and newlines
    /// in a label must round-trip byte-identically through the text
    /// format.
    #[test]
    fn label_escaping_round_trips(value in proptest::collection::vec(any::<char>(), 0..24)) {
        let value: String = value.into_iter().collect();
        // The test parser is line-oriented and finds the label set's end
        // with the first `}`: bare `\r` and `}` are out of its contract
        // (real label values here are node ids and message-kind names).
        prop_assume!(!value.contains('\r') && !value.contains('}'));
        let registry = Registry::new();
        registry
            .counter("zugchain_test_escaped_total", &labels(&[("detail", &value)]))
            .inc();
        let parsed = parse_prometheus(&registry.render_prometheus())
            .expect("escaped exposition parses");
        let sample = parsed
            .iter()
            .find(|s| s.name == "zugchain_test_escaped_total")
            .expect("counter line present");
        let detail = sample
            .labels
            .iter()
            .find(|(k, _)| k == "detail")
            .map(|(_, v)| v.as_str());
        prop_assert_eq!(detail, Some(value.as_str()));
    }
}
