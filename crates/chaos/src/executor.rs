//! Deterministic plan execution with invariant checking.
//!
//! Runs a [`ChaosPlan`] as a discrete-event simulation over the unified
//! [`Driver`]: one driver per [`ZugchainNode`] (wrapped in a
//! [`ByzNode`]), two ground-side [`DataCenter`]s with per-node
//! [`ExportReplica`] handlers, and a seeded network model. Safety
//! invariants are checked after every event; liveness invariants at
//! quiescence (when the event heap drains). The first violation aborts
//! the run and is returned in the [`ChaosOutcome`].

use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use rand::{rngs::StdRng, RngExt as _, SeedableRng as _};
use zugchain::{
    NodeConfig, NodeEvent, NodeInput, NodeMessage, NodeObserver, TimerId, TrainMachine, TrainNode,
    ZugchainNode,
};
use zugchain_archive::FleetArchive;
use zugchain_blockchain::{verify_chain, Block, BlockBuilder, ChainStore, LoggedRequest};
use zugchain_crypto::{Digest, KeyPair, Keystore};
use zugchain_export::{
    CertifiedSegment, DataCenter, DcAddr, DcConfig, DcEffect, DcId, ExportMessage, ExportReplica,
    ReplicaExportConfig,
};
use zugchain_machine::{Driver, Effect, Frame, Host};
use zugchain_mvb::Nsdb;
use zugchain_pbft::{Checkpoint, CheckpointProof, Config, Message, NodeId};
use zugchain_telemetry::{Registry, Telemetry, TraceEvent, TraceStore, DEFAULT_TRACE_CAPACITY};
use zugchain_wire::TrainId;

use crate::byzantine::ByzNode;
use crate::plan::{ByzBehavior, ChaosPlan};

const NS_PER_MS: u64 = 1_000_000;
const NS_PER_US: u64 = 1_000;

/// The bystander train sharing the fleet archives with the chaos
/// cluster. Its shard is populated before the plan runs and must come
/// out of the run untouched (I8, fleet mode).
const BYSTANDER: TrainId = TrainId(0xB);

/// A small honest chain for the bystander train, genuinely certified by
/// its own (distinct) replica keyset.
fn bystander_chain(pairs: &[KeyPair]) -> Vec<CertifiedSegment> {
    let mut builder = BlockBuilder::new(2);
    let mut base = Block::genesis();
    let mut segments = Vec::new();
    let mut sn = 0u64;
    for _ in 0..2 {
        let mut blocks = Vec::new();
        while blocks.len() < 2 {
            sn += 1;
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: sn % 4,
                    payload: sn.to_le_bytes().to_vec(),
                },
                sn * 100,
            ) {
                blocks.push(block);
            }
        }
        let head = blocks.last().expect("nonempty").clone();
        let checkpoint = Checkpoint {
            sn,
            state_digest: head.hash(),
        };
        let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
        segments.push(CertifiedSegment {
            train: BYSTANDER,
            base_height: base.height(),
            base_hash: base.hash(),
            blocks,
            proof: CheckpointProof {
                checkpoint,
                signatures: pairs
                    .iter()
                    .enumerate()
                    .map(|(id, pair)| (NodeId(id as u64), pair.sign(&message)))
                    .collect(),
            },
        });
        base = head;
    }
    segments
}

/// Classes of invariant violations the harness detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two nodes decided different request digests for one sequence
    /// number (PBFT agreement broken).
    DecideConflict,
    /// Two nodes created different blocks at one height (fork).
    BlockFork,
    /// A node's resident chain failed hash-link/height/sn verification.
    ChainInvalid,
    /// A node not configured as Byzantine emitted two different
    /// preprepares for one `(view, sn)` slot — the tripwire for the
    /// injected `mutation-hooks` equivocation bug.
    Equivocation,
    /// A data center's archive failed verification or disagreed with
    /// the blocks the cluster created.
    ExportMismatch,
    /// The juridical archive refused a certified segment, archived a
    /// block the cluster never decided, or emitted an audit bundle that
    /// failed offline verification (I8).
    ArchiveAudit,
    /// An untouched correct node failed to decide a planned operation by
    /// quiescence, or the run never quiesced.
    LivenessLoss,
    /// The view number exceeded the per-plan bound (view-change storm).
    ViewBound,
}

impl ViolationKind {
    /// Stable string form, used in repro files.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::DecideConflict => "decide-conflict",
            ViolationKind::BlockFork => "block-fork",
            ViolationKind::ChainInvalid => "chain-invalid",
            ViolationKind::Equivocation => "equivocation",
            ViolationKind::ExportMismatch => "export-mismatch",
            ViolationKind::ArchiveAudit => "archive-audit",
            ViolationKind::LivenessLoss => "liveness-loss",
            ViolationKind::ViewBound => "view-bound",
        }
    }

    /// Parses the string form written by [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "decide-conflict" => ViolationKind::DecideConflict,
            "block-fork" => ViolationKind::BlockFork,
            "chain-invalid" => ViolationKind::ChainInvalid,
            "equivocation" => ViolationKind::Equivocation,
            "export-mismatch" => ViolationKind::ExportMismatch,
            "archive-audit" => ViolationKind::ArchiveAudit,
            "liveness-loss" => ViolationKind::LivenessLoss,
            "view-bound" => ViolationKind::ViewBound,
            _ => return None,
        })
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What class of invariant broke.
    pub kind: ViolationKind,
    /// Human-readable specifics.
    pub detail: String,
    /// Simulated time of detection (ms).
    pub at_ms: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @ {}ms] {}", self.kind, self.at_ms, self.detail)
    }
}

/// The result of executing a plan.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The first violation, if any.
    pub violation: Option<Violation>,
    /// Per-node decided `(sn, payload digest)` logs, in decide order —
    /// also the determinism witness (two runs of one plan must match).
    pub decided: Vec<Vec<(u64, Digest)>>,
    /// Highest view observed on any node.
    pub max_view: u64,
    /// Blocks created across all nodes (counting re-creations).
    pub blocks_created: u64,
    /// Blocks adopted into data-center archives.
    pub exported_blocks: u64,
    /// Certified segments ingested into the juridical archives (I8).
    pub archived_segments: u64,
    /// State transfers requested by lagging nodes.
    pub state_transfers: u64,
    /// Point-to-point messages delivered.
    pub delivered_messages: u64,
    /// `false` if the run was cut off at the quiescence deadline with
    /// events still pending. Not a violation by itself: a single stalled
    /// replica legitimately escalates view changes into a quiet network
    /// forever (nobody joins, so the cluster view never moves) — actual
    /// liveness loss shows up as undecided operations or a blown view
    /// bound.
    pub quiesced: bool,
    /// Per-node flight-recorder dumps (JSONL, virtual-time stamped —
    /// byte-identical across replays of one plan). On a violation, every
    /// node's trace ends with a `mark` record carrying the violation,
    /// so the tail shows what each replica did right before the failure.
    pub traces: Vec<String>,
    /// When the violation names a consensus sequence number (decide
    /// conflict, equivocation), the assembled cross-node span tree of
    /// every trace id seen at that sn — written next to the flight
    /// recorder dump so the post-mortem shows the full causal lifecycle
    /// (including the Byzantine sender's own spans). Empty otherwise.
    pub violation_span_trees: String,
}

// ---------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Work {
    /// A network frame addressed to this node.
    Message(Frame<NodeMessage>),
    /// A timer wakeup `(id, generation)`.
    Timer(TimerId, u64),
}

#[derive(Debug)]
enum EventKind {
    /// Planned operation `ops[i]` hits every live node's bus input.
    Op(usize),
    /// Deliver `work` to one node.
    Deliver { node: usize, work: Work },
    /// `crashes[i]` takes its node down.
    Crash(usize),
    /// `crashes[i]`'s node restarts from (damaged) durable state.
    Recover(usize),
    /// `exports[i]` starts an export round.
    Export(usize),
}

struct Event {
    at_ns: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at_ns == other.at_ns && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    /// Reversed so the `BinaryHeap` max-heap pops the earliest event;
    /// `seq` breaks ties deterministically (FIFO at equal times).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at_ns.cmp(&self.at_ns).then(other.seq.cmp(&self.seq))
    }
}

// ---------------------------------------------------------------------
// World (everything the host may touch while a driver is borrowed)
// ---------------------------------------------------------------------

struct World {
    plan: ChaosPlan,
    crashed: Vec<bool>,
    /// Nodes with a configured Byzantine wrapper, exempt from the
    /// honest-equivocation tripwire (their lies are planned).
    byz: Vec<bool>,
    events: BinaryHeap<Event>,
    seq: u64,
    now_ns: u64,
    net_rng: StdRng,
    // Invariant state.
    /// I1: global sequence number → decided payload digest.
    decided_sn: HashMap<u64, Digest>,
    /// I2: global block height → block hash.
    block_at: HashMap<u64, Digest>,
    /// I4: `(node, view, sn)` → proposed batch digest.
    preprepares: HashMap<(usize, u64, u64), Digest>,
    /// Per-node set of decided payload digests (liveness check).
    decided_by: Vec<HashSet<Digest>>,
    /// Per-node decided `(sn, digest)` log (determinism witness).
    decided_log: Vec<Vec<(u64, Digest)>>,
    max_view: u64,
    blocks_created: u64,
    state_transfers: u64,
    delivered: u64,
    /// Nodes that appended a block during the current dispatch; the
    /// executor notifies their export handler once the driver borrow
    /// ends.
    pending_appended: Vec<usize>,
    /// Nodes that requested a state transfer (fell behind a stable
    /// checkpoint); the executor services them once the driver borrow
    /// ends.
    pending_transfers: Vec<usize>,
    violation: Option<Violation>,
    /// The consensus sequence number the first violation names, when it
    /// names one — the lookup key for the span-tree dump.
    violation_sn: Option<u64>,
}

impl World {
    fn fail(&mut self, kind: ViolationKind, detail: String) {
        self.fail_at_sn(kind, detail, None);
    }

    /// Like [`fail`](Self::fail), but records the sequence number the
    /// violation is about so the outcome can dump that sn's span trees.
    fn fail_at_sn(&mut self, kind: ViolationKind, detail: String, sn: Option<u64>) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                kind,
                detail,
                at_ms: self.now_ns / NS_PER_MS,
            });
            self.violation_sn = sn;
        }
    }

    fn schedule(&mut self, at_ns: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event { at_ns, seq, kind });
    }

    /// `true` if the partition separates `a` from `b` at time `at_ns`.
    fn partitioned(&self, a: usize, b: usize, at_ns: u64) -> bool {
        match &self.plan.partition {
            Some(p) => {
                let active = at_ns >= p.start_ms * NS_PER_MS && at_ns < p.heal_ms * NS_PER_MS;
                active && (p.island.contains(&a) != p.island.contains(&b))
            }
            None => false,
        }
    }

    /// Queues delivery of `frame` from `src` to `dst` under the network
    /// model: seeded latency jitter, occasional retransmit delay, and
    /// occasional duplication. Messages across an active partition are
    /// dropped at send time (the link is down; by the time TCP
    /// reconnects after healing, the protocol state has moved on).
    fn unicast(&mut self, src: usize, dst: usize, frame: Frame<NodeMessage>) {
        if self.partitioned(src, dst, self.now_ns) {
            return;
        }
        if self.prepare_lost(src, &frame) {
            return;
        }
        let net = self.plan.net.clone();
        let jitter = self
            .net_rng
            .random_range(net.min_latency_us..=net.max_latency_us)
            * NS_PER_US;
        let mut delay = jitter;
        if net.retransmit_probability > 0.0 && self.net_rng.random_bool(net.retransmit_probability)
        {
            delay += net.retransmit_delay_ms * NS_PER_MS;
        }
        let duplicate =
            net.duplicate_probability > 0.0 && self.net_rng.random_bool(net.duplicate_probability);
        let at_ns = self.now_ns + delay;
        self.schedule(
            at_ns,
            EventKind::Deliver {
                node: dst,
                work: Work::Message(frame.clone()),
            },
        );
        if duplicate {
            self.schedule(
                at_ns + NS_PER_MS,
                EventKind::Deliver {
                    node: dst,
                    work: Work::Message(frame),
                },
            );
        }
    }

    /// `true` if `frame` is a `Prepare` sent by the planned prepare-loss
    /// node inside its loss window — the link eats it.
    fn prepare_lost(&self, src: usize, frame: &Frame<NodeMessage>) -> bool {
        let Some(pl) = &self.plan.prepare_loss else {
            return false;
        };
        if pl.node != src
            || self.now_ns < pl.start_ms * NS_PER_MS
            || self.now_ns >= pl.end_ms * NS_PER_MS
        {
            return false;
        }
        matches!(
            frame.message(),
            NodeMessage::Consensus(signed) if matches!(signed.message, Message::Prepare(_))
        )
    }

    /// I4: an honest node must never emit two different preprepares for
    /// one `(view, sn)` slot — including batches differing in a single
    /// request, which the batch digest binds. Observing *outbound*
    /// frames catches an equivocating sender directly, before any victim
    /// even processes the conflicting proposal.
    fn observe_outbound(&mut self, src: usize, frame: &Frame<NodeMessage>) {
        if self.byz[src] {
            return;
        }
        let NodeMessage::Consensus(signed) = frame.message() else {
            return;
        };
        if signed.from != NodeId(src as u64) {
            return;
        }
        let Message::PrePrepare(pp) = &signed.message else {
            return;
        };
        let digest = pp.batch.digest();
        match self.preprepares.insert((src, pp.view, pp.sn), digest) {
            Some(previous) if previous != digest => {
                let sn = pp.sn;
                self.fail_at_sn(
                    ViolationKind::Equivocation,
                    format!(
                        "node {src} proposed two batches for (view {}, sn {sn}): {previous} then {digest}",
                        pp.view
                    ),
                    Some(sn),
                );
            }
            _ => {}
        }
    }

    fn on_node_event(&mut self, node: usize, event: NodeEvent) {
        match event {
            NodeEvent::Logged { sn, payload, .. } => {
                let digest = Digest::of(&payload);
                match self.decided_sn.get(&sn) {
                    Some(&previous) if previous != digest => {
                        self.fail_at_sn(
                            ViolationKind::DecideConflict,
                            format!(
                                "sn {sn}: node {node} decided {digest}, another node decided {previous}"
                            ),
                            Some(sn),
                        );
                    }
                    Some(_) => {}
                    None => {
                        self.decided_sn.insert(sn, digest);
                    }
                }
                self.decided_by[node].insert(digest);
                self.decided_log[node].push((sn, digest));
            }
            NodeEvent::BlockCreated { block } => {
                let height = block.height();
                let hash = block.hash();
                match self.block_at.get(&height) {
                    Some(&previous) if previous != hash => {
                        self.fail(
                            ViolationKind::BlockFork,
                            format!(
                                "height {height}: node {node} built {hash}, another node built {previous}"
                            ),
                        );
                    }
                    Some(_) => {}
                    None => {
                        self.block_at.insert(height, hash);
                    }
                }
                self.blocks_created += 1;
                self.pending_appended.push(node);
            }
            NodeEvent::NewPrimary { view, .. } => {
                self.max_view = self.max_view.max(view);
            }
            NodeEvent::StateTransferNeeded { .. } => {
                self.state_transfers += 1;
                self.pending_transfers.push(node);
            }
            NodeEvent::CheckpointStable { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------
// Host
// ---------------------------------------------------------------------

struct ChaosHost<'a> {
    world: &'a mut World,
    node: usize,
}

impl Host<TrainMachine<ByzNode>> for ChaosHost<'_> {
    fn send(&mut self, to: NodeId, frame: &Frame<NodeMessage>) {
        self.world.observe_outbound(self.node, frame);
        let dst = to.0 as usize;
        if dst != self.node && dst < self.world.plan.n_nodes {
            self.world.unicast(self.node, dst, frame.clone());
        }
    }

    fn broadcast(&mut self, frame: &Frame<NodeMessage>) {
        self.world.observe_outbound(self.node, frame);
        for dst in 0..self.world.plan.n_nodes {
            if dst != self.node {
                self.world.unicast(self.node, dst, frame.clone());
            }
        }
    }

    fn set_timer(&mut self, id: TimerId, gen: u64, duration_ms: u64) {
        let at_ns = self.world.now_ns + duration_ms * NS_PER_MS;
        let node = self.node;
        self.world.schedule(
            at_ns,
            EventKind::Deliver {
                node,
                work: Work::Timer(id, gen),
            },
        );
    }

    /// Queued wakeups cannot be unscheduled; the driver's generation
    /// check drops them at fire time.
    fn cancel_timer(&mut self, _id: TimerId) {}

    fn output(&mut self, event: NodeEvent) {
        self.world.on_node_event(self.node, event);
    }
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

struct Chaos {
    drivers: Vec<Driver<TrainMachine<ByzNode>>>,
    /// Per-node flight recorders sharing one registry; the trace clock
    /// follows virtual time, so dumps are deterministic per plan.
    telemetry: Vec<Telemetry>,
    /// The cluster-shared causal-span store all telemetry handles feed;
    /// violation post-mortems assemble cross-node span trees from it.
    traces: Arc<TraceStore>,
    world: World,
    dcs: Vec<DataCenter>,
    /// One in-memory fleet archive per data center: the chaos cluster's
    /// shard (the default train) is fed from the certified segments the
    /// export protocol finalizes (I8), next to a pre-populated bystander
    /// train's shard that no amount of chaos may touch (I8, fleet mode).
    archives: Vec<FleetArchive>,
    /// The bystander train's replica keys and pre-chaos shard state:
    /// head `(height, hash)` and cross-indexed request count.
    bystander_keystore: Keystore,
    bystander_head: (u64, Digest),
    bystander_requests: usize,
    export_replicas: Vec<ExportReplica>,
    exported_blocks: u64,
    archived_segments: u64,
    // Materials needed to rebuild a node on recovery.
    config: NodeConfig,
    nsdb: Nsdb,
    pairs: Vec<KeyPair>,
    keystore: Keystore,
}

/// Executes `plan` to quiescence (or first violation) and reports.
pub fn execute(plan: &ChaosPlan) -> ChaosOutcome {
    Chaos::new(plan.clone()).run()
}

impl Chaos {
    fn new(plan: ChaosPlan) -> Self {
        let n = plan.n_nodes;
        let (pairs, keystore) =
            Keystore::generate(n, plan.seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
        let config = NodeConfig {
            train: TrainId::DEFAULT,
            pbft: Config::new(n)
                .expect("plan sizes are valid")
                .with_max_batch_size(plan.max_batch_size)
                .with_batch_delay(plan.batch_delay_ms)
                .with_auth_mode(plan.auth_mode)
                .with_comm_mode(plan.comm_mode),
            block_size: plan.block_size,
            soft_timeout_ms: 100,
            hard_timeout_ms: 100,
            view_change_timeout_ms: 300,
            open_request_limit: 256,
            dedup_window_checkpoints: 8,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        };
        let nsdb = Nsdb::new();

        let registry = Arc::new(Registry::new());
        let traces = Arc::new(TraceStore::new());
        let telemetry: Vec<Telemetry> = (0..n)
            .map(|i| {
                Telemetry::new_with_store(
                    i as u64,
                    Arc::clone(&registry),
                    config.trace_capacity,
                    Some(Arc::clone(&traces)),
                )
            })
            .collect();
        let mut drivers: Vec<Driver<TrainMachine<ByzNode>>> = (0..n)
            .map(|i| {
                let behavior = plan
                    .byzantine
                    .iter()
                    .find(|b| b.node == i)
                    .map(|b| b.behavior);
                let node = ZugchainNode::new(
                    i as u64,
                    config.clone(),
                    nsdb.clone(),
                    pairs[i].clone(),
                    keystore.clone(),
                );
                let mut byz = ByzNode::new(node, behavior, pairs[i].clone(), n);
                byz.set_telemetry(&telemetry[i]);
                Driver::with_observer(
                    TrainMachine(byz),
                    Box::new(NodeObserver::new(telemetry[i].clone())),
                )
            })
            .collect();
        if plan.mutation {
            drivers[0]
                .machine_mut()
                .0
                .inner_mut()
                .enable_equivocation_bug();
        }

        let quorum = 2 * plan.f() + 1;
        let (dc_pairs, dc_keystore) = Keystore::generate(2, plan.seed ^ 0xDC00_DC00);
        let dcs = (0..2u64)
            .map(|i| {
                DataCenter::new(
                    DcConfig {
                        id: DcId(i),
                        train: TrainId::DEFAULT,
                        n_replicas: n,
                        replica_quorum: quorum,
                        peers: vec![DcId(1 - i)],
                    },
                    dc_pairs[i as usize].clone(),
                    keystore.clone(),
                    quorum,
                )
            })
            .collect();
        // Fleet archives: the chaos cluster's shard lives next to a
        // bystander train's shard keyed to a different replica set, so
        // every run also witnesses cross-train isolation under faults.
        // Same group size as the chaos cluster, so its checkpoint
        // certificates meet the same quorum.
        let (bystander_pairs, bystander_keystore) = Keystore::generate(n, plan.seed ^ 0xB5A4_B5A4);
        let bystander_segments = bystander_chain(&bystander_pairs);
        let archives: Vec<FleetArchive> = (0..2)
            .map(|_| {
                let fleet = FleetArchive::in_memory(quorum);
                fleet
                    .register_train(TrainId::DEFAULT, keystore.clone())
                    .expect("fresh fleet");
                fleet
                    .register_train(BYSTANDER, bystander_keystore.clone())
                    .expect("fresh fleet");
                for certified in &bystander_segments {
                    fleet
                        .ingest(certified)
                        .expect("honest bystander chain ingests");
                }
                fleet
            })
            .collect();
        let bystander_head = archives[0].head_of(BYSTANDER).expect("bystander archived");
        let bystander_requests = archives[0]
            .with_shard(BYSTANDER, |shard| shard.request_count())
            .expect("bystander shard exists");
        let export_replicas = (0..n)
            .map(|i| {
                ExportReplica::new(
                    NodeId(i as u64),
                    pairs[i].clone(),
                    dc_keystore.clone(),
                    ReplicaExportConfig::default(),
                )
            })
            .collect();

        let byz = (0..n)
            .map(|i| plan.byzantine.iter().any(|b| b.node == i))
            .collect();
        let mut world = World {
            crashed: vec![false; n],
            byz,
            events: BinaryHeap::new(),
            seq: 0,
            now_ns: 0,
            net_rng: StdRng::seed_from_u64(plan.seed.rotate_left(17) ^ 0xC4A05),
            decided_sn: HashMap::new(),
            block_at: HashMap::new(),
            preprepares: HashMap::new(),
            decided_by: vec![HashSet::new(); n],
            decided_log: vec![Vec::new(); n],
            max_view: 0,
            blocks_created: 0,
            state_transfers: 0,
            delivered: 0,
            pending_appended: Vec::new(),
            pending_transfers: Vec::new(),
            violation: None,
            violation_sn: None,
            plan,
        };

        for (i, op) in world.plan.ops.clone().iter().enumerate() {
            world.schedule(op.at_ms * NS_PER_MS, EventKind::Op(i));
        }
        for (i, crash) in world.plan.crashes.clone().iter().enumerate() {
            world.schedule(crash.at_ms * NS_PER_MS, EventKind::Crash(i));
            if let Some(recover_at) = crash.recover_at_ms {
                world.schedule(recover_at * NS_PER_MS, EventKind::Recover(i));
            }
        }
        for (i, export) in world.plan.exports.clone().iter().enumerate() {
            world.schedule(export.at_ms * NS_PER_MS, EventKind::Export(i));
        }

        Self {
            drivers,
            telemetry,
            traces,
            world,
            dcs,
            archives,
            bystander_keystore,
            bystander_head,
            bystander_requests,
            export_replicas,
            exported_blocks: 0,
            archived_segments: 0,
            config,
            nsdb,
            pairs,
            keystore,
        }
    }

    fn run(mut self) -> ChaosOutcome {
        // Quiescence cutoff: generously past the last planned event.
        // Residual traffic beyond it (a stalled replica's unjoined
        // view-change escalations) is tolerated — the liveness checks
        // below decide whether anything real was lost.
        let deadline_ns = (self.world.plan.last_event_ms() + 30_000) * NS_PER_MS;
        // Backstop against genuine event explosions (broadcast
        // amplification loops): far above any legitimate run, which
        // stays in the tens of thousands of events.
        const EVENT_CAP: u64 = 2_000_000;
        let mut processed: u64 = 0;
        let mut quiesced = true;
        while let Some(event) = self.world.events.pop() {
            if self.world.violation.is_some() {
                break;
            }
            if event.at_ns > deadline_ns {
                quiesced = false;
                break;
            }
            processed += 1;
            if processed > EVENT_CAP {
                let detail = self.progress_report();
                self.world.fail(
                    ViolationKind::LivenessLoss,
                    format!(
                        "event explosion: {EVENT_CAP}+ events before the quiescence deadline; {detail}"
                    ),
                );
                break;
            }
            self.world.now_ns = event.at_ns;
            // Trace clock follows virtual time (monotonic fetch_max, so
            // the heap's equal-time reordering can never rewind it).
            let now_ms = event.at_ns / NS_PER_MS;
            for telemetry in &self.telemetry {
                telemetry.set_time_ms(now_ms);
            }
            match event.kind {
                EventKind::Op(i) => self.run_op(i),
                EventKind::Deliver { node, work } => self.deliver(node, work),
                EventKind::Crash(i) => {
                    let node = self.world.plan.crashes[i].node;
                    self.world.crashed[node] = true;
                    self.drivers[node].clear_timers();
                    // A crash loses the volatile proposal log, so the
                    // recovered node may honestly propose a different
                    // request at a slot it proposed before the crash —
                    // only a *within-lifetime* double proposal is
                    // equivocation (I4).
                    self.world.preprepares.retain(|key, _| key.0 != node);
                }
                EventKind::Recover(i) => self.recover(i),
                EventKind::Export(i) => self.run_export(i),
            }
            self.flush_appended();
            self.flush_transfers();
        }
        if self.world.violation.is_none() {
            self.check_quiescence();
        }
        // Stamp the violation into every node's trace so a dumped tail
        // is self-describing: the last record names what broke and when.
        if let Some(violation) = &self.world.violation {
            let label = format!("violation: {violation}");
            for telemetry in &self.telemetry {
                telemetry.record_with(|| TraceEvent::Mark {
                    label: label.clone(),
                });
            }
        }
        // When the violation names an sn, assemble every trace seen at
        // that slot into span trees — more than one tree at one sn is
        // itself the equivocation made visible, and each tree shows the
        // (Byzantine) sender's own record/submit/batch_flush spans.
        let violation_span_trees = self
            .world
            .violation_sn
            .map(|sn| {
                self.traces
                    .traces_for_sn(sn)
                    .into_iter()
                    .map(|id| self.traces.render_tree(id))
                    .collect::<Vec<_>>()
                    .join("")
            })
            .unwrap_or_default();
        ChaosOutcome {
            violation: self.world.violation,
            decided: self.world.decided_log,
            max_view: self.world.max_view,
            blocks_created: self.world.blocks_created,
            exported_blocks: self.exported_blocks,
            archived_segments: self.archived_segments,
            state_transfers: self.world.state_transfers,
            delivered_messages: self.world.delivered,
            quiesced,
            traces: self.telemetry.iter().map(Telemetry::dump_jsonl).collect(),
            violation_span_trees,
        }
    }

    /// One-line per-node progress summary for liveness diagnostics.
    fn progress_report(&self) -> String {
        let nodes: Vec<String> = self
            .drivers
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let n = &d.machine().0;
                let (view, low, decided, next, buffered) = n.progress_snapshot();
                format!(
                    "node {i}{}: view {view} low {low} decided {decided} next {next} buffered {buffered} open {}",
                    if self.world.crashed[i] { " (down)" } else { "" },
                    n.open_requests()
                )
            })
            .collect();
        nodes.join("; ")
    }

    fn run_op(&mut self, index: usize) {
        let payload = self.world.plan.op_payload(index);
        let time_ms = self.world.now_ns / NS_PER_MS;
        for node in 0..self.world.plan.n_nodes {
            if self.world.crashed[node] {
                continue;
            }
            let mut host = ChaosHost {
                world: &mut self.world,
                node,
            };
            self.drivers[node].on_input(
                NodeInput::RawPayload {
                    payload: payload.clone(),
                    time_ms,
                },
                &mut host,
            );
            // A bus fabricator rides every op with junk no other node saw.
            if self.drivers[node].machine().0.behavior() == Some(ByzBehavior::FabricateBus) {
                let mut junk =
                    format!("CHAOSJUNK:{}:{}:{}", self.world.plan.seed, node, index).into_bytes();
                junk.resize(48, 0x5A);
                let mut host = ChaosHost {
                    world: &mut self.world,
                    node,
                };
                self.drivers[node].on_input(
                    NodeInput::RawPayload {
                        payload: junk,
                        time_ms,
                    },
                    &mut host,
                );
            }
        }
    }

    fn deliver(&mut self, node: usize, work: Work) {
        if self.world.crashed[node] {
            return;
        }
        let mut host = ChaosHost {
            world: &mut self.world,
            node,
        };
        match work {
            Work::Message(frame) => {
                host.world.delivered += 1;
                self.drivers[node].on_input(NodeInput::Message(frame.to_message()), &mut host);
            }
            Work::Timer(id, gen) => {
                self.drivers[node].on_timer_fired(id, gen, &mut host);
            }
        }
    }

    /// I3, checked whenever a node's chain changed: the resident suffix
    /// must verify against its base.
    fn check_chain(&mut self, node: usize) {
        let store = self.drivers[node].machine().0.chain();
        if store.blocks().is_empty() {
            return;
        }
        let (_, base_hash) = store.base();
        if let Err(violation) = verify_chain(store.blocks(), Some(base_hash)) {
            self.world.fail(
                ViolationKind::ChainInvalid,
                format!("node {node} chain invalid: {violation:?}"),
            );
        }
    }

    /// Post-dispatch work that needs the driver borrow released: chain
    /// verification and export-replica notification for nodes that just
    /// appended a block.
    fn flush_appended(&mut self) {
        while let Some(node) = self.world.pending_appended.pop() {
            self.check_chain(node);
            let messages = self.export_replicas[node]
                .on_block_appended(self.drivers[node].machine_mut().0.chain_mut());
            if !messages.is_empty() {
                let mut queue = VecDeque::new();
                for message in messages {
                    self.route_replica_reply(0, node, message, &mut queue);
                }
                self.pump(queue);
            }
        }
    }

    // -- crash recovery ------------------------------------------------

    /// Restarts `crashes[i]`'s node from simulated durable state: its
    /// chain with `truncate_blocks` tail blocks torn off, and its stable
    /// checkpoint proofs (all of them lost when `drop_proofs`). Recovery
    /// truncates to the newest proof-covered prefix — exactly what a
    /// real restart does after `DiskStore::recover_chain` — and falls
    /// back to a from-genesis restart when nothing verifiable survives.
    fn recover(&mut self, i: usize) {
        let crash = self.world.plan.crashes[i].clone();
        let node = crash.node;
        if !self.world.crashed[node] {
            return;
        }
        let behavior = self.drivers[node].machine().0.behavior();
        let (surviving_blocks, base, proofs) = {
            let old = self.drivers[node].machine().0.inner();
            let store = old.chain();
            let keep = store.blocks().len().saturating_sub(crash.truncate_blocks);
            let proofs = if crash.drop_proofs {
                Vec::new()
            } else {
                old.stable_proofs().to_vec()
            };
            (
                store.blocks()[..keep].to_vec(),
                store.pruned_base().cloned(),
                proofs,
            )
        };

        let rebuilt = rebuild_recovered_state(&surviving_blocks, base, &proofs);
        let inner = match rebuilt {
            Some((store, proofs)) => ZugchainNode::recover(
                node as u64,
                self.config.clone(),
                self.nsdb.clone(),
                self.pairs[node].clone(),
                self.keystore.clone(),
                store,
                proofs,
            ),
            // Nothing verifiable survived the disk damage: restart from
            // genesis and catch up through the protocol.
            None => ZugchainNode::new(
                node as u64,
                self.config.clone(),
                self.nsdb.clone(),
                self.pairs[node].clone(),
                self.keystore.clone(),
            ),
        };
        self.replace_node(node, inner, behavior);
        self.world.crashed[node] = false;
        self.check_chain(node);
    }

    /// Swaps in a rebuilt inner node, preserving the Byzantine wrapper
    /// and re-arming the injected bug on the mutated node.
    fn replace_node(
        &mut self,
        node: usize,
        mut inner: ZugchainNode,
        behavior: Option<ByzBehavior>,
    ) {
        if self.world.plan.mutation && node == 0 {
            inner.enable_equivocation_bug();
        }
        let mut byz = ByzNode::new(
            inner,
            behavior,
            self.pairs[node].clone(),
            self.world.plan.n_nodes,
        );
        // The recorder handle survives the restart: the rebuilt node
        // appends to the same ring buffer, so one trace spans crashes.
        byz.set_telemetry(&self.telemetry[node]);
        self.drivers[node] = Driver::with_observer(
            TrainMachine(byz),
            Box::new(NodeObserver::new(self.telemetry[node].clone())),
        );
    }

    // -- state transfer ------------------------------------------------

    /// Services pending state-transfer requests. A node that fell behind
    /// a stable cluster checkpoint (its replica jumped its watermark past
    /// blocks it never built — e.g. after a from-genesis restart) must
    /// not keep bundling decided requests onto its stale chain, or it
    /// would fabricate blocks at heights the cluster already filled. The
    /// runtime answers `StateTransferNeeded` by installing a donor's
    /// proof-covered chain prefix, the service the paper assumes for
    /// recovery scenario (ii).
    fn flush_transfers(&mut self) {
        while let Some(node) = self.world.pending_transfers.pop() {
            if !self.world.crashed[node] {
                self.state_transfer(node);
            }
        }
    }

    fn state_transfer(&mut self, node: usize) {
        let my_height = self.drivers[node].machine().0.chain().height();
        let my_proofs = self.drivers[node].machine().0.stable_proofs().to_vec();
        // Deterministic donor: the live peer whose *proof-covered* chain
        // prefix is tallest (lowest id breaks ties) — only what a proof
        // vouches for can be installed on the lagging node. The
        // requester's own proofs are tried first: right after a watermark
        // jump it holds the quorum proof for the state it jumped to,
        // while the donors' local proof stabilization may still lag the
        // blocks they built.
        let mut best: Option<(u64, ChainStore, Vec<CheckpointProof>)> = None;
        for peer in 0..self.world.plan.n_nodes {
            if peer == node || self.world.crashed[peer] {
                continue;
            }
            let donor = self.drivers[peer].machine().0.inner();
            let blocks = donor.chain().blocks();
            let base = donor.chain().pruned_base().cloned();
            let rebuilt = [&my_proofs[..], donor.stable_proofs()]
                .into_iter()
                .filter_map(|proofs| rebuild_recovered_state(blocks, base.clone(), proofs))
                .max_by_key(|(store, _)| store.height());
            if let Some((store, proofs)) = rebuilt {
                let height = store.height();
                if height > my_height && best.as_ref().map_or(true, |(h, _, _)| height > *h) {
                    best = Some((height, store, proofs));
                }
            }
        }
        let Some((_, store, proofs)) = best else {
            return;
        };
        // The node skipped the Decide up-calls for everything at or
        // below the installed checkpoint when its watermark jumped;
        // the transfer delivers their effects, so credit them for the
        // liveness check (they are quorum-certified by the proof).
        let covered_sn = proofs.last().map_or(0, |p| p.checkpoint.sn);
        let credited: Vec<Digest> = self
            .world
            .decided_sn
            .iter()
            .filter(|(sn, _)| **sn <= covered_sn)
            .map(|(_, digest)| *digest)
            .collect();
        self.world.decided_by[node].extend(credited);
        // Install without rebuilding the node: the replica already
        // advanced past the gap (and kept its view) when it adopted the
        // stable checkpoint; only the logging layer lags. Rebuilding
        // would reset the replica to view 0 and strand it.
        self.drivers[node]
            .machine_mut()
            .0
            .inner_mut()
            .install_transfer(store, proofs);
        self.check_chain(node);
    }

    // -- export --------------------------------------------------------

    fn run_export(&mut self, i: usize) {
        let export = self.world.plan.exports[i].clone();
        let effects = self.dcs[export.dc].begin_export(NodeId(export.blocks_from as u64));
        let queue = effects
            .into_iter()
            .map(|e| (export.dc, e))
            .collect::<VecDeque<_>>();
        self.pump(queue);
    }

    /// Drains data-center effects synchronously: the ground-side
    /// protocol runs over a separate (assumed reliable) link and its
    /// interleaving with train-side consensus is not what this harness
    /// explores — crashes still matter, because a crashed replica
    /// silently ignores export traffic.
    fn pump(&mut self, mut queue: VecDeque<(usize, DcEffect)>) {
        let n = self.world.plan.n_nodes;
        while let Some((dc, effect)) = queue.pop_front() {
            match effect {
                Effect::Broadcast { message } => {
                    for node in 0..n {
                        if self.world.crashed[node] {
                            continue;
                        }
                        let replies = self.handle_export_at(node, message.clone());
                        for reply in replies {
                            self.route_replica_reply(dc, node, reply, &mut queue);
                        }
                    }
                }
                Effect::Send {
                    to: DcAddr::Replica(id),
                    message,
                } => {
                    let node = id.0 as usize;
                    if self.world.crashed[node] {
                        continue;
                    }
                    let replies = self.handle_export_at(node, message);
                    for reply in replies {
                        self.route_replica_reply(dc, node, reply, &mut queue);
                    }
                }
                Effect::Send {
                    to: DcAddr::DataCenter(peer),
                    message,
                } => {
                    let peer = peer.0 as usize;
                    let effects = self.dcs[peer].on_dc_sync(message);
                    queue.extend(effects.into_iter().map(|e| (peer, e)));
                }
                Effect::SetTimer { .. } | Effect::CancelTimer { .. } => {}
                Effect::Output(outcome) => {
                    self.exported_blocks += outcome.exported_blocks as u64;
                }
            }
        }
        self.check_archives();
        self.ingest_archives();
    }

    /// Runs one export message through a node's replica-side handler.
    fn handle_export_at(&mut self, node: usize, message: ExportMessage) -> Vec<ExportMessage> {
        let proofs = self.drivers[node].machine().0.stable_proofs().to_vec();
        let replies = self.export_replicas[node].handle(
            message,
            self.drivers[node].machine_mut().0.chain_mut(),
            &proofs,
        );
        // The handler may have pruned the chain; re-verify what is left.
        self.check_chain(node);
        replies
    }

    /// Replica replies go back to the requesting data center — except
    /// acks, which every data center counts (step ⑦).
    fn route_replica_reply(
        &mut self,
        dc: usize,
        node: usize,
        reply: ExportMessage,
        queue: &mut VecDeque<(usize, DcEffect)>,
    ) {
        match reply {
            ExportMessage::Ack(_) => {
                for target in 0..self.dcs.len() {
                    let effects =
                        self.dcs[target].on_replica_message(NodeId(node as u64), reply.clone());
                    queue.extend(effects.into_iter().map(|e| (target, e)));
                }
            }
            other => {
                let effects = self.dcs[dc].on_replica_message(NodeId(node as u64), other);
                queue.extend(effects.into_iter().map(|e| (dc, e)));
            }
        }
    }

    /// I5: every archive must verify as a hash chain from genesis and
    /// agree with the blocks the cluster actually created.
    fn check_archives(&mut self) {
        for (i, dc) in self.dcs.iter().enumerate() {
            if !dc.verify_archive() {
                self.world.fail(
                    ViolationKind::ExportMismatch,
                    format!("data center {i} archive failed verification"),
                );
                return;
            }
            for block in dc.archive().iter().skip(1) {
                if let Some(&expected) = self.world.block_at.get(&block.height()) {
                    if expected != block.hash() {
                        self.world.fail(
                            ViolationKind::ExportMismatch,
                            format!(
                                "data center {i} archived {} at height {} but the cluster built {expected}",
                                block.hash(),
                                block.height()
                            ),
                        );
                        return;
                    }
                }
            }
        }
    }

    /// I8: the juridical archive path. Every certified segment a data
    /// center finalizes must (a) pass the archive's full re-verification
    /// (chain linkage, pruned-base continuity, 2f+1 certificate), (b)
    /// contain only blocks the cluster actually decided — i.e. the
    /// archive holds a prefix of a correct node's chain — and (c) yield
    /// audit bundles that verify *offline*, after a wire roundtrip,
    /// against the replica public keys alone. In fleet mode, (d): the
    /// chaos cluster's segments land only in its own shard — the
    /// bystander train's shard (different keyset, pre-populated chain)
    /// stays byte-for-byte untouched no matter what equivocation,
    /// crashes, or data-center faults the plan injects.
    fn ingest_archives(&mut self) {
        let quorum = 2 * self.world.plan.f() + 1;
        for dc in 0..self.dcs.len() {
            for certified in self.dcs[dc].drain_certified_segments() {
                if certified.train != TrainId::DEFAULT {
                    self.world.fail(
                        ViolationKind::ArchiveAudit,
                        format!(
                            "data center {dc} certified a segment for train {}, not its own",
                            certified.train
                        ),
                    );
                    return;
                }
                if let Err(e) = self.archives[dc].ingest(&certified) {
                    self.world.fail(
                        ViolationKind::ArchiveAudit,
                        format!("data center {dc} archive refused a certified segment: {e}"),
                    );
                    return;
                }
                self.archived_segments += 1;
                for block in &certified.blocks {
                    if let Some(&expected) = self.world.block_at.get(&block.height()) {
                        if expected != block.hash() {
                            self.world.fail(
                                ViolationKind::ArchiveAudit,
                                format!(
                                    "data center {dc} archived {} at height {} but the cluster built {expected}",
                                    block.hash(),
                                    block.height()
                                ),
                            );
                            return;
                        }
                    }
                }
                // Sample the segment's endpoints: the first block has the
                // longest link-header run, the head has an empty one.
                let sample = [
                    certified.blocks.first().map(|b| b.height()),
                    certified.blocks.last().map(|b| b.height()),
                ];
                for height in sample.into_iter().flatten() {
                    let Some(bundle) = self.archives[dc].audit_bundle(TrainId::DEFAULT, height)
                    else {
                        self.world.fail(
                            ViolationKind::ArchiveAudit,
                            format!(
                                "data center {dc} has no audit bundle for archived height {height}"
                            ),
                        );
                        return;
                    };
                    let offline = zugchain_wire::from_bytes::<zugchain_archive::AuditBundle>(
                        &zugchain_wire::to_bytes(&bundle),
                    );
                    let verdict = match offline {
                        Ok(bundle) => bundle
                            .verify(&self.keystore, quorum)
                            .map(|_| ())
                            .map_err(|e| e.to_string()),
                        Err(e) => Err(format!("bundle codec roundtrip failed: {e}")),
                    };
                    if let Err(reason) = verdict {
                        self.world.fail(
                            ViolationKind::ArchiveAudit,
                            format!(
                                "data center {dc} audit bundle for height {height} failed offline verification: {reason}"
                            ),
                        );
                        return;
                    }
                }
            }
        }
        self.check_bystander_shards();
    }

    /// I8, fleet mode: the bystander train's shard must still hold
    /// exactly its pre-chaos chain — same head, same request count — and
    /// its head audit bundle must still verify offline against the
    /// bystander keyset alone (and never against the chaos cluster's).
    fn check_bystander_shards(&mut self) {
        let quorum = 2 * self.world.plan.f() + 1;
        for (dc, fleet) in self.archives.iter().enumerate() {
            let head = fleet.head_of(BYSTANDER);
            if head != Some(self.bystander_head) {
                self.world.fail(
                    ViolationKind::ArchiveAudit,
                    format!(
                        "data center {dc} bystander shard head changed under chaos: \
                         {head:?} != {:?}",
                        Some(self.bystander_head)
                    ),
                );
                return;
            }
            let requests = fleet.with_shard(BYSTANDER, |shard| shard.request_count());
            if requests != Some(self.bystander_requests) {
                self.world.fail(
                    ViolationKind::ArchiveAudit,
                    format!(
                        "data center {dc} bystander shard request count changed under \
                         chaos: {requests:?} != {:?}",
                        Some(self.bystander_requests)
                    ),
                );
                return;
            }
            let Some(bundle) = fleet.audit_bundle(BYSTANDER, self.bystander_head.0) else {
                self.world.fail(
                    ViolationKind::ArchiveAudit,
                    format!("data center {dc} lost the bystander head audit bundle"),
                );
                return;
            };
            if let Err(e) = bundle.verify(&self.bystander_keystore, quorum) {
                self.world.fail(
                    ViolationKind::ArchiveAudit,
                    format!("data center {dc} bystander head bundle no longer verifies: {e}"),
                );
                return;
            }
            if bundle.verify(&self.keystore, quorum).is_ok() {
                self.world.fail(
                    ViolationKind::ArchiveAudit,
                    format!(
                        "data center {dc} bystander bundle verifies under the chaos \
                         cluster's keys: keysets are not isolating trains"
                    ),
                );
                return;
            }
        }
    }

    // -- quiescence ----------------------------------------------------

    /// Liveness (I6) and view-bound (I7) checks once the heap drained.
    fn check_quiescence(&mut self) {
        let plan = self.world.plan.clone();
        let touched = plan.touched_nodes();
        for node in 0..plan.n_nodes {
            if self.world.crashed[node] {
                continue;
            }
            self.check_chain(node);
            if self.world.violation.is_some() {
                return;
            }
        }
        // I6, tiered. The strong form — every node decides every op —
        // only holds for fault-free plans: under faults the protocol has
        // no commit retransmission, so a node that misses a decide can
        // stay behind until the next stable checkpoint, and the run may
        // end before one forms (a lone straggler cannot rally an f+1
        // view change either). What must always hold is that each op is
        // decided durably (by at least f+1 nodes, so an honest copy
        // survives any f faults) and by at least one untouched node
        // (no censorship of the correct core).
        let fault_free = plan.crashes.is_empty()
            && plan.byzantine.is_empty()
            && plan.partition.is_none()
            && !plan.mutation;
        for index in 0..plan.ops.len() {
            let digest = Digest::of(&plan.op_payload(index));
            let deciders: Vec<usize> = (0..plan.n_nodes)
                .filter(|&node| self.world.decided_by[node].contains(&digest))
                .collect();
            let untouched_decided = deciders.iter().any(|node| !touched.contains(node));
            let problem = if fault_free && deciders.len() < plan.n_nodes {
                Some("a node in a fault-free run")
            } else if deciders.len() < plan.f() + 1 {
                Some("f+1 nodes (not durable)")
            } else if !untouched_decided {
                Some("any untouched node")
            } else {
                None
            };
            if let Some(problem) = problem {
                let detail = self.progress_report();
                self.world.fail(
                    ViolationKind::LivenessLoss,
                    format!(
                        "op {index} (injected at {}ms) was never decided by {problem}: deciders {deciders:?}; {detail}",
                        plan.ops[index].at_ms
                    ),
                );
                return;
            }
        }
        // Every fault episode may legitimately cost a few views (crash
        // of a primary, partition hiding a primary, Byzantine silence);
        // anything far beyond that is a view-change storm.
        let fault_units = plan.crashes.len()
            + plan.byzantine.len()
            + plan.partition.iter().len()
            + plan.prepare_loss.iter().len()
            + usize::from(plan.mutation);
        let bound = 4 + 4 * plan.n_nodes as u64 * (fault_units as u64 + 1);
        if self.world.max_view > bound {
            self.world.fail(
                ViolationKind::ViewBound,
                format!(
                    "view reached {} (bound {bound} for {fault_units} fault units)",
                    self.world.max_view
                ),
            );
        }
    }
}

/// Finds the newest verifiable prefix of a damaged disk image: the
/// longest chain prefix whose head is covered by a surviving stable
/// checkpoint proof. Returns the rebuilt store plus the proofs up to
/// that head, or `None` if no prefix is proof-covered.
fn rebuild_recovered_state(
    blocks: &[zugchain_blockchain::Block],
    base: Option<zugchain_blockchain::PrunedBase>,
    proofs: &[CheckpointProof],
) -> Option<(ChainStore, Vec<CheckpointProof>)> {
    let base_hash = match &base {
        Some(b) => b.hash,
        None => zugchain_blockchain::Block::genesis().hash(),
    };
    for cut in (0..=blocks.len()).rev() {
        let head_hash = if cut == 0 {
            base_hash
        } else {
            blocks[cut - 1].hash()
        };
        let Some(covered) = proofs
            .iter()
            .rposition(|p| p.checkpoint.state_digest == head_hash)
        else {
            continue;
        };
        let mut store = match &base {
            Some(b) => ChainStore::resume(b.clone()),
            None => ChainStore::new(),
        };
        for block in &blocks[..cut] {
            store
                .append(block.clone())
                .expect("surviving prefix extends its own base");
        }
        return Some((store, proofs[..=covered].to_vec()));
    }
    None
}
