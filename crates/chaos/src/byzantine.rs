//! Byzantine node wrappers.
//!
//! [`ByzNode`] wraps a concrete [`ZugchainNode`] and implements
//! [`TrainNode`] by delegation, intercepting the *effect stream* to
//! realize attacker behaviours. Working at the effect layer keeps the
//! protocol code untouched: a Byzantine node here is a correct node
//! whose network interface lies.

use zugchain::{NodeEffect, NodeMessage, NodeStats, TimerId, TrainNode, ZugchainNode};
use zugchain_blockchain::ChainStore;
use zugchain_crypto::{KeyPair, SessionKeys};
use zugchain_machine::Effect;
use zugchain_mvb::Telegram;
use zugchain_pbft::{
    Auth, CheckpointProof, Message, NodeId, PrePrepare, ProposedBatch, ProposedRequest,
    SignedMessage,
};

use crate::plan::ByzBehavior;

/// A train node with an optional Byzantine filter on its outbound
/// effects. `behavior: None` is a fully honest node.
pub struct ByzNode {
    inner: ZugchainNode,
    behavior: Option<ByzBehavior>,
    /// This node's signing key, needed to re-sign tampered proposals
    /// (an equivocating primary signs both of its proposals correctly —
    /// that is what makes equivocation a protocol violation rather than
    /// a forgery the signature layer would reject).
    key: KeyPair,
    n_nodes: usize,
}

impl std::fmt::Debug for ByzNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzNode")
            .field("id", &self.inner.id())
            .field("behavior", &self.behavior)
            .finish_non_exhaustive()
    }
}

impl ByzNode {
    /// Wraps `inner` with `behavior` (or none, for an honest node).
    pub fn new(
        inner: ZugchainNode,
        behavior: Option<ByzBehavior>,
        key: KeyPair,
        n_nodes: usize,
    ) -> Self {
        Self {
            inner,
            behavior,
            key,
            n_nodes,
        }
    }

    /// The wrapped node.
    pub fn inner(&self) -> &ZugchainNode {
        &self.inner
    }

    /// Mutable access to the wrapped node (mutation hooks, recovery).
    pub fn inner_mut(&mut self) -> &mut ZugchainNode {
        &mut self.inner
    }

    /// The configured behaviour, if any.
    pub fn behavior(&self) -> Option<ByzBehavior> {
        self.behavior
    }

    /// Splits one of this node's own preprepare broadcasts into
    /// per-peer sends, with the highest-id peer receiving `conflicting`
    /// (re-signed) for the same slot.
    fn split_with_conflicting(
        &self,
        signed: &SignedMessage,
        conflicting: PrePrepare,
    ) -> Vec<NodeEffect> {
        let me = self.inner.id();
        let victim = (0..self.n_nodes as u64)
            .map(NodeId)
            .filter(|&peer| peer != me)
            .max()
            .expect("cluster has peers");
        let forged = SignedMessage::sign(me, Message::PrePrepare(conflicting), &self.key);
        (0..self.n_nodes as u64)
            .map(NodeId)
            .filter(|&peer| peer != me)
            .map(|peer| {
                let message = if peer == victim {
                    NodeMessage::Consensus(forged.clone())
                } else {
                    NodeMessage::Consensus(signed.clone())
                };
                Effect::Send { to: peer, message }
            })
            .collect()
    }

    /// A conflicting proposal with the last request's payload tampered —
    /// same batch shape, different content, correctly re-signed.
    fn tampered_payload(preprepare: &PrePrepare) -> PrePrepare {
        let mut requests = preprepare.batch.requests().to_vec();
        requests
            .last_mut()
            .expect("batches are never empty")
            .payload
            .push(0xB7);
        PrePrepare {
            view: preprepare.view,
            sn: preprepare.sn,
            batch: ProposedBatch::new(requests),
        }
    }

    /// A conflicting batch differing in exactly one request: the first
    /// request is swapped for a protocol no-op attributed to this node
    /// (same length, one differing element — the batch-equivocation
    /// attack of the chaos plan).
    fn swapped_request(&self, preprepare: &PrePrepare) -> PrePrepare {
        let mut requests = preprepare.batch.requests().to_vec();
        requests[0] = ProposedRequest::noop(self.inner.id());
        PrePrepare {
            view: preprepare.view,
            sn: preprepare.sn,
            batch: ProposedBatch::new(requests),
        }
    }

    /// Corrupts every inner signature of an outbound vote certificate —
    /// each is replaced with this node's own signature over unrelated
    /// bytes — and re-signs the envelope correctly. Honest receivers
    /// must reject every inner vote: the envelope is not the authority.
    fn forge_cert(&self, signed: SignedMessage) -> SignedMessage {
        let corrupt = |mut cert: zugchain_pbft::VoteCert| {
            for (_, signature) in &mut cert.signatures {
                *signature = self.key.sign(b"forged certificate vote");
            }
            cert
        };
        let message = match signed.message {
            Message::PrepareCert(cert) => Message::PrepareCert(corrupt(cert)),
            Message::CommitCert(cert) => Message::CommitCert(corrupt(cert)),
            other => other,
        };
        SignedMessage::sign(signed.from, message, &self.key)
    }

    /// Re-tags `signed` with session MACs derived from the wrong master
    /// secret and strips the signature — a forgery every honest receiver
    /// must reject, whatever its own auth mode.
    fn forge_mac(&self, signed: SignedMessage) -> SignedMessage {
        let me = self.inner.id();
        let wrong = SessionKeys::from_master(&[0xEE; 32], me.0, 0..self.n_nodes as u64);
        let bytes = signed.message.auth_bytes();
        let tags = wrong
            .peers()
            .filter_map(|peer| wrong.tag_for(peer, &bytes).map(|tag| (NodeId(peer), tag)))
            .collect();
        SignedMessage {
            from: signed.from,
            message: signed.message,
            auth: Auth::Mac { tags, sig: None },
        }
    }
}

impl TrainNode for ByzNode {
    fn id(&self) -> NodeId {
        self.inner.id()
    }
    fn view(&self) -> u64 {
        self.inner.view()
    }
    fn is_primary(&self) -> bool {
        self.inner.is_primary()
    }
    fn on_raw_bus_payload(&mut self, payload: Vec<u8>, time_ms: u64) {
        self.inner.on_raw_bus_payload(payload, time_ms);
    }
    fn on_bus_cycle(&mut self, source: usize, cycle: u64, time_ms: u64, telegrams: &[Telegram]) {
        self.inner.on_bus_cycle(source, cycle, time_ms, telegrams);
    }
    fn on_message(&mut self, message: NodeMessage) {
        self.inner.on_message(message);
    }
    fn on_timer(&mut self, timer: TimerId) {
        self.inner.on_timer(timer);
    }

    fn drain_effects(&mut self) -> Vec<NodeEffect> {
        let effects = self.inner.drain_effects();
        match self.behavior {
            // Honest, and FabricateBus (the fabrication happens on the
            // input side, driven by the executor).
            None | Some(ByzBehavior::FabricateBus) => effects,
            Some(ByzBehavior::Silent) => effects
                .into_iter()
                .filter(|e| !matches!(e, Effect::Send { .. } | Effect::Broadcast { .. }))
                .collect(),
            Some(ByzBehavior::CollectorSilent) => {
                let me = self.inner.id();
                effects
                    .into_iter()
                    .filter(|effect| {
                        let signed = match effect {
                            Effect::Broadcast {
                                message: NodeMessage::Consensus(signed),
                            }
                            | Effect::Send {
                                message: NodeMessage::Consensus(signed),
                                ..
                            } => signed,
                            _ => return true,
                        };
                        signed.from != me
                            || !matches!(
                                signed.message,
                                Message::PrepareCert(_) | Message::CommitCert(_)
                            )
                    })
                    .collect()
            }
            Some(ByzBehavior::ForgeCert) => {
                let me = self.inner.id();
                effects
                    .into_iter()
                    .map(|effect| match effect {
                        Effect::Broadcast {
                            message: NodeMessage::Consensus(signed),
                        } if signed.from == me
                            && matches!(
                                signed.message,
                                Message::PrepareCert(_) | Message::CommitCert(_)
                            ) =>
                        {
                            Effect::Broadcast {
                                message: NodeMessage::Consensus(self.forge_cert(signed)),
                            }
                        }
                        other => other,
                    })
                    .collect()
            }
            Some(ByzBehavior::ForgeMac) => {
                let me = self.inner.id();
                effects
                    .into_iter()
                    .map(|effect| match effect {
                        Effect::Broadcast {
                            message: NodeMessage::Consensus(signed),
                        } if signed.from == me => Effect::Broadcast {
                            message: NodeMessage::Consensus(self.forge_mac(signed)),
                        },
                        Effect::Send {
                            to,
                            message: NodeMessage::Consensus(signed),
                        } if signed.from == me => Effect::Send {
                            to,
                            message: NodeMessage::Consensus(self.forge_mac(signed)),
                        },
                        other => other,
                    })
                    .collect()
            }
            Some(
                behavior @ (ByzBehavior::EquivocatePreprepares | ByzBehavior::EquivocateBatch),
            ) => {
                let me = self.inner.id();
                let mut out = Vec::with_capacity(effects.len());
                for effect in effects {
                    match &effect {
                        Effect::Broadcast {
                            message: NodeMessage::Consensus(signed),
                        } if signed.from == me => {
                            if let Message::PrePrepare(pp) = &signed.message {
                                let conflicting = match behavior {
                                    ByzBehavior::EquivocateBatch => self.swapped_request(pp),
                                    _ => Self::tampered_payload(pp),
                                };
                                out.extend(self.split_with_conflicting(signed, conflicting));
                                continue;
                            }
                            out.push(effect);
                        }
                        _ => out.push(effect),
                    }
                }
                out
            }
        }
    }

    fn chain(&self) -> &ChainStore {
        self.inner.chain()
    }
    fn chain_mut(&mut self) -> &mut ChainStore {
        self.inner.chain_mut()
    }
    fn stable_proofs(&self) -> &[CheckpointProof] {
        self.inner.stable_proofs()
    }
    fn stats(&self) -> NodeStats {
        self.inner.stats()
    }
    fn approx_memory_bytes(&self) -> usize {
        self.inner.approx_memory_bytes()
    }
    fn open_requests(&self) -> usize {
        self.inner.open_requests()
    }
    fn consensus_stats(&self) -> zugchain_pbft::ReplicaStats {
        self.inner.consensus_stats()
    }
    fn slot_snapshot(&self) -> Vec<(u64, bool, usize, usize, bool, bool)> {
        self.inner.slot_snapshot()
    }
    fn progress_snapshot(&self) -> (u64, u64, u64, u64, usize) {
        self.inner.progress_snapshot()
    }
    fn set_telemetry(&mut self, telemetry: &zugchain_telemetry::Telemetry) {
        self.inner.set_telemetry(telemetry);
    }
}
