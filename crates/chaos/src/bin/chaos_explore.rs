//! Seed-range chaos exploration CLI.
//!
//! ```text
//! chaos_explore [--start N] [--seeds N] [--mutate] [--out DIR] [--minimize-runs N]
//! ```
//!
//! Runs the seeded scenario for each seed in `[start, start + seeds)`.
//! Every violation is minimized and written to
//! `DIR/chaos-repro-<seed>.ron`, with the failing run's per-node
//! flight-recorder tails next to it as `DIR/chaos-trace-<seed>.jsonl`;
//! the process exits non-zero if any seed violated an invariant. `--mutate` arms the `mutation-hooks`
//! equivocation bug on every scenario's initial primary (expect 100%
//! violations — this is how the harness's own detection power is
//! smoke-tested).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use zugchain_chaos::{explore, DEFAULT_MINIMIZE_RUNS};

struct Args {
    start: u64,
    seeds: u64,
    mutate: bool,
    out: PathBuf,
    minimize_runs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        start: 0,
        seeds: 64,
        mutate: false,
        out: PathBuf::from("."),
        minimize_runs: DEFAULT_MINIMIZE_RUNS,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--start" => args.start = value("--start")?.parse().map_err(|e| format!("{e}"))?,
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--mutate" => args.mutate = true,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--minimize-runs" => {
                args.minimize_runs = value("--minimize-runs")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: chaos_explore [--start N] [--seeds N] [--mutate] [--out DIR] [--minimize-runs N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("chaos_explore: {err}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let report = explore(args.start, args.seeds, args.mutate, args.minimize_runs);
    let elapsed = started.elapsed();

    println!(
        "explored {} seeds in {:.2}s ({:.1} seeds/s): {} ops scheduled, {} messages delivered, {} violation(s)",
        report.seeds_run,
        elapsed.as_secs_f64(),
        report.seeds_run as f64 / elapsed.as_secs_f64().max(1e-9),
        report.total_ops,
        report.total_messages,
        report.failures.len(),
    );

    let mut wrote_all = true;
    if !report.failures.is_empty() {
        if let Err(err) = std::fs::create_dir_all(&args.out) {
            wrote_all = false;
            eprintln!("  failed to create {}: {err}", args.out.display());
        }
    }
    for failure in &report.failures {
        println!(
            "seed {}: {} — minimized to {} op(s), {} crash(es), {} byzantine, {} export(s), partition: {}",
            failure.seed,
            failure.violation,
            failure.minimized.ops.len(),
            failure.minimized.crashes.len(),
            failure.minimized.byzantine.len(),
            failure.minimized.exports.len(),
            failure.minimized.partition.is_some(),
        );
        let path = args.out.join(&failure.file_name);
        match std::fs::write(&path, &failure.repro) {
            Ok(()) => println!("  wrote {}", path.display()),
            Err(err) => {
                wrote_all = false;
                eprintln!("  failed to write {}: {err}", path.display());
            }
        }
        // The flight-recorder tails of the failing run ride along with
        // the repro: each node's last events before the violation.
        let trace_path = args.out.join(&failure.trace_file_name);
        match std::fs::write(&trace_path, failure.traces.concat()) {
            Ok(()) => println!("  wrote {}", trace_path.display()),
            Err(err) => {
                wrote_all = false;
                eprintln!("  failed to write {}: {err}", trace_path.display());
            }
        }
        // When the violation names a consensus slot, the assembled
        // cross-node span trees of that slot's traces land next to the
        // flight-recorder dump.
        if !failure.span_trees.is_empty() {
            let span_path = args.out.join(&failure.span_tree_file_name);
            match std::fs::write(&span_path, &failure.span_trees) {
                Ok(()) => println!("  wrote {}", span_path.display()),
                Err(err) => {
                    wrote_all = false;
                    eprintln!("  failed to write {}: {err}", span_path.display());
                }
            }
        }
    }

    if report.failures.is_empty() && wrote_all {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
