//! Seed-range exploration: the harness's outer loop.

use crate::executor::{execute, ChaosOutcome, Violation};
use crate::minimize::minimize;
use crate::plan::ChaosPlan;
use crate::ron::write_repro;

/// Default candidate-execution budget for minimization.
pub const DEFAULT_MINIMIZE_RUNS: usize = 200;

/// A seed whose scenario violated an invariant, with the minimized
/// reproduction.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The failing seed.
    pub seed: u64,
    /// The violation the full generated plan produced.
    pub violation: Violation,
    /// The minimized plan that still reproduces `violation.kind`.
    pub minimized: ChaosPlan,
    /// The repro file contents (write to `chaos-repro-<seed>.ron`).
    pub repro: String,
    /// Suggested repro file name.
    pub file_name: String,
    /// Flight-recorder tails from the original (unminimized) failing
    /// run, one JSONL dump per node, each ending with the violation
    /// mark (write their concatenation to `chaos-trace-<seed>.jsonl`).
    pub traces: Vec<String>,
    /// Suggested trace file name, placed next to the repro.
    pub trace_file_name: String,
    /// Assembled cross-node span trees for the violating sequence
    /// number's trace ids (empty when the violation names no sn) —
    /// write next to the flight-recorder dump.
    pub span_trees: String,
    /// Suggested span-tree file name, placed next to the trace dump.
    pub span_tree_file_name: String,
}

/// Outcome of exploring a seed range.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Seeds executed.
    pub seeds_run: u64,
    /// Total planned operations decided across honest runs.
    pub total_ops: u64,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Seeds that violated an invariant.
    pub failures: Vec<SeedFailure>,
}

/// Generates and executes the scenario for one seed.
pub fn run_seed(seed: u64, mutate: bool) -> (ChaosPlan, ChaosOutcome) {
    let mut plan = ChaosPlan::generate(seed);
    if mutate {
        plan = plan.with_mutation();
    }
    let outcome = execute(&plan);
    (plan, outcome)
}

/// Explores `count` seeds starting at `start`. Violating seeds are
/// minimized (up to `minimize_runs` candidate executions each) and
/// returned with ready-to-write repro files.
pub fn explore(start: u64, count: u64, mutate: bool, minimize_runs: usize) -> ExploreReport {
    let mut report = ExploreReport::default();
    for seed in start..start + count {
        let (plan, outcome) = run_seed(seed, mutate);
        report.seeds_run += 1;
        report.total_ops += plan.ops.len() as u64;
        report.total_messages += outcome.delivered_messages;
        if let Some(violation) = outcome.violation {
            let minimized = minimize(&plan, violation.kind, minimize_runs);
            let repro = write_repro(&minimized, violation.kind);
            report.failures.push(SeedFailure {
                seed,
                violation,
                minimized,
                repro,
                file_name: format!("chaos-repro-{seed}.ron"),
                traces: outcome.traces,
                trace_file_name: format!("chaos-trace-{seed}.jsonl"),
                span_trees: outcome.violation_span_trees,
                span_tree_file_name: format!("chaos-spans-{seed}.txt"),
            });
        }
    }
    report
}
