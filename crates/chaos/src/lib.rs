//! Deterministic chaos-exploration harness for ZugChain.
//!
//! Everything flows from one `u64` seed:
//!
//! 1. [`ChaosPlan::generate`] derives a randomized scenario — cluster
//!    size, crash/recover schedules with disk truncation, Byzantine
//!    behaviours (silence, preprepare equivocation, fabricated bus
//!    values), message delay/duplication, a healing partition, and
//!    ground-side export rounds — always leaving an honest 2f+1
//!    majority.
//! 2. [`execute`](executor::execute) runs the scenario through the
//!    unified [`Driver`](zugchain_machine::Driver) over real
//!    [`ZugchainNode`](zugchain::ZugchainNode)s, pbft replicas, and
//!    export [`DataCenter`](zugchain_export::DataCenter)s, checking
//!    safety invariants after every event (cross-replica decide
//!    agreement, block-fork freedom, chain validity, non-equivocation,
//!    archive consistency) and liveness invariants at quiescence.
//! 3. On violation, [`minimize`](minimize::minimize) delta-debugs the
//!    schedule down to a minimal reproducing plan, and
//!    [`write_repro`](ron::write_repro) persists it as
//!    `chaos-repro-<seed>.ron` — a file [`parse_repro`](ron::parse_repro)
//!    replays byte-for-byte deterministically.
//!
//! The harness proves its own teeth against the `mutation-hooks`
//! equivocation bug deliberately compiled into the consensus layer: see
//! `tests/chaos_harness.rs`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod byzantine;
pub mod executor;
pub mod explore;
pub mod minimize;
pub mod plan;
pub mod ron;

pub use executor::{execute, ChaosOutcome, Violation, ViolationKind};
pub use explore::{explore, run_seed, ExploreReport, SeedFailure, DEFAULT_MINIMIZE_RUNS};
pub use minimize::minimize;
pub use plan::{ByzBehavior, ChaosPlan, NetPlan};
pub use ron::{parse_repro, write_repro};
