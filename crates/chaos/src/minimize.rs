//! Failure minimization.
//!
//! Given a plan that produced a violation, [`minimize`] searches for a
//! structurally smaller plan that still reproduces the *same kind* of
//! violation: delta-debugging (ddmin-style chunked removal) over the
//! operation list, one-at-a-time removal of crashes, Byzantine
//! assignments, exports and the partition, and neutralization of the
//! network fault model. Every candidate is re-executed, so the result
//! is a plan known — not assumed — to reproduce.

use crate::executor::{execute, ViolationKind};
use crate::plan::{ChaosPlan, NetPlan};
use zugchain_pbft::{AuthMode, CommMode};

/// Minimizes `plan` while preserving a violation of `kind`, running at
/// most `max_runs` candidate executions. Returns the smallest
/// reproducing plan found (possibly `plan` itself).
pub fn minimize(plan: &ChaosPlan, kind: ViolationKind, max_runs: usize) -> ChaosPlan {
    let mut budget = Budget {
        remaining: max_runs,
    };
    let mut best = plan.clone();
    loop {
        let before = size_of(&best);

        // Ops carry most of the schedule; shrink them with ddmin.
        let ops = best.ops.clone();
        let shrunk = shrink_list(&ops, &mut |candidate| {
            let mut trial = best.clone();
            trial.ops = candidate.to_vec();
            budget.reproduces(&trial, kind)
        });
        best.ops = shrunk;

        // Fault-schedule entries are few; try dropping them one by one.
        let crashes = best.crashes.clone();
        let shrunk = shrink_list(&crashes, &mut |candidate| {
            let mut trial = best.clone();
            trial.crashes = candidate.to_vec();
            budget.reproduces(&trial, kind)
        });
        best.crashes = shrunk;

        let byzantine = best.byzantine.clone();
        let shrunk = shrink_list(&byzantine, &mut |candidate| {
            let mut trial = best.clone();
            trial.byzantine = candidate.to_vec();
            budget.reproduces(&trial, kind)
        });
        best.byzantine = shrunk;

        let exports = best.exports.clone();
        let shrunk = shrink_list(&exports, &mut |candidate| {
            let mut trial = best.clone();
            trial.exports = candidate.to_vec();
            budget.reproduces(&trial, kind)
        });
        best.exports = shrunk;

        if best.partition.is_some() {
            let mut trial = best.clone();
            trial.partition = None;
            if budget.reproduces(&trial, kind) {
                best.partition = None;
            }
        }

        if best.prepare_loss.is_some() {
            let mut trial = best.clone();
            trial.prepare_loss = None;
            if budget.reproduces(&trial, kind) {
                best.prepare_loss = None;
            }
        }

        // Is batching relevant? Try the unbatched protocol.
        if best.max_batch_size > 1 {
            let mut trial = best.clone();
            trial.max_batch_size = 1;
            trial.batch_delay_ms = 0;
            if budget.reproduces(&trial, kind) {
                best.max_batch_size = 1;
                best.batch_delay_ms = 0;
            }
        }

        if best.net != NetPlan::RELIABLE {
            let mut trial = best.clone();
            trial.net = NetPlan::RELIABLE;
            if budget.reproduces(&trial, kind) {
                best.net = NetPlan::RELIABLE;
            }
        }

        // Is the MAC fast path relevant? Try plain signatures.
        if best.auth_mode != AuthMode::Sig {
            let mut trial = best.clone();
            trial.auth_mode = AuthMode::Sig;
            if budget.reproduces(&trial, kind) {
                best.auth_mode = AuthMode::Sig;
            }
        }

        // Is the collector fast path relevant? Try all-to-all.
        if best.comm_mode != CommMode::AllToAll {
            let mut trial = best.clone();
            trial.comm_mode = CommMode::AllToAll;
            if budget.reproduces(&trial, kind) {
                best.comm_mode = CommMode::AllToAll;
            }
        }

        // Simplify surviving crashes: no disk damage, or no restart gap.
        for i in 0..best.crashes.len() {
            if best.crashes[i].truncate_blocks > 0 || best.crashes[i].drop_proofs {
                let mut trial = best.clone();
                trial.crashes[i].truncate_blocks = 0;
                trial.crashes[i].drop_proofs = false;
                if budget.reproduces(&trial, kind) {
                    best = trial;
                }
            }
        }

        if size_of(&best) >= before || budget.remaining == 0 {
            break;
        }
    }
    best
}

struct Budget {
    remaining: usize,
}

impl Budget {
    /// Executes `plan` if budget remains; a candidate only counts as a
    /// reduction when it yields the same violation kind.
    fn reproduces(&mut self, plan: &ChaosPlan, kind: ViolationKind) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        execute(plan).violation.map(|v| v.kind) == Some(kind)
    }
}

/// Structural size: what the minimizer is driving down.
fn size_of(plan: &ChaosPlan) -> usize {
    plan.ops.len()
        + plan.crashes.len()
        + plan.byzantine.len()
        + plan.exports.len()
        + usize::from(plan.partition.is_some())
        + usize::from(plan.prepare_loss.is_some())
        + usize::from(plan.max_batch_size > 1)
        + usize::from(plan.net != NetPlan::RELIABLE)
        + usize::from(plan.auth_mode != AuthMode::Sig)
        + usize::from(plan.comm_mode != CommMode::AllToAll)
}

/// ddmin-style chunked removal: tries dropping ever-smaller chunks while
/// `test` keeps reporting the violation reproduces.
fn shrink_list<T: Clone>(items: &[T], test: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current = items.to_vec();
    if current.is_empty() {
        return current;
    }
    let mut chunk = current.len().div_ceil(2);
    loop {
        let mut index = 0;
        while index < current.len() {
            let mut candidate = current.clone();
            let end = (index + chunk).min(candidate.len());
            candidate.drain(index..end);
            if test(&candidate) {
                current = candidate;
                // Re-test from the same index: the next chunk slid in.
            } else {
                index += chunk;
            }
        }
        if chunk == 1 || current.is_empty() {
            break;
        }
        chunk = chunk.div_ceil(2).min(current.len().max(1));
        if chunk == 0 {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_list_finds_single_culprit() {
        let items: Vec<u32> = (0..37).collect();
        let shrunk = shrink_list(&items, &mut |candidate| candidate.contains(&23));
        assert_eq!(shrunk, vec![23]);
    }

    #[test]
    fn shrink_list_keeps_interacting_pair() {
        let items: Vec<u32> = (0..16).collect();
        let shrunk = shrink_list(&items, &mut |candidate| {
            candidate.contains(&3) && candidate.contains(&12)
        });
        assert_eq!(shrunk, vec![3, 12]);
    }

    #[test]
    fn shrink_list_handles_never_reproducing() {
        let items: Vec<u32> = (0..8).collect();
        let shrunk = shrink_list(&items, &mut |_| false);
        assert_eq!(shrunk, items);
    }
}
