//! Seeded scenario generation.
//!
//! A [`ChaosPlan`] is a complete, self-describing schedule of everything
//! a chaos run will do: client operations, crash/recover events with
//! disk truncation, a healing partition, Byzantine behaviour
//! assignments, export rounds, and the network fault model. It is
//! derived from a single `u64` seed, so a failing scenario is fully
//! identified by that seed — and because the executor replays a plan
//! (not a seed), the minimizer can shrink it structurally and still
//! reproduce the violation.

use rand::{rngs::StdRng, RngExt as _, SeedableRng as _};
use std::collections::BTreeSet;
use zugchain_pbft::{AuthMode, CommMode};

/// How a Byzantine node misbehaves for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzBehavior {
    /// Drops every outbound message while processing inputs normally —
    /// indistinguishable from a crashed node to its peers, but its local
    /// state keeps evolving (and stays subject to the safety checks).
    Silent,
    /// Rewrites its own preprepare broadcasts into per-peer sends with
    /// one victim receiving a conflicting, re-signed proposal for the
    /// same `(view, sn)` slot.
    EquivocatePreprepares,
    /// Feeds fabricated junk bus payloads into its own input path,
    /// flooding consensus with requests no other node observed.
    FabricateBus,
    /// Batch-contents equivocation: the victim receives a batch of the
    /// same length differing in exactly one request for the same
    /// `(view, sn)` slot.
    EquivocateBatch,
    /// Re-tags every outbound consensus message with session MACs forged
    /// under the wrong master secret (and strips the signature). Honest
    /// receivers must reject every such message, so to its peers the
    /// node degenerates into a silent one — the safety invariants must
    /// hold and the untouched majority must keep deciding.
    ForgeMac,
    /// Collector mode: corrupts every inner signature of the vote
    /// certificates it broadcasts (re-signing the envelope correctly).
    /// Honest receivers must reject every forged vote, so the cluster
    /// degrades to the all-to-all fallback for slots this node collects.
    ForgeCert,
    /// Collector mode: swallows its own outbound vote certificates while
    /// behaving honestly otherwise — the silent-collector fault the
    /// per-phase fallback timer defends against.
    CollectorSilent,
}

impl ByzBehavior {
    /// `true` for the behaviours that send a victim a conflicting
    /// preprepare (the victim is then legitimately stalled at that slot
    /// and exempt from the liveness check).
    pub fn equivocates(self) -> bool {
        matches!(
            self,
            ByzBehavior::EquivocatePreprepares | ByzBehavior::EquivocateBatch
        )
    }
}

/// One client operation: a consolidated bus payload of `size` bytes
/// injected into every live node at `at_ms` (all nodes observe the same
/// bus, §III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpPlan {
    /// Injection time in milliseconds of simulated time.
    pub at_ms: u64,
    /// Payload size in bytes (at least 16; the first 16 bytes encode
    /// seed and op index so payloads are globally unique).
    pub size: usize,
}

/// A crash, optionally followed by a restart that reloads durable state
/// with simulated disk damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// Which node crashes.
    pub node: usize,
    /// Crash time (ms).
    pub at_ms: u64,
    /// Restart time (ms); `None` means the node stays down.
    pub recover_at_ms: Option<u64>,
    /// Number of chain-tail blocks lost on disk (torn writes).
    pub truncate_blocks: usize,
    /// If `true`, the checkpoint-proof files are unreadable too and the
    /// node must restart from genesis.
    pub drop_proofs: bool,
}

/// A network partition isolating `island` from everyone else between
/// `start_ms` and `heal_ms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// The minority side (at most f nodes, so the rest keep a quorum).
    pub island: Vec<usize>,
    /// Partition start (ms).
    pub start_ms: u64,
    /// Partition heal (ms).
    pub heal_ms: u64,
}

/// A window during which every `Prepare` message *sent by* `node` is
/// silently dropped — the fault the lost-prepare stall fix defends
/// against. Bounded: after `end_ms` the cluster heals (re-broadcast on
/// duplicate preprepare, or a view change re-proposing the slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepareLossPlan {
    /// The node whose outbound prepares are lost.
    pub node: usize,
    /// Window start (ms).
    pub start_ms: u64,
    /// Window end (ms).
    pub end_ms: u64,
}

/// A Byzantine behaviour assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzPlan {
    /// The misbehaving node.
    pub node: usize,
    /// What it does.
    pub behavior: ByzBehavior,
}

/// One export round started by a ground-side data center.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportPlan {
    /// Round start (ms).
    pub at_ms: u64,
    /// Which of the two data centers initiates.
    pub dc: usize,
    /// The replica asked to serve block bodies.
    pub blocks_from: usize,
}

/// The message-level fault model. Links are reliable-but-untimely (TCP
/// semantics): a "retransmitted" message arrives late rather than never,
/// because PBFT as implemented does not retransmit commits and true loss
/// to a live, connected peer would make liveness checks meaningless.
#[derive(Debug, Clone, PartialEq)]
pub struct NetPlan {
    /// Minimum one-way latency (µs).
    pub min_latency_us: u64,
    /// Maximum one-way latency (µs).
    pub max_latency_us: u64,
    /// Probability a message needs a retransmit (adds a large delay).
    pub retransmit_probability: f64,
    /// Extra delay a retransmitted message suffers (ms).
    pub retransmit_delay_ms: u64,
    /// Probability a message is delivered twice.
    pub duplicate_probability: f64,
}

impl NetPlan {
    /// A fault-free, fixed-latency network (used by the minimizer to
    /// test whether network faults are relevant to a violation).
    pub const RELIABLE: NetPlan = NetPlan {
        min_latency_us: 200,
        max_latency_us: 200,
        retransmit_probability: 0.0,
        retransmit_delay_ms: 0,
        duplicate_probability: 0.0,
    };
}

/// A fully materialized chaos scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// The seed this plan was generated from (also seeds the network
    /// jitter RNG during execution).
    pub seed: u64,
    /// Cluster size (4 or 7).
    pub n_nodes: usize,
    /// Requests bundled per block.
    pub block_size: usize,
    /// Maximum requests bundled per preprepare (1 = unbatched protocol).
    pub max_batch_size: usize,
    /// Partial-batch flush delay (ms); only meaningful when batching.
    pub batch_delay_ms: u64,
    /// Client operations, sorted by time.
    pub ops: Vec<OpPlan>,
    /// Crash/recover schedule.
    pub crashes: Vec<CrashPlan>,
    /// At most one healing partition.
    pub partition: Option<PartitionPlan>,
    /// At most one prepare-loss window.
    pub prepare_loss: Option<PrepareLossPlan>,
    /// Byzantine behaviour assignments.
    pub byzantine: Vec<ByzPlan>,
    /// Export rounds.
    pub exports: Vec<ExportPlan>,
    /// Network fault model.
    pub net: NetPlan,
    /// How every replica authenticates its ordering traffic. Drawn from
    /// a dedicated RNG stream so the documented seed bank's schedules
    /// (ops, faults, exports) are identical in both modes — the decided
    /// logs must be too.
    pub auth_mode: AuthMode,
    /// How every replica routes its prepare/commit votes. Drawn from its
    /// own RNG stream (like `auth_mode`), so every schedule draw stays
    /// byte-identical whichever mode a seed lands on.
    pub comm_mode: CommMode,
    /// If `true`, the `mutation-hooks` equivocation bug is armed on the
    /// initial primary (node 0). Used to prove the harness catches a
    /// deliberately injected consensus bug; never set by [`generate`].
    ///
    /// [`generate`]: ChaosPlan::generate
    pub mutation: bool,
}

impl ChaosPlan {
    /// Derives a scenario from `seed`.
    ///
    /// The fault budget is respected by construction: the set of
    /// *touched* nodes — ever crashed, Byzantine, or inside the
    /// partition island — has at most `f = (n - 1) / 3` members, so the
    /// untouched majority always retains a 2f+1 quorum and the liveness
    /// invariant is meaningful.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_nodes = if rng.random_bool(0.75) { 4 } else { 7 };
        let f = (n_nodes - 1) / 3;
        let block_size = rng.random_range(2..5usize);
        // Half the plans exercise the batched protocol; a small flush
        // delay lets bursty op schedules actually fill batches.
        let max_batch_size = if rng.random_bool(0.5) {
            1
        } else {
            rng.random_range(2..17usize)
        };
        let batch_delay_ms = if max_batch_size > 1 {
            rng.random_range(0..6u64)
        } else {
            0
        };

        let n_ops = rng.random_range(10..40usize);
        let mut ops = Vec::with_capacity(n_ops);
        let mut at_ms = rng.random_range(10..80u64);
        for _ in 0..n_ops {
            ops.push(OpPlan {
                at_ms,
                size: rng.random_range(16..256usize),
            });
            at_ms += rng.random_range(20..220u64);
        }
        let last_op_ms = ops.last().map(|op| op.at_ms).unwrap_or(0);

        // Pick the fault budget: which nodes may be touched at all.
        // Node 0 (the initial primary) is deliberately eligible — losing
        // the primary is the most interesting crash.
        let mut budget: Vec<usize> = Vec::new();
        while budget.len() < f {
            let node = rng.random_range(0..n_nodes);
            if !budget.contains(&node) {
                budget.push(node);
            }
        }

        let mut crashes = Vec::new();
        let mut byzantine = Vec::new();
        let mut partition = None;
        let mut island = Vec::new();
        let mut prepare_loss = None;
        for &node in &budget {
            match rng.random_range(0..5u32) {
                // Crash, usually with recovery and disk damage.
                0 | 1 => {
                    let crash_at = rng.random_range(100..last_op_ms.max(200));
                    let recover_at_ms = if rng.random_bool(0.8) {
                        Some(crash_at + rng.random_range(300..1500u64))
                    } else {
                        None
                    };
                    crashes.push(CrashPlan {
                        node,
                        at_ms: crash_at,
                        recover_at_ms,
                        truncate_blocks: rng.random_range(0..3usize),
                        drop_proofs: rng.random_bool(0.2),
                    });
                }
                2 => {
                    let behavior = match rng.random_range(0..4u32) {
                        0 => ByzBehavior::Silent,
                        1 => ByzBehavior::EquivocatePreprepares,
                        2 => ByzBehavior::EquivocateBatch,
                        _ => ByzBehavior::FabricateBus,
                    };
                    byzantine.push(ByzPlan { node, behavior });
                }
                // Bounded window of lost prepares from this node.
                3 if prepare_loss.is_none() => {
                    let start_ms = rng.random_range(100..last_op_ms.max(200));
                    prepare_loss = Some(PrepareLossPlan {
                        node,
                        start_ms,
                        end_ms: start_ms + rng.random_range(200..900u64),
                    });
                }
                // Partition island member (all budget nodes picking this
                // arm share one island).
                _ => island.push(node),
            }
        }
        if !island.is_empty() {
            let start_ms = rng.random_range(100..last_op_ms.max(200));
            let heal_ms = start_ms + rng.random_range(400..1600u64);
            island.sort_unstable();
            partition = Some(PartitionPlan {
                island,
                start_ms,
                heal_ms,
            });
        }
        crashes.sort_by_key(|c| c.at_ms);

        // Export rounds, initiated from either data center against an
        // untouched replica (a touched one may legitimately be behind
        // or down, which is an availability question, not a safety one).
        // An equivocator's victim counts as touched: it stalls.
        let mut touched: BTreeSet<usize> = budget.iter().copied().collect();
        for b in &byzantine {
            if b.behavior.equivocates() {
                touched.insert(if b.node == n_nodes - 1 {
                    n_nodes - 2
                } else {
                    n_nodes - 1
                });
            }
        }
        let untouched: Vec<usize> = (0..n_nodes).filter(|i| !touched.contains(i)).collect();
        let n_exports = rng.random_range(0..3usize);
        let mut exports = Vec::with_capacity(n_exports);
        for _ in 0..n_exports {
            exports.push(ExportPlan {
                at_ms: rng.random_range(300..last_op_ms + 1500),
                dc: rng.random_range(0..2usize),
                blocks_from: untouched[rng.random_range(0..untouched.len())],
            });
        }
        exports.sort_by_key(|e| e.at_ms);

        let min_latency_us = rng.random_range(50..400u64);
        let net = NetPlan {
            min_latency_us,
            max_latency_us: min_latency_us + rng.random_range(100..2000u64),
            retransmit_probability: if rng.random_bool(0.5) {
                rng.random_range(1..50u32) as f64 / 1000.0
            } else {
                0.0
            },
            retransmit_delay_ms: rng.random_range(5..60u64),
            duplicate_probability: if rng.random_bool(0.5) {
                rng.random_range(1..50u32) as f64 / 1000.0
            } else {
                0.0
            },
        };

        // The authentication axis comes from its own RNG stream: every
        // draw above stays byte-identical whichever mode a seed lands
        // on, so the seed bank exercises the exact same schedules under
        // signatures and under MACs.
        let mut auth_rng = StdRng::seed_from_u64(seed ^ 0x4D41_435F_4155_5448); // "MAC_AUTH"
        let auth_mode = if auth_rng.random_bool(0.5) {
            AuthMode::MacWithSigFallback
        } else {
            AuthMode::Sig
        };
        // A Byzantine node sometimes forges its session tags instead of
        // its scheduled misbehaviour. Honest receivers reject the bad
        // tags whichever auth mode they run, so the flip is dealt
        // independently of the mode draw — and after the export
        // schedule, so it perturbs nothing.
        for byz in &mut byzantine {
            if auth_rng.random_bool(0.33) {
                byz.behavior = ByzBehavior::ForgeMac;
            }
        }

        // The vote-routing axis likewise comes from a dedicated stream,
        // drawn after the auth stream: every schedule above is identical
        // whichever comm mode a seed lands on. Under collector mode a
        // Byzantine node sometimes attacks the collector fast path
        // itself — forging certificate signatures or swallowing its own
        // certificates — instead of its scheduled misbehaviour.
        let mut comm_rng = StdRng::seed_from_u64(seed ^ 0x434F_4C4C_4543_5452); // "COLLECTR"
        let comm_mode = if comm_rng.random_bool(0.5) {
            CommMode::Collector
        } else {
            CommMode::AllToAll
        };
        for byz in &mut byzantine {
            let flip = comm_rng.random_bool(0.33);
            if comm_mode == CommMode::Collector && flip {
                byz.behavior = if comm_rng.random_bool(0.5) {
                    ByzBehavior::ForgeCert
                } else {
                    ByzBehavior::CollectorSilent
                };
            }
        }

        ChaosPlan {
            seed,
            n_nodes,
            block_size,
            max_batch_size,
            batch_delay_ms,
            ops,
            crashes,
            partition,
            prepare_loss,
            byzantine,
            exports,
            net,
            auth_mode,
            comm_mode,
            mutation: false,
        }
    }

    /// The fault tolerance of this cluster size.
    pub fn f(&self) -> usize {
        (self.n_nodes - 1) / 3
    }

    /// Arms the injected equivocation bug on the initial primary.
    #[must_use]
    pub fn with_mutation(mut self) -> Self {
        self.mutation = true;
        self
    }

    /// Pins the authentication mode (sweep harnesses compare both modes
    /// over the same seed rather than sampling it).
    #[must_use]
    pub fn with_auth_mode(mut self, auth_mode: AuthMode) -> Self {
        self.auth_mode = auth_mode;
        self
    }

    /// Pins the vote-routing mode (sweep harnesses compare both modes
    /// over the same seed rather than sampling it).
    #[must_use]
    pub fn with_comm_mode(mut self, comm_mode: CommMode) -> Self {
        self.comm_mode = comm_mode;
        self
    }

    /// Forces the batched protocol with the given batch size and a small
    /// flush delay (sweep harnesses pin this rather than sampling it).
    #[must_use]
    pub fn with_max_batch_size(mut self, max_batch_size: usize) -> Self {
        self.max_batch_size = max_batch_size.max(1);
        if self.max_batch_size > 1 && self.batch_delay_ms == 0 {
            self.batch_delay_ms = 2;
        }
        self
    }

    /// The payload of operation `index`: 16 bytes of (seed, index) —
    /// making every payload globally unique, so the content-based
    /// duplicate filter never collapses two planned ops — followed by a
    /// deterministic fill.
    pub fn op_payload(&self, index: usize) -> Vec<u8> {
        let size = self.ops[index].size.max(16);
        let mut payload = Vec::with_capacity(size);
        payload.extend_from_slice(&self.seed.to_le_bytes());
        payload.extend_from_slice(&(index as u64).to_le_bytes());
        while payload.len() < size {
            let b = (payload.len() as u64)
                .wrapping_mul(31)
                .wrapping_add(self.seed);
            payload.push(b as u8);
        }
        payload
    }

    /// Nodes excluded from the liveness check: ever crashed, Byzantine,
    /// partition-islanded, carrying the injected mutation, or the victim
    /// of a planned equivocator (the victim only ever receives the
    /// forged proposal, so without a state-transfer service it is
    /// legitimately stalled at that slot). Safety invariants still apply
    /// to all of them in full.
    pub fn touched_nodes(&self) -> BTreeSet<usize> {
        let mut touched = BTreeSet::new();
        for c in &self.crashes {
            touched.insert(c.node);
        }
        for b in &self.byzantine {
            touched.insert(b.node);
            if b.behavior.equivocates() {
                touched.insert(self.equivocation_victim(b.node));
            }
        }
        if let Some(p) = &self.partition {
            touched.extend(p.island.iter().copied());
        }
        if let Some(pl) = &self.prepare_loss {
            touched.insert(pl.node);
        }
        if self.mutation {
            touched.insert(0);
        }
        touched
    }

    /// The node an equivocator at `node` sends its forged proposal to:
    /// the highest-id peer (must match `ByzNode::equivocate` and the
    /// pbft `mutation-hooks` victim selection).
    pub fn equivocation_victim(&self, node: usize) -> usize {
        if node == self.n_nodes - 1 {
            self.n_nodes - 2
        } else {
            self.n_nodes - 1
        }
    }

    /// Time of the last scheduled event (ms) — the base for the
    /// quiescence deadline.
    pub fn last_event_ms(&self) -> u64 {
        let mut last = self.ops.last().map(|op| op.at_ms).unwrap_or(0);
        for c in &self.crashes {
            last = last.max(c.recover_at_ms.unwrap_or(c.at_ms));
        }
        if let Some(p) = &self.partition {
            last = last.max(p.heal_ms);
        }
        if let Some(pl) = &self.prepare_loss {
            last = last.max(pl.end_ms);
        }
        for e in &self.exports {
            last = last.max(e.at_ms);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(ChaosPlan::generate(seed), ChaosPlan::generate(seed));
        }
    }

    #[test]
    fn fault_budget_is_respected() {
        for seed in 0..500 {
            let plan = ChaosPlan::generate(seed);
            // Actually-faulty nodes (crashed, Byzantine, islanded) must
            // fit the BFT budget; an equivocator's victim is *stalled*
            // (and so also liveness-exempt) but not faulty.
            let mut faulty = BTreeSet::new();
            faulty.extend(plan.crashes.iter().map(|c| c.node));
            faulty.extend(plan.byzantine.iter().map(|b| b.node));
            if let Some(p) = &plan.partition {
                faulty.extend(p.island.iter().copied());
            }
            if let Some(pl) = &plan.prepare_loss {
                faulty.insert(pl.node);
            }
            assert!(
                faulty.len() <= plan.f(),
                "seed {seed}: {} faulty nodes exceeds f={}",
                faulty.len(),
                plan.f()
            );
            let quorum = 2 * plan.f() + 1;
            assert!(plan.n_nodes - faulty.len() >= quorum);
            // And someone must remain for the liveness check to bite.
            assert!(plan.touched_nodes().len() < plan.n_nodes, "seed {seed}");
        }
    }

    #[test]
    fn partitions_heal_and_islands_are_minorities() {
        for seed in 0..500 {
            let plan = ChaosPlan::generate(seed);
            if let Some(p) = &plan.partition {
                assert!(p.heal_ms > p.start_ms, "seed {seed}");
                assert!(p.island.len() <= plan.f(), "seed {seed}");
            }
        }
    }

    #[test]
    fn op_payloads_are_unique_and_sized() {
        let plan = ChaosPlan::generate(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..plan.ops.len() {
            let payload = plan.op_payload(i);
            assert_eq!(payload.len(), plan.ops[i].size.max(16));
            assert!(seen.insert(payload));
        }
    }

    #[test]
    fn exports_target_untouched_replicas() {
        for seed in 0..200 {
            let plan = ChaosPlan::generate(seed);
            let touched = plan.touched_nodes();
            for e in &plan.exports {
                assert!(!touched.contains(&e.blocks_from), "seed {seed}");
            }
        }
    }
}
