//! Repro files: a hand-rolled reader/writer for a RON-style text format.
//!
//! A violation is persisted as `chaos-repro-<seed>.ron` holding the
//! minimized [`ChaosPlan`] plus the violation kind it reproduces. The
//! format is the Rusty Object Notation subset needed for plans — named
//! structs, field maps, lists, `Some`/`None`, strings, integers, floats
//! and booleans — implemented by hand because the container image
//! carries no serde/ron dependency (and the plan structure is small and
//! stable enough that a bespoke parser is the simpler contract).

use std::fmt::Write as _;

use crate::executor::ViolationKind;
use crate::plan::{
    ByzBehavior, ByzPlan, ChaosPlan, CrashPlan, ExportPlan, NetPlan, OpPlan, PartitionPlan,
    PrepareLossPlan,
};
use zugchain_pbft::{AuthMode, CommMode};

/// Current repro file format version.
pub const REPRO_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn behavior_str(b: ByzBehavior) -> &'static str {
    match b {
        ByzBehavior::Silent => "silent",
        ByzBehavior::EquivocatePreprepares => "equivocate-preprepares",
        ByzBehavior::FabricateBus => "fabricate-bus",
        ByzBehavior::EquivocateBatch => "equivocate-batch",
        ByzBehavior::ForgeMac => "forge-mac",
        ByzBehavior::ForgeCert => "forge-cert",
        ByzBehavior::CollectorSilent => "collector-silent",
    }
}

fn parse_behavior(s: &str) -> Option<ByzBehavior> {
    Some(match s {
        "silent" => ByzBehavior::Silent,
        "equivocate-preprepares" => ByzBehavior::EquivocatePreprepares,
        "fabricate-bus" => ByzBehavior::FabricateBus,
        "equivocate-batch" => ByzBehavior::EquivocateBatch,
        "forge-mac" => ByzBehavior::ForgeMac,
        "forge-cert" => ByzBehavior::ForgeCert,
        "collector-silent" => ByzBehavior::CollectorSilent,
        _ => return None,
    })
}

fn auth_mode_str(mode: AuthMode) -> &'static str {
    match mode {
        AuthMode::Sig => "sig",
        AuthMode::MacWithSigFallback => "mac-with-sig-fallback",
    }
}

fn parse_auth_mode(s: &str) -> Option<AuthMode> {
    Some(match s {
        "sig" => AuthMode::Sig,
        "mac-with-sig-fallback" => AuthMode::MacWithSigFallback,
        _ => return None,
    })
}

fn comm_mode_str(mode: CommMode) -> &'static str {
    match mode {
        CommMode::AllToAll => "all-to-all",
        CommMode::Collector => "collector",
    }
}

fn parse_comm_mode(s: &str) -> Option<CommMode> {
    Some(match s {
        "all-to-all" => CommMode::AllToAll,
        "collector" => CommMode::Collector,
        _ => return None,
    })
}

/// Renders a repro file for `plan`, which reproduces `kind`.
pub fn write_repro(plan: &ChaosPlan, kind: ViolationKind) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ChaosRepro(");
    let _ = writeln!(out, "    version: {REPRO_VERSION},");
    let _ = writeln!(out, "    violation: \"{}\",", kind.as_str());
    let _ = writeln!(out, "    plan: (");
    let _ = writeln!(out, "        seed: {},", plan.seed);
    let _ = writeln!(out, "        n_nodes: {},", plan.n_nodes);
    let _ = writeln!(out, "        block_size: {},", plan.block_size);
    let _ = writeln!(out, "        max_batch_size: {},", plan.max_batch_size);
    let _ = writeln!(out, "        batch_delay_ms: {},", plan.batch_delay_ms);
    let _ = writeln!(
        out,
        "        auth_mode: \"{}\",",
        auth_mode_str(plan.auth_mode)
    );
    let _ = writeln!(
        out,
        "        comm_mode: \"{}\",",
        comm_mode_str(plan.comm_mode)
    );
    let _ = writeln!(out, "        mutation: {},", plan.mutation);
    let _ = writeln!(out, "        ops: [");
    for op in &plan.ops {
        let _ = writeln!(out, "            (at_ms: {}, size: {}),", op.at_ms, op.size);
    }
    let _ = writeln!(out, "        ],");
    let _ = writeln!(out, "        crashes: [");
    for c in &plan.crashes {
        let recover = match c.recover_at_ms {
            Some(ms) => format!("Some({ms})"),
            None => "None".to_string(),
        };
        let _ = writeln!(
            out,
            "            (node: {}, at_ms: {}, recover_at_ms: {recover}, truncate_blocks: {}, drop_proofs: {}),",
            c.node, c.at_ms, c.truncate_blocks, c.drop_proofs
        );
    }
    let _ = writeln!(out, "        ],");
    match &plan.partition {
        Some(p) => {
            let island: Vec<String> = p.island.iter().map(|i| i.to_string()).collect();
            let _ = writeln!(
                out,
                "        partition: Some((island: [{}], start_ms: {}, heal_ms: {})),",
                island.join(", "),
                p.start_ms,
                p.heal_ms
            );
        }
        None => {
            let _ = writeln!(out, "        partition: None,");
        }
    }
    match &plan.prepare_loss {
        Some(pl) => {
            let _ = writeln!(
                out,
                "        prepare_loss: Some((node: {}, start_ms: {}, end_ms: {})),",
                pl.node, pl.start_ms, pl.end_ms
            );
        }
        None => {
            let _ = writeln!(out, "        prepare_loss: None,");
        }
    }
    let _ = writeln!(out, "        byzantine: [");
    for b in &plan.byzantine {
        let _ = writeln!(
            out,
            "            (node: {}, behavior: \"{}\"),",
            b.node,
            behavior_str(b.behavior)
        );
    }
    let _ = writeln!(out, "        ],");
    let _ = writeln!(out, "        exports: [");
    for e in &plan.exports {
        let _ = writeln!(
            out,
            "            (at_ms: {}, dc: {}, blocks_from: {}),",
            e.at_ms, e.dc, e.blocks_from
        );
    }
    let _ = writeln!(out, "        ],");
    let _ = writeln!(
        out,
        "        net: (min_latency_us: {}, max_latency_us: {}, retransmit_probability: {:?}, retransmit_delay_ms: {}, duplicate_probability: {:?}),",
        plan.net.min_latency_us,
        plan.net.max_latency_us,
        plan.net.retransmit_probability,
        plan.net.retransmit_delay_ms,
        plan.net.duplicate_probability
    );
    let _ = writeln!(out, "    ),");
    let _ = writeln!(out, ")");
    out
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// A parsed RON value (the subset repro files use).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    UInt(u64),
    Float(f64),
    Bool(bool),
    Str(String),
    List(Vec<Value>),
    /// A `( field: value, ... )` body, named or anonymous.
    Map(Vec<(String, Value)>),
    Opt(Option<Box<Value>>),
}

impl Value {
    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Value::UInt(v) => Ok(*v),
            other => Err(format!("{what}: expected integer, got {other:?}")),
        }
    }
    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::UInt(v) => Ok(*v as f64),
            other => Err(format!("{what}: expected float, got {other:?}")),
        }
    }
    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }
    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }
    fn as_list(&self, what: &str) -> Result<&[Value], String> {
        match self {
            Value::List(v) => Ok(v),
            other => Err(format!("{what}: expected list, got {other:?}")),
        }
    }
    fn field<'a>(&'a self, name: &str) -> Result<&'a Value, String> {
        match self {
            Value::Map(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{name}`")),
            other => Err(format!(
                "expected struct with field `{name}`, got {other:?}"
            )),
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'/' && self.src.get(self.pos + 1) == Some(&b'/') {
                while self.src.get(self.pos).is_some_and(|&b| b != b'\n') {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected `{}` at byte {}, got {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected identifier at byte {start}"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'(') => self.map_body(),
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                loop {
                    if self.eat(b']') {
                        break;
                    }
                    items.push(self.value()?);
                    if !self.eat(b',') {
                        self.expect(b']')?;
                        break;
                    }
                }
                Ok(Value::List(items))
            }
            Some(b'"') => {
                self.expect(b'"')?;
                let start = self.pos;
                while self.src.get(self.pos).is_some_and(|&b| b != b'"') {
                    self.pos += 1;
                }
                let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.expect(b'"')?;
                Ok(Value::Str(s))
            }
            Some(b) if b.is_ascii_digit() => self.number(),
            Some(_) => {
                let name = self.ident()?;
                match name.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    "None" => Ok(Value::Opt(None)),
                    "Some" => {
                        self.expect(b'(')?;
                        let inner = self.value()?;
                        self.expect(b')')?;
                        Ok(Value::Opt(Some(Box::new(inner))))
                    }
                    // A named struct: the name is decorative.
                    _ => self.map_body(),
                }
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn map_body(&mut self) -> Result<Value, String> {
        self.expect(b'(')?;
        let mut fields = Vec::new();
        loop {
            if self.eat(b')') {
                break;
            }
            let key = self.ident()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            if !self.eat(b',') {
                self.expect(b')')?;
                break;
            }
        }
        Ok(Value::Map(fields))
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        let mut float = false;
        while let Some(&b) = self.src.get(self.pos) {
            if b.is_ascii_digit() {
                self.pos += 1;
            } else if (b == b'.' || b == b'e' || b == b'E' || b == b'-' || b == b'+')
                && self.pos > start
            {
                float = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad float `{text}`: {e}"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        }
    }
}

fn plan_from_value(value: &Value) -> Result<ChaosPlan, String> {
    let ops = value
        .field("ops")?
        .as_list("ops")?
        .iter()
        .map(|op| {
            Ok(OpPlan {
                at_ms: op.field("at_ms")?.as_u64("op.at_ms")?,
                size: op.field("size")?.as_u64("op.size")? as usize,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let crashes = value
        .field("crashes")?
        .as_list("crashes")?
        .iter()
        .map(|c| {
            let recover_at_ms = match c.field("recover_at_ms")? {
                Value::Opt(None) => None,
                Value::Opt(Some(inner)) => Some(inner.as_u64("recover_at_ms")?),
                other => return Err(format!("recover_at_ms: expected option, got {other:?}")),
            };
            Ok(CrashPlan {
                node: c.field("node")?.as_u64("crash.node")? as usize,
                at_ms: c.field("at_ms")?.as_u64("crash.at_ms")?,
                recover_at_ms,
                truncate_blocks: c.field("truncate_blocks")?.as_u64("truncate_blocks")? as usize,
                drop_proofs: c.field("drop_proofs")?.as_bool("drop_proofs")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let partition = match value.field("partition")? {
        Value::Opt(None) => None,
        Value::Opt(Some(p)) => Some(PartitionPlan {
            island: p
                .field("island")?
                .as_list("island")?
                .iter()
                .map(|i| i.as_u64("island member").map(|v| v as usize))
                .collect::<Result<Vec<_>, String>>()?,
            start_ms: p.field("start_ms")?.as_u64("start_ms")?,
            heal_ms: p.field("heal_ms")?.as_u64("heal_ms")?,
        }),
        other => return Err(format!("partition: expected option, got {other:?}")),
    };
    let prepare_loss = match value.field("prepare_loss")? {
        Value::Opt(None) => None,
        Value::Opt(Some(pl)) => Some(PrepareLossPlan {
            node: pl.field("node")?.as_u64("prepare_loss.node")? as usize,
            start_ms: pl.field("start_ms")?.as_u64("prepare_loss.start_ms")?,
            end_ms: pl.field("end_ms")?.as_u64("prepare_loss.end_ms")?,
        }),
        other => return Err(format!("prepare_loss: expected option, got {other:?}")),
    };
    let byzantine = value
        .field("byzantine")?
        .as_list("byzantine")?
        .iter()
        .map(|b| {
            let behavior = b.field("behavior")?.as_str("behavior")?;
            Ok(ByzPlan {
                node: b.field("node")?.as_u64("byz.node")? as usize,
                behavior: parse_behavior(behavior)
                    .ok_or_else(|| format!("unknown behavior `{behavior}`"))?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let exports = value
        .field("exports")?
        .as_list("exports")?
        .iter()
        .map(|e| {
            Ok(ExportPlan {
                at_ms: e.field("at_ms")?.as_u64("export.at_ms")?,
                dc: e.field("dc")?.as_u64("export.dc")? as usize,
                blocks_from: e.field("blocks_from")?.as_u64("blocks_from")? as usize,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let net = value.field("net")?;
    // Absent in pre-fast-path repro files, which were all
    // signature-authenticated — same format version, optional field.
    let auth_mode = match value.field("auth_mode") {
        Ok(v) => {
            let s = v.as_str("auth_mode")?;
            parse_auth_mode(s).ok_or_else(|| format!("unknown auth mode `{s}`"))?
        }
        Err(_) => AuthMode::Sig,
    };
    // Absent in pre-collector repro files, which all ran the all-to-all
    // exchange — same format version, optional field.
    let comm_mode = match value.field("comm_mode") {
        Ok(v) => {
            let s = v.as_str("comm_mode")?;
            parse_comm_mode(s).ok_or_else(|| format!("unknown comm mode `{s}`"))?
        }
        Err(_) => CommMode::AllToAll,
    };
    Ok(ChaosPlan {
        seed: value.field("seed")?.as_u64("seed")?,
        n_nodes: value.field("n_nodes")?.as_u64("n_nodes")? as usize,
        block_size: value.field("block_size")?.as_u64("block_size")? as usize,
        max_batch_size: value.field("max_batch_size")?.as_u64("max_batch_size")? as usize,
        batch_delay_ms: value.field("batch_delay_ms")?.as_u64("batch_delay_ms")?,
        ops,
        crashes,
        partition,
        prepare_loss,
        byzantine,
        exports,
        net: NetPlan {
            min_latency_us: net.field("min_latency_us")?.as_u64("min_latency_us")?,
            max_latency_us: net.field("max_latency_us")?.as_u64("max_latency_us")?,
            retransmit_probability: net
                .field("retransmit_probability")?
                .as_f64("retransmit_probability")?,
            retransmit_delay_ms: net
                .field("retransmit_delay_ms")?
                .as_u64("retransmit_delay_ms")?,
            duplicate_probability: net
                .field("duplicate_probability")?
                .as_f64("duplicate_probability")?,
        },
        auth_mode,
        comm_mode,
        mutation: value.field("mutation")?.as_bool("mutation")?,
    })
}

/// Parses a repro file back into its plan and expected violation kind.
pub fn parse_repro(text: &str) -> Result<(ChaosPlan, ViolationKind), String> {
    let mut parser = Parser::new(text);
    let root = parser.value()?;
    let version = root.field("version")?.as_u64("version")?;
    if version != REPRO_VERSION {
        return Err(format!(
            "unsupported repro version {version} (supported: {REPRO_VERSION})"
        ));
    }
    let kind_str = root.field("violation")?.as_str("violation")?;
    let kind = ViolationKind::parse(kind_str)
        .ok_or_else(|| format!("unknown violation kind `{kind_str}`"))?;
    let plan = plan_from_value(root.field("plan")?)?;
    Ok((plan, kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_roundtrip() {
        for seed in 0..100 {
            let plan = ChaosPlan::generate(seed);
            let text = write_repro(&plan, ViolationKind::DecideConflict);
            let (parsed, kind) = parse_repro(&text).expect("roundtrip parse");
            assert_eq!(kind, ViolationKind::DecideConflict);
            assert_eq!(parsed, plan, "seed {seed}");
        }
    }

    #[test]
    fn mutation_and_every_kind_roundtrip() {
        let plan = ChaosPlan::generate(3).with_mutation();
        for kind in [
            ViolationKind::DecideConflict,
            ViolationKind::BlockFork,
            ViolationKind::ChainInvalid,
            ViolationKind::Equivocation,
            ViolationKind::ExportMismatch,
            ViolationKind::ArchiveAudit,
            ViolationKind::LivenessLoss,
            ViolationKind::ViewBound,
        ] {
            let text = write_repro(&plan, kind);
            let (parsed, parsed_kind) = parse_repro(&text).expect("roundtrip parse");
            assert_eq!(parsed_kind, kind);
            assert_eq!(parsed, plan);
            assert!(parsed.mutation);
        }
    }

    #[test]
    fn rejects_bad_version_and_garbage() {
        let plan = ChaosPlan::generate(1);
        let text = write_repro(&plan, ViolationKind::BlockFork).replace("version: 1", "version: 9");
        assert!(parse_repro(&text).is_err());
        assert!(parse_repro("not a repro at all").is_err());
        assert!(parse_repro("ChaosRepro(version: 1,)").is_err());
    }
}
