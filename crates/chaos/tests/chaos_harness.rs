//! End-to-end harness tests: the honest seed bank, execution
//! determinism, and the injected-bug detection pipeline (catch →
//! minimize → persist → replay).

use zugchain_chaos::{
    execute, minimize, parse_repro, run_seed, write_repro, ByzBehavior, ChaosPlan, NetPlan,
    ViolationKind,
};
use zugchain_pbft::{AuthMode, CommMode};

/// Seeds checked on every `cargo test`. The extended bank (see
/// `honest_seed_bank_extended`) and the CI `chaos-smoke` job cover
/// hundreds more in release mode; EXPERIMENTS.md records the
/// convention.
const SEED_BANK: u64 = 24;

#[test]
fn honest_seed_bank_has_no_violations() {
    for seed in 0..SEED_BANK {
        let (plan, outcome) = run_seed(seed, false);
        assert!(
            outcome.violation.is_none(),
            "seed {seed} violated an invariant: {}\nplan: {plan:#?}",
            outcome.violation.unwrap(),
        );
        // Untouched majorities must actually make progress, otherwise
        // the invariant checks are vacuous.
        assert!(outcome.blocks_created > 0, "seed {seed} created no blocks");
        assert!(
            outcome.delivered_messages > 0,
            "seed {seed} delivered no messages"
        );
    }
}

/// Release-mode deep sweep (`cargo test --release -- --ignored`): the
/// acceptance target is 500+ seeds in under a minute.
#[test]
#[ignore = "release-mode sweep; run explicitly or via the chaos-smoke CI job"]
fn honest_seed_bank_extended() {
    for seed in 0..500 {
        let (_, outcome) = run_seed(seed, false);
        assert!(
            outcome.violation.is_none(),
            "seed {seed} violated an invariant: {}",
            outcome.violation.unwrap(),
        );
    }
}

/// The batched protocol under the same invariant battery: every seed is
/// forced onto `max_batch_size > 1`, and I1–I8 must hold for every
/// request *inside* each batch (the invariant hooks observe per-request
/// decides, so one bad unpacking shows up as a decide conflict or a
/// liveness loss).
#[test]
fn batched_seed_bank_has_no_violations() {
    for seed in 0..SEED_BANK {
        let plan = ChaosPlan::generate(seed).with_max_batch_size(2 + (seed as usize % 15));
        let outcome = execute(&plan);
        assert!(
            outcome.violation.is_none(),
            "seed {seed} (batch {}) violated an invariant: {}\nplan: {plan:#?}",
            plan.max_batch_size,
            outcome.violation.unwrap(),
        );
        assert!(outcome.blocks_created > 0, "seed {seed} created no blocks");
    }
}

/// The 128-seed batched smoke sweep the chaos-smoke CI job runs in
/// release mode.
#[test]
#[ignore = "release-mode sweep; run explicitly or via the chaos-smoke CI job"]
fn batched_seed_bank_extended() {
    for seed in 0..128 {
        let plan = ChaosPlan::generate(seed).with_max_batch_size(2 + (seed as usize % 15));
        let outcome = execute(&plan);
        assert!(
            outcome.violation.is_none(),
            "seed {seed} (batch {}) violated an invariant: {}",
            plan.max_batch_size,
            outcome.violation.unwrap(),
        );
    }
}

/// The same seeds pinned to *both* auth modes: the invariant battery
/// I1–I8 must hold under signatures and under session MACs, and —
/// because the schedules are drawn before the auth axis — every seed
/// runs the identical fault schedule in both modes.
#[test]
fn seed_bank_holds_invariants_in_both_auth_modes() {
    let mut mac_runs = 0;
    let mut forge_mac_runs = 0;
    for seed in 0..SEED_BANK {
        for mode in [AuthMode::Sig, AuthMode::MacWithSigFallback] {
            let plan = ChaosPlan::generate(seed).with_auth_mode(mode);
            if mode == AuthMode::MacWithSigFallback {
                mac_runs += 1;
                if plan
                    .byzantine
                    .iter()
                    .any(|b| b.behavior == ByzBehavior::ForgeMac)
                {
                    forge_mac_runs += 1;
                }
            }
            let outcome = execute(&plan);
            assert!(
                outcome.violation.is_none(),
                "seed {seed} ({mode:?}) violated an invariant: {}\nplan: {plan:#?}",
                outcome.violation.unwrap(),
            );
            assert!(
                outcome.blocks_created > 0,
                "seed {seed} ({mode:?}) created no blocks"
            );
        }
    }
    assert!(mac_runs > 0);
    // The generator really deals the MAC-forging behaviour (the seed
    // bank must exercise rejected forgeries, not only honest tags).
    assert!(
        forge_mac_runs > 0,
        "no ForgeMac assignment in {mac_runs} MAC-mode seeds"
    );
}

/// The same seeds pinned to *both* comm modes: the invariant battery
/// I1–I8 must hold under the all-to-all exchange and under the linear
/// collector fast path, and — because every schedule draw precedes the
/// comm axis — each seed runs the identical fault schedule in both
/// modes.
#[test]
fn seed_bank_holds_invariants_in_both_comm_modes() {
    let mut collector_attacks = 0;
    for seed in 0..SEED_BANK {
        for mode in [CommMode::AllToAll, CommMode::Collector] {
            let plan = ChaosPlan::generate(seed).with_comm_mode(mode);
            if mode == CommMode::Collector
                && plan.byzantine.iter().any(|b| {
                    matches!(
                        b.behavior,
                        ByzBehavior::ForgeCert | ByzBehavior::CollectorSilent
                    )
                })
            {
                collector_attacks += 1;
            }
            let outcome = execute(&plan);
            assert!(
                outcome.violation.is_none(),
                "seed {seed} ({mode:?}) violated an invariant: {}\nplan: {plan:#?}",
                outcome.violation.unwrap(),
            );
            assert!(
                outcome.blocks_created > 0,
                "seed {seed} ({mode:?}) created no blocks"
            );
        }
    }
    // The generator must actually deal attacks on the fast path itself
    // (forged certificates, swallowed certificates), not only honest
    // collectors.
    assert!(
        collector_attacks > 0,
        "no collector attack dealt across the seed bank"
    );
}

/// A certificate-forging collector on a quiet baseline: honest
/// receivers reject every forged inner signature, fall back to the
/// all-to-all exchange, and every invariant holds.
#[test]
fn forged_certificates_are_rejected_and_safety_holds() {
    let mut plan = honest_baseline(56, 8).with_comm_mode(CommMode::Collector);
    plan.byzantine = vec![zugchain_chaos::plan::ByzPlan {
        node: 2,
        behavior: ByzBehavior::ForgeCert,
    }];
    let outcome = execute(&plan);
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(outcome.blocks_created > 0, "no blocks");
}

/// A certificate-swallowing collector on a quiet baseline: the
/// per-phase fallback timers re-broadcast votes all-to-all, so the
/// cluster keeps deciding and every invariant holds.
#[test]
fn silent_collector_is_survived_and_safety_holds() {
    let mut plan = honest_baseline(57, 8).with_comm_mode(CommMode::Collector);
    plan.byzantine = vec![zugchain_chaos::plan::ByzPlan {
        node: 1,
        behavior: ByzBehavior::CollectorSilent,
    }];
    let outcome = execute(&plan);
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(outcome.blocks_created > 0, "no blocks");
}

/// A MAC-forging Byzantine node on a quiet baseline: honest receivers
/// drop every forged message, so the node looks silent — the untouched
/// majority keeps deciding and every invariant holds.
#[test]
fn forged_macs_are_dropped_and_safety_holds() {
    for mode in [AuthMode::Sig, AuthMode::MacWithSigFallback] {
        let mut plan = honest_baseline(55, 8).with_auth_mode(mode);
        plan.byzantine = vec![zugchain_chaos::plan::ByzPlan {
            node: 2,
            behavior: ByzBehavior::ForgeMac,
        }];
        let outcome = execute(&plan);
        assert!(
            outcome.violation.is_none(),
            "{mode:?}: {:?}",
            outcome.violation
        );
        assert!(outcome.blocks_created > 0, "{mode:?}: no blocks");
    }
}

#[test]
fn execution_is_deterministic() {
    for seed in [3, 11, 17] {
        let (_, first) = run_seed(seed, false);
        let (_, second) = run_seed(seed, false);
        assert_eq!(first.decided, second.decided, "seed {seed}");
        assert_eq!(first.max_view, second.max_view, "seed {seed}");
        assert_eq!(first.blocks_created, second.blocks_created, "seed {seed}");
        assert_eq!(
            first.delivered_messages, second.delivered_messages,
            "seed {seed}"
        );
    }
}

/// A quiet, fault-free baseline plan the mutation tests build on.
fn honest_baseline(seed: u64, n_ops: usize) -> ChaosPlan {
    ChaosPlan {
        seed,
        n_nodes: 4,
        block_size: 2,
        ops: (0..n_ops)
            .map(|i| zugchain_chaos::plan::OpPlan {
                at_ms: 20 + 40 * i as u64,
                size: 32,
            })
            .collect(),
        max_batch_size: 1,
        batch_delay_ms: 0,
        crashes: Vec::new(),
        partition: None,
        prepare_loss: None,
        byzantine: Vec::new(),
        exports: Vec::new(),
        net: NetPlan::RELIABLE,
        auth_mode: AuthMode::Sig,
        comm_mode: CommMode::AllToAll,
        mutation: false,
    }
}

#[test]
fn honest_baseline_passes() {
    let outcome = execute(&honest_baseline(99, 8));
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(outcome.blocks_created > 0);
}

/// I8 must actually run, not pass vacuously: an export round over an
/// honest run feeds the data centers' juridical archives, every
/// certified segment ingests cleanly, and its sampled audit bundles
/// verify offline (any failure surfaces as an `archive-audit`
/// violation).
#[test]
fn export_rounds_feed_the_juridical_archives() {
    let mut plan = honest_baseline(77, 8);
    plan.exports = vec![
        zugchain_chaos::plan::ExportPlan {
            at_ms: 250,
            dc: 0,
            blocks_from: 1,
        },
        zugchain_chaos::plan::ExportPlan {
            at_ms: 420,
            dc: 1,
            blocks_from: 2,
        },
    ];
    let outcome = execute(&plan);
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(outcome.exported_blocks > 0, "export rounds moved no blocks");
    assert!(
        outcome.archived_segments > 0,
        "no certified segment reached an archive — I8 never ran"
    );
}

/// The acceptance-gate test: arm the `mutation-hooks` equivocation bug
/// on the initial primary, catch it as a safety violation, minimize the
/// failing schedule, persist the repro file, parse it back, and replay
/// it — deterministically, twice.
#[test]
fn injected_equivocation_bug_is_caught_minimized_and_replayed() {
    // 1. Catch: the bug makes node 0 send a conflicting preprepare to
    //    one victim; the outbound-frame observer must flag it.
    let plan = honest_baseline(4242, 8).with_mutation();
    let outcome = execute(&plan);
    let violation = outcome.violation.expect("armed bug must be caught");
    assert_eq!(violation.kind, ViolationKind::Equivocation);

    // 1b. The flight recorders must tell the same story: every node's
    //     trace parses back as JSONL and ends with the violation mark,
    //     and the buggy primary's tail shows the equivocating sends
    //     that tripped the invariant.
    assert_eq!(outcome.traces.len(), plan.n_nodes);
    for (node, trace) in outcome.traces.iter().enumerate() {
        let records = zugchain_telemetry::parse_jsonl(trace)
            .unwrap_or_else(|e| panic!("node {node} trace is not valid JSONL: {e}"));
        assert!(!records.is_empty(), "node {node} trace is empty");
        let last = records.last().unwrap();
        assert_eq!(
            last.kind, "mark",
            "node {node} trace must end in the violation mark"
        );
        let label = last
            .field("label")
            .and_then(zugchain_telemetry::JsonValue::as_str)
            .expect("mark has a label");
        assert!(
            label.contains("equivocation"),
            "node {node} mark does not name the violation: {label}"
        );
    }
    let primary_trace =
        zugchain_telemetry::parse_jsonl(&outcome.traces[0]).expect("primary trace parses");
    assert!(
        primary_trace.iter().rev().any(|r| r.kind == "effect"
            && r.field("effect")
                .and_then(zugchain_telemetry::JsonValue::as_str)
                == Some("send")),
        "buggy primary's tail must show the equivocating per-peer sends"
    );

    // 1c. The violation names a consensus slot, so the outcome carries
    //     the assembled cross-node span tree(s) of that slot's traces —
    //     the causal record of what the Byzantine primary itself sent:
    //     its own batch_flush span, parented on the origin's submit.
    assert!(
        !outcome.violation_span_trees.is_empty(),
        "equivocation must dump the violating slot's span trees"
    );
    assert!(
        outcome.violation_span_trees.contains("batch_flush node=0"),
        "span tree must show the Byzantine primary's own flush:\n{}",
        outcome.violation_span_trees
    );
    assert!(
        outcome.violation_span_trees.contains("submit node="),
        "span tree must chain back to the origin's submit:\n{}",
        outcome.violation_span_trees
    );

    // 2. Minimize: a single op suffices to trigger a primary proposal,
    //    so the schedule must shrink to one.
    let minimized = minimize(&plan, violation.kind, 100);
    assert!(minimized.ops.len() <= 1, "minimized: {minimized:#?}");
    assert!(minimized.crashes.is_empty());
    assert!(minimized.exports.is_empty());

    // 3. Persist + parse back.
    let repro = write_repro(&minimized, violation.kind);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("chaos-repro-{}.ron", minimized.seed));
    std::fs::write(&path, &repro).expect("write repro file");
    let text = std::fs::read_to_string(&path).expect("read repro file");
    let (replay_plan, expected_kind) = parse_repro(&text).expect("parse repro file");
    assert_eq!(replay_plan, minimized);
    assert_eq!(expected_kind, ViolationKind::Equivocation);

    // 4. Replay, twice: same violation kind, same detail, same time.
    let first = execute(&replay_plan).violation.expect("replay reproduces");
    let second = execute(&replay_plan).violation.expect("replay reproduces");
    assert_eq!(first.kind, ViolationKind::Equivocation);
    assert_eq!(first, second, "replay must be deterministic");

    let _ = std::fs::remove_file(&path);
}

/// The bug must also be caught under full generated chaos (not just the
/// quiet baseline), as long as node 0 is neither crashed before it can
/// propose nor wrapped as Byzantine (which would exempt it from the
/// honest-node tripwire).
#[test]
fn injected_bug_is_caught_under_generated_chaos() {
    let mut caught = 0;
    let mut eligible = 0;
    for seed in 0..40u64 {
        let plan = ChaosPlan::generate(seed);
        let node0_clean = !plan.byzantine.iter().any(|b| b.node == 0)
            && !plan.crashes.iter().any(|c| c.node == 0)
            && plan
                .partition
                .as_ref()
                .is_none_or(|p| !p.island.contains(&0));
        if !node0_clean {
            continue;
        }
        eligible += 1;
        let outcome = execute(&plan.with_mutation());
        if let Some(v) = outcome.violation {
            assert_eq!(v.kind, ViolationKind::Equivocation, "seed {seed}");
            caught += 1;
        }
    }
    assert!(eligible > 0, "no eligible seeds in range");
    assert_eq!(
        caught, eligible,
        "equivocation must be caught on every eligible seed"
    );
}
