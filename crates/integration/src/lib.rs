//! Anchor crate for the workspace-level integration tests in `/tests`;
//! it intentionally contains no code of its own.

#![warn(missing_docs)]
