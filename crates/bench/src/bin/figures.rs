//! Regenerates every table and figure of the ZugChain paper's evaluation
//! (§V). Each subcommand prints the same rows/series the paper reports;
//! `EXPERIMENTS.md` records the paper-vs-measured comparison.
//!
//! Usage:
//!
//! ```text
//! figures [--quick|--paper] <experiment>
//!
//! experiments:
//!   fig6-cycles      network utilization & latency vs bus cycle
//!   fig6-payloads    network utilization & latency vs payload size
//!   fig7-cycles      CPU & memory vs bus cycle
//!   fig7-payloads    CPU & memory vs payload size
//!   fig8-viewchange  request latency timeline across a view change
//!   table2-export    export latencies for 500..16000 blocks
//!   fig9-byzantine   fabricated requests & delayed preprepares
//!   jru-requirements the §V-B JRU requirement check
//!   ablation-blocksize  block size = checkpoint interval tradeoff
//!   ablation-timeouts   timeout aggressiveness vs a censoring primary
//!   all              everything above
//! ```
//!
//! `--quick` shortens runs for smoke testing; `--paper` uses the paper's
//! full 5-minute × 5-run protocol.

use zugchain_bench::{
    fmt, row, run_averaged, run_pair, CYCLE_SWEEP_MS, EXPORT_BLOCK_COUNTS, FABRICATE_RATES,
    PAYLOAD_SWEEP_BYTES,
};
use zugchain_sim::{run_scenario, simulate_export, ExportSimConfig, Mode, ScenarioConfig};

/// Run-length profile.
#[derive(Clone, Copy)]
struct Profile {
    duration_ms: u64,
    runs: u64,
}

const QUICK: Profile = Profile {
    duration_ms: 10_000,
    runs: 1,
};
const DEFAULT: Profile = Profile {
    duration_ms: 60_000,
    runs: 2,
};
const PAPER: Profile = Profile {
    duration_ms: 300_000,
    runs: 5,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = DEFAULT;
    let mut experiments = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--quick" => profile = QUICK,
            "--paper" => profile = PAPER,
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        eprintln!("usage: figures [--quick|--paper] <experiment|all>");
        eprintln!("experiments: fig6-cycles fig6-payloads fig7-cycles fig7-payloads");
        eprintln!("             fig8-viewchange table2-export fig9-byzantine jru-requirements");
        eprintln!("             ablation-blocksize ablation-timeouts all");
        std::process::exit(2);
    }
    for experiment in experiments {
        match experiment.as_str() {
            "fig6-cycles" => fig6_cycles(profile),
            "fig6-payloads" => fig6_payloads(profile),
            "fig7-cycles" => fig7_cycles(profile),
            "fig7-payloads" => fig7_payloads(profile),
            "fig8-viewchange" => fig8_viewchange(),
            "table2-export" => table2_export(),
            "fig9-byzantine" => fig9_byzantine(profile),
            "jru-requirements" => jru_requirements(profile),
            "ablation-blocksize" => ablation_blocksize(profile),
            "ablation-timeouts" => ablation_timeouts(profile),
            "all" => {
                fig6_cycles(profile);
                fig6_payloads(profile);
                fig7_cycles(profile);
                fig7_payloads(profile);
                fig8_viewchange();
                table2_export();
                fig9_byzantine(profile);
                jru_requirements(profile);
                ablation_blocksize(profile);
                ablation_timeouts(profile);
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
}

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Fig. 6 (left): network utilization and latency for bus cycles
/// 32–256 ms at 1 kB payloads.
fn fig6_cycles(profile: Profile) {
    header("Fig. 6 (left): network & latency vs bus cycle (payload 1 kB)");
    println!(
        "{}",
        row("bus cycle [ms]", &CYCLE_SWEEP_MS.map(|c| c.to_string()))
    );
    let mut net_zc = Vec::new();
    let mut net_bl = Vec::new();
    let mut lat_zc = Vec::new();
    let mut lat_bl = Vec::new();
    for cycle in CYCLE_SWEEP_MS {
        let (zc, bl) = run_pair(cycle, 1024, profile.duration_ms, profile.runs);
        net_zc.push(fmt(zc.network_mbps));
        net_bl.push(fmt(bl.network_mbps));
        lat_zc.push(fmt(zc.latency.mean_ms()));
        lat_bl.push(fmt(bl.latency.mean_ms()));
    }
    println!("{}", row("net zugchain [MB/s]", &net_zc));
    println!("{}", row("net baseline [MB/s]", &net_bl));
    println!("{}", row("lat zugchain [ms]", &lat_zc));
    println!("{}", row("lat baseline [ms]", &lat_bl));
}

/// Fig. 6 (right): network utilization and latency for payloads
/// 32 B – 8 kB at a 64 ms cycle.
fn fig6_payloads(profile: Profile) {
    header("Fig. 6 (right): network & latency vs payload (cycle 64 ms)");
    println!(
        "{}",
        row("payload [B]", &PAYLOAD_SWEEP_BYTES.map(|b| b.to_string()))
    );
    let mut net_zc = Vec::new();
    let mut net_bl = Vec::new();
    let mut lat_zc = Vec::new();
    let mut lat_bl = Vec::new();
    for bytes in PAYLOAD_SWEEP_BYTES {
        let (zc, bl) = run_pair(64, bytes, profile.duration_ms, profile.runs);
        net_zc.push(fmt(zc.network_mbps));
        net_bl.push(fmt(bl.network_mbps));
        lat_zc.push(fmt(zc.latency.mean_ms()));
        lat_bl.push(fmt(bl.latency.mean_ms()));
    }
    println!("{}", row("net zugchain [MB/s]", &net_zc));
    println!("{}", row("net baseline [MB/s]", &net_bl));
    println!("{}", row("lat zugchain [ms]", &lat_zc));
    println!("{}", row("lat baseline [ms]", &lat_bl));
}

/// Fig. 7 (left): CPU and memory for bus cycles 32–256 ms.
fn fig7_cycles(profile: Profile) {
    header("Fig. 7 (left): CPU & memory vs bus cycle (payload 1 kB)");
    println!(
        "{}",
        row("bus cycle [ms]", &CYCLE_SWEEP_MS.map(|c| c.to_string()))
    );
    let mut cpu_zc = Vec::new();
    let mut cpu_bl = Vec::new();
    let mut mem_zc = Vec::new();
    let mut mem_bl = Vec::new();
    for cycle in CYCLE_SWEEP_MS {
        let (zc, bl) = run_pair(cycle, 1024, profile.duration_ms, profile.runs);
        cpu_zc.push(fmt(zc.cpu_percent_of_total));
        cpu_bl.push(fmt(bl.cpu_percent_of_total));
        mem_zc.push(fmt(zc.memory_mb_mean));
        mem_bl.push(fmt(bl.memory_mb_mean));
    }
    println!("{}", row("cpu zugchain [% tot]", &cpu_zc));
    println!("{}", row("cpu baseline [% tot]", &cpu_bl));
    println!("{}", row("mem zugchain [MB]", &mem_zc));
    println!("{}", row("mem baseline [MB]", &mem_bl));
}

/// Fig. 7 (right): CPU and memory for payloads 32 B – 8 kB.
fn fig7_payloads(profile: Profile) {
    header("Fig. 7 (right): CPU & memory vs payload (cycle 64 ms)");
    println!(
        "{}",
        row("payload [B]", &PAYLOAD_SWEEP_BYTES.map(|b| b.to_string()))
    );
    let mut cpu_zc = Vec::new();
    let mut cpu_bl = Vec::new();
    let mut mem_zc = Vec::new();
    let mut mem_bl = Vec::new();
    for bytes in PAYLOAD_SWEEP_BYTES {
        let (zc, bl) = run_pair(64, bytes, profile.duration_ms, profile.runs);
        cpu_zc.push(fmt(zc.cpu_percent_of_total));
        cpu_bl.push(fmt(bl.cpu_percent_of_total));
        mem_zc.push(fmt(zc.memory_mb_mean));
        mem_bl.push(fmt(bl.memory_mb_mean));
    }
    println!("{}", row("cpu zugchain [% tot]", &cpu_zc));
    println!("{}", row("cpu baseline [% tot]", &cpu_bl));
    println!("{}", row("mem zugchain [MB]", &mem_zc));
    println!("{}", row("mem baseline [MB]", &mem_bl));
}

/// Fig. 8: request latency across a view change. The primary fails at
/// relative time 0; timeouts: ZugChain soft+hard 250 ms + 250 ms,
/// baseline 500 ms; bus cycle 64 ms; checkpoint/block size 10.
fn fig8_viewchange() {
    header("Fig. 8: request latency during a view change (fault at t=0)");
    let fault_at_ms = 10_000u64;
    for (label, mode) in [("zugchain", Mode::Zugchain), ("baseline", Mode::Baseline)] {
        let mut config = ScenarioConfig::evaluation(mode, 64, 1024);
        config.duration_ms = 25_000;
        config.faults.crash = Some((0, fault_at_ms));
        let metrics = run_scenario(&config, 42);
        println!("--- {label} ---");
        println!("{:>12} {:>12}", "t_rel [ms]", "latency [ms]");
        // Bucket the latency series into 100 ms buckets around the fault.
        let mut buckets: std::collections::BTreeMap<i64, (f64, u32)> = Default::default();
        for (birth_ms, latency_ms) in &metrics.latency.samples {
            let rel = *birth_ms - fault_at_ms as f64;
            if !(-1_000.0..=4_000.0).contains(&rel) {
                continue;
            }
            let bucket = (rel / 100.0).floor() as i64 * 100;
            let entry = buckets.entry(bucket).or_insert((0.0, 0));
            entry.0 += latency_ms;
            entry.1 += 1;
        }
        for (bucket, (sum, count)) in buckets {
            println!("{:>12} {:>12}", bucket, fmt(sum / f64::from(count)));
        }
        let before: Vec<f64> = metrics
            .latency
            .samples
            .iter()
            .filter(|(b, _)| *b < fault_at_ms as f64 - 500.0)
            .map(|(_, l)| *l)
            .collect();
        let steady_before = before.iter().sum::<f64>() / before.len().max(1) as f64;
        let after: Vec<f64> = metrics
            .latency
            .samples
            .iter()
            .filter(|(b, _)| *b > fault_at_ms as f64 + 2_000.0)
            .map(|(_, l)| *l)
            .collect();
        let steady_after = after.iter().sum::<f64>() / after.len().max(1) as f64;
        println!("steady-state before: {} ms", fmt(steady_before));
        println!("steady-state after:  {} ms", fmt(steady_after));
        println!("view changes: {}", metrics.view_changes);
    }
}

/// Table II: export latencies for 500–16 000 blocks over LTE.
fn table2_export() {
    header("Table II: read / delete / verify latency of the export [s]");
    println!(
        "{}",
        row("#blocks", &EXPORT_BLOCK_COUNTS.map(|n| n.to_string()))
    );
    let mut read = Vec::new();
    let mut delete = Vec::new();
    let mut verify = Vec::new();
    let mut share = Vec::new();
    for n_blocks in EXPORT_BLOCK_COUNTS {
        let timing = simulate_export(&ExportSimConfig {
            n_blocks,
            ..ExportSimConfig::default()
        });
        read.push(fmt(timing.read_s));
        delete.push(fmt(timing.delete_s));
        verify.push(fmt(timing.verify_s));
        share.push(format!("{:.0}%", timing.fractions().0 * 100.0));
    }
    println!("{}", row("read [s]", &read));
    println!("{}", row("delete [s]", &delete));
    println!("{}", row("verify [s]", &verify));
    println!("{}", row("read share of total", &share));
}

/// Fig. 9: Byzantine behaviour — fabricated requests at 25/75/100 % of
/// bus cycles and a primary delaying preprepares by 250 ms.
fn fig9_byzantine(profile: Profile) {
    header("Fig. 9: Byzantine behaviour (cycle 64 ms, payload 1 kB)");
    let baseline = run_averaged(Mode::Zugchain, 64, 1024, profile.duration_ms, profile.runs);
    println!(
        "normal case: cpu {}% mem {} MB lat {} ms",
        fmt(baseline.cpu_percent_of_total),
        fmt(baseline.memory_mb_mean),
        fmt(baseline.latency.mean_ms()),
    );
    for rate in FABRICATE_RATES {
        let mut config = ScenarioConfig::evaluation(Mode::Zugchain, 64, 1024);
        config.duration_ms = profile.duration_ms;
        config.faults.fabricate = Some((3, rate));
        let metrics = run_scenario(&config, 2000);
        let d = |a: f64, b: f64| if b > 0.0 { (a / b - 1.0) * 100.0 } else { 0.0 };
        println!(
            "fabricate {:>3.0}%: cpu {}% (+{:.0}%)  mem {} MB (+{:.1}%)  lat {} ms (+{:.0}%)",
            rate * 100.0,
            fmt(metrics.cpu_percent_of_total),
            d(metrics.cpu_percent_of_total, baseline.cpu_percent_of_total),
            fmt(metrics.memory_mb_mean),
            d(metrics.memory_mb_mean, baseline.memory_mb_mean),
            fmt(metrics.latency.mean_ms()),
            d(metrics.latency.mean_ms(), baseline.latency.mean_ms()),
        );
    }
    let mut config = ScenarioConfig::evaluation(Mode::Zugchain, 64, 1024);
    config.duration_ms = profile.duration_ms;
    config.faults.primary_preprepare_delay_ms = Some(250);
    // Soft timeout must exceed the delay for "soft but not hard" — the
    // paper uses 250/250 ms; with a 250 ms delay the preprepare arrives
    // as the soft timer fires, stalling but not changing views.
    config.node_config = config.node_config.with_timeouts(300, 300);
    let metrics = run_scenario(&config, 2001);
    println!(
        "primary delays preprepares 250 ms: lat {} ms (+{:.0}%), view changes {}",
        fmt(metrics.latency.mean_ms()),
        (metrics.latency.mean_ms() / baseline.latency.mean_ms() - 1.0) * 100.0,
        metrics.view_changes,
    );
}

/// §V-B "Comparison to JRU Requirements": ≥10 events/s stored within
/// 500 ms; at a 64 ms cycle ZugChain handles 15.6 events/s at ~14 ms.
fn jru_requirements(profile: Profile) {
    header("JRU requirements check (§V-B)");
    let metrics = run_averaged(Mode::Zugchain, 64, 1024, profile.duration_ms, profile.runs);
    let eps = metrics.events_per_second() * profile.runs as f64 / profile.runs as f64;
    println!(
        "events per second:        {:.1} (paper: 15.6, requirement: 10)",
        eps
    );
    println!(
        "mean ordering latency:    {} ms (paper: ~14 ms, requirement: 500 ms)",
        fmt(metrics.latency.mean_ms())
    );
    println!(
        "p99 ordering latency:     {} ms",
        fmt(metrics.latency.quantile_ms(0.99))
    );
    println!(
        "max CPU of total:         {}% (paper: <= 15%)",
        fmt(metrics.cpu_percent_of_total)
    );
    let ok = metrics.latency.quantile_ms(0.99) < 500.0 && eps >= 10.0;
    println!(
        "requirement met:          {}",
        if ok { "YES" } else { "NO" }
    );
}

/// Ablation: block size (= checkpoint interval). The paper fixes both at
/// 10; this sweep shows the tradeoff — small blocks checkpoint (and can
/// be exported/pruned) sooner but spend more CPU on checkpoint traffic.
fn ablation_blocksize(profile: Profile) {
    header("Ablation: block size / checkpoint interval (cycle 64 ms, 1 kB)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "blocksize", "lat [ms]", "cpu [%tot]", "blocks", "ckpt int [s]"
    );
    for block_size in [1usize, 5, 10, 25, 50] {
        let mut config = ScenarioConfig::evaluation(Mode::Zugchain, 64, 1024);
        config.duration_ms = profile.duration_ms;
        config.node_config = config.node_config.with_block_size(block_size);
        let metrics = run_scenario(&config, 3000);
        let interval_s = if metrics.blocks_created > 0 {
            metrics.duration_ms / 1000.0 / metrics.blocks_created as f64
        } else {
            f64::INFINITY
        };
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>14}",
            block_size,
            fmt(metrics.latency.mean_ms()),
            fmt(metrics.cpu_percent_of_total),
            metrics.blocks_created,
            fmt(interval_s),
        );
    }
}

/// Ablation: timeout sensitivity against a censoring primary. The
/// combined soft+hard timeout bounds how long a censoring primary can
/// suppress recording before it is deposed (paper §V-B: "with our quickly
/// stabilizing view change, we can use more aggressive timeouts").
fn ablation_timeouts(profile: Profile) {
    header("Ablation: timeouts vs a censoring primary (cycle 64 ms)");
    println!(
        "{:>18} {:>14} {:>12} {:>12}",
        "soft+hard [ms]", "worst lat [ms]", "view chg", "unlogged"
    );
    for (soft_ms, hard_ms) in [(50u64, 50u64), (125, 125), (250, 250), (500, 500)] {
        let mut config = ScenarioConfig::evaluation(Mode::Zugchain, 64, 1024);
        config.duration_ms = profile.duration_ms.min(30_000);
        config.faults.primary_censors = true;
        config.node_config = config.node_config.with_timeouts(soft_ms, hard_ms);
        let metrics = run_scenario(&config, 3100);
        println!(
            "{:>18} {:>14} {:>12} {:>12}",
            format!("{soft_ms}+{hard_ms}"),
            fmt(metrics.latency.max_ms()),
            metrics.view_changes,
            metrics.unlogged_requests,
        );
    }
    println!("(aggressive timeouts cut the censorship window; nothing is ever lost)");
}
