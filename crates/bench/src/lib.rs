//! Shared helpers for the ZugChain benchmark harness.
//!
//! The `figures` binary regenerates every table and figure of the paper's
//! evaluation (see `DESIGN.md` §5 for the experiment index); the Criterion
//! benches under `benches/` measure the building blocks on the host CPU.

#![warn(missing_docs)]

use zugchain_sim::{run_scenario, Mode, RunMetrics, ScenarioConfig};

/// The bus cycle sweep of Fig. 6/7 (left panels): 32 ms (MVB minimum) to
/// 256 ms, at 1 kB payloads.
pub const CYCLE_SWEEP_MS: [u64; 4] = [32, 64, 128, 256];

/// The payload sweep of Fig. 6/7 (right panels): 32 B to 8 kB at the
/// common 64 ms cycle.
pub const PAYLOAD_SWEEP_BYTES: [usize; 9] = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// The block counts of Table II.
pub const EXPORT_BLOCK_COUNTS: [u64; 6] = [500, 1_000, 2_000, 4_000, 8_000, 16_000];

/// The fabricated-request rates of Fig. 9.
pub const FABRICATE_RATES: [f64; 3] = [0.25, 0.75, 1.0];

/// Runs one evaluation point for both systems, averaged over `runs`
/// seeds (the paper averages 5 runs).
pub fn run_pair(
    bus_cycle_ms: u64,
    payload_bytes: usize,
    duration_ms: u64,
    runs: u64,
) -> (RunMetrics, RunMetrics) {
    let zc = run_averaged(
        Mode::Zugchain,
        bus_cycle_ms,
        payload_bytes,
        duration_ms,
        runs,
    );
    let bl = run_averaged(
        Mode::Baseline,
        bus_cycle_ms,
        payload_bytes,
        duration_ms,
        runs,
    );
    (zc, bl)
}

/// Runs one configuration over `runs` seeds and merges the metrics
/// (means of scalar metrics, concatenated latency samples).
pub fn run_averaged(
    mode: Mode,
    bus_cycle_ms: u64,
    payload_bytes: usize,
    duration_ms: u64,
    runs: u64,
) -> RunMetrics {
    let mut merged = RunMetrics::default();
    for seed in 0..runs.max(1) {
        let mut config = ScenarioConfig::evaluation(mode, bus_cycle_ms, payload_bytes);
        config.duration_ms = duration_ms;
        let metrics = run_scenario(&config, 1000 + seed);
        merged.duration_ms = metrics.duration_ms;
        merged.logged_requests += metrics.logged_requests;
        merged.blocks_created += metrics.blocks_created;
        merged.network_mbps += metrics.network_mbps;
        merged.cpu_percent_of_total += metrics.cpu_percent_of_total;
        merged.memory_mb_mean += metrics.memory_mb_mean;
        merged.memory_mb_max = merged.memory_mb_max.max(metrics.memory_mb_max);
        merged.view_changes += metrics.view_changes;
        merged.unlogged_requests += metrics.unlogged_requests;
        merged
            .latency
            .samples
            .extend(metrics.latency.samples.iter().copied());
    }
    let n = runs.max(1) as f64;
    merged.logged_requests = (merged.logged_requests as f64 / n) as u64;
    merged.blocks_created = (merged.blocks_created as f64 / n) as u64;
    merged.network_mbps /= n;
    merged.cpu_percent_of_total /= n;
    merged.memory_mb_mean /= n;
    merged
}

/// Renders one row of a figure table.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut line = format!("{label:<24}");
    for cell in cells {
        line.push_str(&format!(" {cell:>12}"));
    }
    line
}

/// Formats a float with sensible precision for tables.
pub fn fmt(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}")
    } else if value >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_pair_produces_comparable_metrics() {
        let (zc, bl) = run_pair(64, 256, 3_000, 1);
        assert!(zc.logged_requests > 10);
        assert!(
            bl.logged_requests > zc.logged_requests * 2,
            "baseline logs n copies"
        );
        assert!(bl.network_mbps > zc.network_mbps);
    }

    #[test]
    fn averaging_merges_samples() {
        let merged = run_averaged(Mode::Zugchain, 64, 128, 2_000, 2);
        assert!(merged.latency.len() > 40, "two runs' samples concatenated");
    }

    #[test]
    fn formatting_is_stable() {
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(12.34), "12.34");
        assert_eq!(fmt(0.1234), "0.123");
    }
}
