//! Benchmarks one full PBFT normal-case round (preprepare → prepare →
//! commit → decide) across 4 in-memory replicas — the end-to-end
//! consensus cost of ordering one bus cycle, on the host CPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zugchain_crypto::Keystore;
use zugchain_machine::Effect;
use zugchain_pbft::{Config, NodeId, ProposedRequest, Replica, ReplicaEvent};

/// Drives one request through a fresh 4-replica group until all decide.
fn order_once(payload: &[u8]) -> usize {
    let config = Config::new(4).unwrap();
    let (pairs, keystore) = Keystore::generate(4, 99);
    let mut replicas: Vec<Replica> = pairs
        .into_iter()
        .enumerate()
        .map(|(id, key)| Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone()))
        .collect();

    replicas[0].propose(ProposedRequest::application(payload.to_vec(), NodeId(0)));
    let mut decided = 0usize;
    loop {
        let mut traffic = Vec::new();
        for replica in &mut replicas {
            for effect in replica.drain_effects() {
                match effect {
                    Effect::Broadcast { message } => traffic.push(message),
                    Effect::Output(ReplicaEvent::Decide { .. }) => decided += 1,
                    _ => {}
                }
            }
        }
        if traffic.is_empty() {
            break;
        }
        for message in traffic {
            for replica in &mut replicas {
                replica.on_message(message.clone());
            }
        }
    }
    decided
}

fn bench_normal_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft/normal_case_round");
    group.sample_size(20);
    for size in [128usize, 1024, 8192] {
        let payload = vec![0xCD; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &payload, |b, payload| {
            b.iter(|| {
                let decided = order_once(std::hint::black_box(payload));
                assert_eq!(decided, 4);
                decided
            });
        });
    }
    group.finish();
}

fn bench_pipelined_ordering(c: &mut Criterion) {
    // Amortized cost: one group kept alive, 10 requests ordered
    // back-to-back (one block's worth at the paper's block size).
    let mut group = c.benchmark_group("pbft/ten_request_block");
    group.sample_size(20);
    group.bench_function("block_of_10", |b| {
        b.iter_batched(
            || {
                let config = Config::new(4).unwrap();
                let (pairs, keystore) = Keystore::generate(4, 99);
                pairs
                    .into_iter()
                    .enumerate()
                    .map(|(id, key)| {
                        Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone())
                    })
                    .collect::<Vec<Replica>>()
            },
            |mut replicas| {
                for tag in 0..10u8 {
                    replicas[0].propose(ProposedRequest::application(vec![tag; 1024], NodeId(0)));
                }
                let mut decided = 0usize;
                loop {
                    let mut traffic = Vec::new();
                    for replica in &mut replicas {
                        for effect in replica.drain_effects() {
                            match effect {
                                Effect::Broadcast { message } => traffic.push(message),
                                Effect::Output(ReplicaEvent::Decide { .. }) => decided += 1,
                                _ => {}
                            }
                        }
                    }
                    if traffic.is_empty() {
                        break;
                    }
                    for message in traffic {
                        for replica in &mut replicas {
                            replica.on_message(message.clone());
                        }
                    }
                }
                assert_eq!(decided, 40);
                decided
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_normal_case, bench_pipelined_ordering);
criterion_main!(benches);
