//! Benchmarks the HTTP serving layer over a large archive: cold vs
//! segment-cached range reads and timelines at the service level (no
//! socket noise — [`zugchain_api::ApiService::respond`] is driven
//! directly, so the numbers isolate the cache economics), plus a
//! concurrent-reader sweep over real loopback HTTP that must finish
//! with zero 5xx responses. The recorded claims in `BENCH_archive.json`:
//! segment-cached range reads at least 5× colder-than-cache reads, and
//! 64 concurrent readers against a million-block archive served
//! errorlessly.
//!
//! Set `ZUGCHAIN_BENCH_QUICK=1` for the CI smoke variant (a small
//! archive and a short sweep). The full run builds a 1,000,000-block
//! archive (~1 GiB resident) and takes a few minutes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion, Throughput};
use zugchain_api::http::Request;
use zugchain_api::{ApiConfig, ApiServer, ApiService, Backend, HttpClient};
use zugchain_archive::{Archive, QueryEngine};
use zugchain_blockchain::{Block, BlockBuilder, LoggedRequest};
use zugchain_crypto::{KeyPair, Keystore};
use zugchain_export::CertifiedSegment;
use zugchain_mvb::PortAddress;
use zugchain_pbft::{Checkpoint, CheckpointProof, Message, NodeId};
use zugchain_signals::{Request as SignalRequest, SignalValue, TrainEvent};
use zugchain_telemetry::Registry;
use zugchain_wire::TrainId;

const QUORUM: usize = 3;
const TRAIN: TrainId = TrainId(9);
/// One request per block keeps the million-block build tractable; the
/// serving layer pages over blocks, so block count is the axis that
/// matters here.
const BLOCK_SIZE: usize = 1;
const PAGE_LIMIT: u64 = 100;

fn quick() -> bool {
    std::env::var_os("ZUGCHAIN_BENCH_QUICK").is_some()
}

fn signal_payload(sn: u64) -> Vec<u8> {
    let time_ms = sn * 64;
    zugchain_wire::to_bytes(&SignalRequest {
        cycle: sn,
        time_ms,
        events: vec![TrainEvent {
            name: "v_actual".to_string(),
            port: PortAddress(0x42),
            cycle: sn,
            time_ms,
            value: SignalValue::U16((sn % 4_000) as u16),
        }],
    })
}

fn certify(pairs: &[KeyPair], sn: u64, head: &Block) -> CheckpointProof {
    let checkpoint = Checkpoint {
        sn,
        state_digest: head.hash(),
    };
    let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
    CheckpointProof {
        checkpoint,
        signatures: (0..QUORUM)
            .map(|id| (NodeId(id as u64), pairs[id].sign(&message)))
            .collect(),
    }
}

/// Builds and ingests `n_segments × blocks_per_segment` single-request
/// blocks for [`TRAIN`], returning the query engine and the head sn.
fn populated_engine(n_segments: usize, blocks_per_segment: usize) -> (QueryEngine, u64) {
    let (pairs, keystore) = Keystore::generate(4, 7);
    let mut archive = Archive::in_memory_for_train(TRAIN, keystore, QUORUM);
    let mut builder = BlockBuilder::new(BLOCK_SIZE);
    let mut base = Block::genesis();
    let mut sn = 0u64;
    for _ in 0..n_segments {
        let mut blocks = Vec::with_capacity(blocks_per_segment);
        while blocks.len() < blocks_per_segment {
            sn += 1;
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: sn % 4,
                    payload: signal_payload(sn),
                },
                sn * 64,
            ) {
                blocks.push(block);
            }
        }
        let head = blocks.last().expect("nonempty").clone();
        let segment = CertifiedSegment {
            train: TRAIN,
            base_height: base.height(),
            base_hash: base.hash(),
            blocks,
            proof: certify(&pairs, sn, &head),
        };
        archive.ingest(&segment).expect("certified segment ingests");
        base = head;
    }
    (QueryEngine::new(archive), sn)
}

fn blocks_request(from_sn: u64) -> Request {
    Request {
        method: "GET".to_string(),
        path: format!("/v1/trains/{}/blocks", TRAIN.0),
        query: vec![
            ("from_sn".to_string(), from_sn.to_string()),
            ("limit".to_string(), PAGE_LIMIT.to_string()),
        ],
        http11: true,
        headers: Vec::new(),
        body: Vec::new(),
    }
}

fn timeline_request(from_ms: u64, to_ms: u64) -> Request {
    Request {
        method: "GET".to_string(),
        path: format!("/v1/trains/{}/timeline", TRAIN.0),
        query: vec![
            ("from_ms".to_string(), from_ms.to_string()),
            ("to_ms".to_string(), to_ms.to_string()),
        ],
        http11: true,
        headers: Vec::new(),
        body: Vec::new(),
    }
}

fn service(engine: &QueryEngine, cache_capacity: usize) -> ApiService {
    let config = ApiConfig {
        cache_capacity,
        ..ApiConfig::open()
    };
    ApiService::new(
        config,
        Backend::Single(engine.clone()),
        Arc::new(Registry::new()),
    )
}

/// Cold vs segment-cached range reads, at the service level. The cold
/// service runs with the cache disabled (capacity 0) — every read pays
/// the index walk and JSON encoding; the cached service serves the same
/// immutable full page out of the segment-keyed cache. The recorded
/// claim: cached ≥ 5× cold.
fn bench_blocks_pages(c: &mut Criterion, engine: &QueryEngine, head_sn: u64) {
    let mut group = c.benchmark_group("api/blocks");
    group.sample_size(if quick() { 10 } else { 20 });
    group.throughput(Throughput::Elements(PAGE_LIMIT));

    // Rotate across distinct pages so the cold path cannot luck into
    // locality; stay clear of the open tail so pages are always full.
    let pages = (head_sn / PAGE_LIMIT).saturating_sub(1).max(1);
    let cold = service(engine, 0);
    group.bench_function("range_cold", |b| {
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 1) % pages;
            let response = cold.respond(&blocks_request(page * PAGE_LIMIT + 1), "bench");
            assert_eq!(response.status, 200);
            std::hint::black_box(response.body.len())
        });
    });

    let cached = service(engine, 4096);
    group.bench_function("range_cached", |b| {
        // Bounded rotation (all pages fit in the cache): after one warm
        // lap every read is a hit.
        let hot_pages = pages.min(1024);
        for page in 0..hot_pages {
            let response = cached.respond(&blocks_request(page * PAGE_LIMIT + 1), "bench");
            assert_eq!(response.status, 200);
        }
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 1) % hot_pages;
            let response = cached.respond(&blocks_request(page * PAGE_LIMIT + 1), "bench");
            assert_eq!(response.status, 200);
            std::hint::black_box(response.body.len())
        });
    });
    group.finish();
}

/// Cold vs cached analysis timelines over a 2%-of-journey window — the
/// expensive decoded read the cache pays for most visibly.
fn bench_timeline(c: &mut Criterion, engine: &QueryEngine, head_sn: u64) {
    let span_ms = head_sn * 64;
    let (from, to) = (span_ms * 49 / 100, span_ms * 51 / 100);
    let mut group = c.benchmark_group("api/timeline");
    group.sample_size(if quick() { 10 } else { 20 });

    let cold = service(engine, 0);
    group.bench_function("window_cold", |b| {
        b.iter(|| {
            let response = cold.respond(&timeline_request(from, to), "bench");
            assert_eq!(response.status, 200);
            std::hint::black_box(response.body.len())
        });
    });

    let cached = service(engine, 64);
    group.bench_function("window_cached", |b| {
        b.iter(|| {
            let response = cached.respond(&timeline_request(from, to), "bench");
            assert_eq!(response.status, 200);
            std::hint::black_box(response.body.len())
        });
    });
    group.finish();
}

/// Audit-bundle assembly through the serving path (cache off: each
/// download re-proves Merkle membership from the index).
fn bench_bundle(c: &mut Criterion, engine: &QueryEngine, head_sn: u64) {
    let cold = service(engine, 0);
    let request = Request {
        method: "GET".to_string(),
        path: format!("/v1/trains/{}/bundle/{}", TRAIN.0, head_sn / 2),
        query: Vec::new(),
        http11: true,
        headers: Vec::new(),
        body: Vec::new(),
    };
    c.bench_function("api/bundle_download", |b| {
        b.iter(|| {
            let response = cold.respond(&request, "bench");
            assert_eq!(response.status, 200);
            std::hint::black_box(response.body.len())
        });
    });
}

/// Concurrent-reader sweep over real loopback HTTP: every reader mixes
/// block pages, timeline windows, and bundle downloads; the run fails
/// if any response is 5xx. Prints one machine-readable line.
fn reader_sweep(engine: &QueryEngine, head_sn: u64, readers: usize, requests_each: u64) {
    let server = ApiServer::start(
        ApiConfig::open(),
        Backend::Single(engine.clone()),
        Arc::new(Registry::new()),
    )
    .expect("bind loopback");
    let address = server.address();
    let server_errors = AtomicU64::new(0);
    let total = AtomicU64::new(0);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for reader in 0..readers {
            let server_errors = &server_errors;
            let total = &total;
            scope.spawn(move || {
                let mut client = HttpClient::new(address);
                let mut sn = (reader as u64 * 7919) % head_sn.max(1);
                for i in 0..requests_each {
                    sn = (sn + 7919) % head_sn.max(1);
                    let path = match i % 4 {
                        0 | 1 => format!(
                            "/v1/trains/{}/blocks?from_sn={}&limit={PAGE_LIMIT}",
                            TRAIN.0,
                            sn + 1
                        ),
                        2 => {
                            let from = sn * 64;
                            format!(
                                "/v1/trains/{}/timeline?from_ms={from}&to_ms={}",
                                TRAIN.0,
                                from + PAGE_LIMIT * 64
                            )
                        }
                        _ => format!("/v1/trains/{}/bundle/{}", TRAIN.0, sn + 1),
                    };
                    let response = client.get(&path, None).expect("reader request");
                    if response.status >= 500 {
                        server_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    total.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let mut server = server;
    server.stop();
    let issued = total.load(Ordering::Relaxed);
    let errors = server_errors.load(Ordering::Relaxed);
    let rps = issued as f64 / elapsed.as_secs_f64();
    println!(
        "query-serving: readers={readers} requests={issued} err5xx={errors} \
         blocks={head_sn} rps={rps:.0}"
    );
    assert_eq!(errors, 0, "the sweep must finish with zero 5xx responses");
}

fn bench_query_serving(c: &mut Criterion) {
    let (n_segments, blocks_per_segment) = if quick() { (40, 50) } else { (1_000, 1_000) };
    let build = Instant::now();
    let (engine, head_sn) = populated_engine(n_segments, blocks_per_segment);
    eprintln!(
        "query_serving: archive ready — {} blocks in {:.1}s",
        n_segments * blocks_per_segment,
        build.elapsed().as_secs_f64()
    );

    bench_blocks_pages(c, &engine, head_sn);
    bench_timeline(c, &engine, head_sn);
    bench_bundle(c, &engine, head_sn);

    let (readers, each) = if quick() { (8, 50) } else { (64, 400) };
    reader_sweep(&engine, head_sn, readers, each);
}

criterion_group!(benches, bench_query_serving);

fn main() {
    benches();
}
