//! Benchmarks the data-center side of the export protocol: checkpoint
//! proof verification and chain validation — the "verify" row of
//! Table II (0.2–0.3 % of the export total in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zugchain_blockchain::{Block, BlockBuilder, LoggedRequest};
use zugchain_crypto::Keystore;
use zugchain_export::{install_transfer, TransferPackage};
use zugchain_pbft::{Checkpoint, CheckpointProof, Message, NodeId};

fn chain_of(n_blocks: usize) -> Vec<Block> {
    let mut builder = BlockBuilder::new(10);
    let mut blocks = Vec::new();
    for sn in 1..=(n_blocks * 10) as u64 {
        if let Some(block) = builder.push(
            LoggedRequest {
                sn,
                origin: sn % 4,
                payload: vec![0x77; 90],
            },
            sn * 64,
        ) {
            blocks.push(block);
        }
    }
    blocks
}

fn proof_for(block: &Block, pairs: &[zugchain_crypto::KeyPair]) -> CheckpointProof {
    let checkpoint = Checkpoint {
        sn: block.header.last_sn,
        state_digest: block.hash(),
    };
    let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
    CheckpointProof {
        checkpoint,
        signatures: (0..3)
            .map(|id| (NodeId(id as u64), pairs[id].sign(&message)))
            .collect(),
    }
}

fn bench_proof_verification(c: &mut Criterion) {
    let (pairs, keystore) = Keystore::generate(4, 7);
    let blocks = chain_of(1);
    let proof = proof_for(blocks.last().unwrap(), &pairs);
    c.bench_function("export/verify_checkpoint_proof", |b| {
        b.iter(|| {
            assert!(std::hint::black_box(&proof).verify(&keystore, 3));
        });
    });
}

fn bench_transfer_install(c: &mut Criterion) {
    let (pairs, keystore) = Keystore::generate(4, 7);
    let (_, dc_keystore) = Keystore::generate(2, 8);
    let mut group = c.benchmark_group("export/install_transfer");
    group.sample_size(20);
    for n_blocks in [50usize, 500] {
        let blocks = chain_of(n_blocks);
        let package = TransferPackage {
            proof: proof_for(blocks.last().unwrap(), &pairs),
            blocks,
            base_deletes: vec![],
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(n_blocks),
            &package,
            |b, package| {
                b.iter(|| {
                    let store = install_transfer(
                        std::hint::black_box(package),
                        &keystore,
                        &dc_keystore,
                        3,
                        2,
                    )
                    .unwrap();
                    store.height()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_proof_verification, bench_transfer_install);
criterion_main!(benches);
