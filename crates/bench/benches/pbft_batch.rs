//! Consensus batching throughput: orders a fixed stream of 256-byte
//! requests through a 4-replica group at batch sizes 1, 4, 16 and 64.
//! One three-phase exchange (preprepare → prepare → commit) is amortized
//! over up to `max_batch_size` requests, so ops/s should rise steeply
//! with the batch size while the per-request decide semantics stay
//! identical to the unbatched protocol.
//!
//! Measured in both authentication modes: `Sig` (every message carries a
//! signature, the original protocol) and `MacWithSigFallback` (pairwise
//! session MACs on the common path, deferred quorum-time signature
//! validation for the votes that feed view-change certificates).
//!
//! Set `ZUGCHAIN_BENCH_QUICK=1` for the CI smoke variant (shorter stream,
//! fewer samples).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zugchain_crypto::Keystore;
use zugchain_machine::Effect;
use zugchain_pbft::{AuthMode, Config, NodeId, ProposedRequest, Replica, ReplicaEvent};

const N: usize = 4;

fn fresh_group(batch_size: usize, auth_mode: AuthMode) -> Vec<Replica> {
    let config = Config::new(N)
        .unwrap()
        .with_max_batch_size(batch_size)
        .with_auth_mode(auth_mode);
    let (pairs, keystore) = Keystore::generate(N, 7);
    pairs
        .into_iter()
        .enumerate()
        .map(|(id, key)| Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone()))
        .collect()
}

/// Proposes `requests` distinct requests on the primary and pumps the
/// group until quiet. The request count is a multiple of every measured
/// batch size, so all batches flush full and no flush timer is needed.
fn order_stream(replicas: &mut [Replica], requests: usize) -> usize {
    for tag in 0..requests {
        let mut payload = vec![0u8; 256];
        payload[..8].copy_from_slice(&(tag as u64).to_le_bytes());
        replicas[0].propose(ProposedRequest::application(payload, NodeId(0)));
    }
    let mut decided = 0usize;
    loop {
        let mut traffic = Vec::new();
        for replica in replicas.iter_mut() {
            for effect in replica.drain_effects() {
                match effect {
                    Effect::Broadcast { message } => traffic.push(message),
                    Effect::Output(ReplicaEvent::Decide { .. }) => decided += 1,
                    _ => {}
                }
            }
        }
        if traffic.is_empty() {
            break;
        }
        for message in traffic {
            for replica in replicas.iter_mut() {
                replica.on_message(message.clone());
            }
        }
    }
    decided
}

fn run_auth_mode(c: &mut Criterion, group_name: &str, auth_mode: AuthMode) {
    let quick = std::env::var_os("ZUGCHAIN_BENCH_QUICK").is_some();
    let requests = if quick { 64usize } else { 256 };
    let mut group = c.benchmark_group(group_name);
    group.sample_size(if quick { 5 } else { 20 });
    for batch in [1usize, 4, 16, 64] {
        group.throughput(Throughput::Elements(requests as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_batched(
                || fresh_group(batch, auth_mode),
                |mut replicas| {
                    let decided = order_stream(&mut replicas, requests);
                    assert_eq!(decided, N * requests);
                    decided
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_batch_sizes(c: &mut Criterion) {
    run_auth_mode(c, "pbft/batch_throughput", AuthMode::Sig);
    run_auth_mode(c, "pbft/batch_throughput_mac", AuthMode::MacWithSigFallback);
}

criterion_group!(benches, bench_batch_sizes);
criterion_main!(benches);
