//! Vote-communication scaling: orders a fixed stream of 256-byte
//! requests through groups of n = 4, 8, 16 and 32 replicas in both
//! communication modes. All-to-all is the textbook PBFT exchange —
//! every replica broadcasts its prepare and commit, O(n²) vote traffic
//! per slot. Collector mode routes both vote phases through the slot's
//! deterministic collector, which broadcasts one aggregated certificate
//! per phase — O(n) traffic — so the per-replica message count should
//! stay near-flat as n grows while all-to-all's climbs linearly.
//!
//! Besides the wall-clock `bench-result:` lines from the criterion
//! shim, each configuration prints one extra machine-readable line,
//!
//! ```text
//! bench-result: pbft/scale_msgs/<mode>/<n> msgs_per_replica=M sigs_verified_per_replica=S
//! ```
//!
//! with the per-replica totals over the whole stream, measured on an
//! untimed accounting run (`Send` counts 1, `Broadcast` counts n − 1).
//! The CI bench-smoke gate checks collector mode beats all-to-all on
//! messages per replica at n = 16.
//!
//! Set `ZUGCHAIN_BENCH_QUICK=1` for the CI smoke variant (shorter
//! stream, fewer samples).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use zugchain_crypto::Keystore;
use zugchain_machine::Effect;
use zugchain_pbft::{CommMode, Config, NodeId, ProposedRequest, Replica, ReplicaEvent};

fn fresh_group(n: usize, comm_mode: CommMode) -> Vec<Replica> {
    let config = Config::new(n).unwrap().with_comm_mode(comm_mode);
    let (pairs, keystore) = Keystore::generate(n, 7);
    pairs
        .into_iter()
        .enumerate()
        .map(|(id, key)| Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone()))
        .collect()
}

/// Proposes `requests` distinct requests on the primary and pumps the
/// group until quiet, delivering unicasts only to their destination.
/// `sent[i]` accumulates the messages replica `i` put on the wire
/// (`Send` = 1, `Broadcast` = n − 1). Returns the total decide count.
fn order_stream(replicas: &mut [Replica], requests: usize, sent: &mut [u64]) -> usize {
    let n = replicas.len();
    for tag in 0..requests {
        let mut payload = vec![0u8; 256];
        payload[..8].copy_from_slice(&(tag as u64).to_le_bytes());
        replicas[0].propose(ProposedRequest::application(payload, NodeId(0)));
    }
    let mut decided = 0usize;
    loop {
        let mut traffic = Vec::new();
        for (node, replica) in replicas.iter_mut().enumerate() {
            for effect in replica.drain_effects() {
                match effect {
                    Effect::Broadcast { message } => {
                        sent[node] += (n - 1) as u64;
                        traffic.push((None, message));
                    }
                    Effect::Send { to, message } => {
                        sent[node] += 1;
                        traffic.push((Some(to), message));
                    }
                    Effect::Output(ReplicaEvent::Decide { .. }) => decided += 1,
                    _ => {}
                }
            }
        }
        if traffic.is_empty() {
            break;
        }
        for (dest, message) in traffic {
            match dest {
                Some(to) => replicas[to.0 as usize].on_message(message),
                None => {
                    for replica in replicas.iter_mut() {
                        replica.on_message(message.clone());
                    }
                }
            }
        }
    }
    decided
}

fn bench_scale(c: &mut Criterion) {
    let quick = std::env::var_os("ZUGCHAIN_BENCH_QUICK").is_some();
    let requests = if quick { 16usize } else { 64 };
    let mut group = c.benchmark_group("pbft/scale");
    group.sample_size(if quick { 3 } else { 10 });
    let mut accounting: Vec<(String, u64, u64)> = Vec::new();
    for n in [4usize, 8, 16, 32] {
        for (comm_mode, label) in [
            (CommMode::AllToAll, "all-to-all"),
            (CommMode::Collector, "collector"),
        ] {
            group.throughput(Throughput::Elements(requests as u64));
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter_batched(
                    || fresh_group(n, comm_mode),
                    |mut replicas| {
                        let mut sent = vec![0u64; n];
                        let decided = order_stream(&mut replicas, requests, &mut sent);
                        assert_eq!(decided, n * requests);
                        decided
                    },
                    BatchSize::LargeInput,
                );
            });

            // Untimed accounting run: the message flow is deterministic,
            // so one pass gives exact per-replica counts.
            let mut replicas = fresh_group(n, comm_mode);
            let mut sent = vec![0u64; n];
            let decided = order_stream(&mut replicas, requests, &mut sent);
            assert_eq!(decided, n * requests);
            let fallbacks: u64 = replicas
                .iter()
                .map(|replica| replica.stats().collector_fallbacks)
                .sum();
            assert_eq!(fallbacks, 0, "the quiet path must never fall back");
            let msgs = sent.iter().sum::<u64>() / n as u64;
            let sigs = replicas
                .iter()
                .map(|replica| replica.stats().signatures_verified)
                .sum::<u64>()
                / n as u64;
            accounting.push((format!("pbft/scale_msgs/{label}/{n}"), msgs, sigs));
        }
    }
    group.finish();
    for (name, msgs, sigs) in accounting {
        println!("bench-result: {name} msgs_per_replica={msgs} sigs_verified_per_replica={sigs}");
    }
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
