//! Telemetry overhead on the consensus hot path: orders the same
//! request stream as `pbft_batch` (batch size 16, 4 replicas) with the
//! instrument points disabled (the default — every metric handle is an
//! inert `None`) and enabled (each replica publishing into a shared
//! registry). The acceptance gate is that the disabled path stays
//! within noise of the pre-instrumentation `pbft_batch` baseline; the
//! enabled delta is the true cost of the atomic counters.
//!
//! Set `ZUGCHAIN_BENCH_QUICK=1` for the CI smoke variant.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use zugchain_crypto::Keystore;
use zugchain_machine::Effect;
use zugchain_pbft::{Config, NodeId, ProposedRequest, Replica, ReplicaEvent};
use zugchain_telemetry::{Registry, Telemetry, DEFAULT_TRACE_CAPACITY};

const N: usize = 4;
const BATCH: usize = 16;

fn fresh_group(telemetry: Option<&[Telemetry]>) -> Vec<Replica> {
    let config = Config::new(N).unwrap().with_max_batch_size(BATCH);
    let (pairs, keystore) = Keystore::generate(N, 7);
    pairs
        .into_iter()
        .enumerate()
        .map(|(id, key)| {
            let mut replica =
                Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone());
            if let Some(handles) = telemetry {
                replica.set_telemetry(&handles[id]);
            }
            replica
        })
        .collect()
}

/// Same ordering loop as `pbft_batch`: propose on the primary, pump the
/// group until quiet, count per-request decides.
fn order_stream(replicas: &mut [Replica], requests: usize) -> usize {
    for tag in 0..requests {
        let mut payload = vec![0u8; 256];
        payload[..8].copy_from_slice(&(tag as u64).to_le_bytes());
        replicas[0].propose(ProposedRequest::application(payload, NodeId(0)));
    }
    let mut decided = 0usize;
    loop {
        let mut traffic = Vec::new();
        for replica in replicas.iter_mut() {
            for effect in replica.drain_effects() {
                match effect {
                    Effect::Broadcast { message } => traffic.push(message),
                    Effect::Output(ReplicaEvent::Decide { .. }) => decided += 1,
                    _ => {}
                }
            }
        }
        if traffic.is_empty() {
            break;
        }
        for message in traffic {
            for replica in replicas.iter_mut() {
                replica.on_message(message.clone());
            }
        }
    }
    decided
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let quick = std::env::var_os("ZUGCHAIN_BENCH_QUICK").is_some();
    let requests = if quick { 64usize } else { 256 };
    let mut group = c.benchmark_group("pbft/telemetry_overhead");
    group.sample_size(if quick { 5 } else { 20 });
    group.throughput(Throughput::Elements(requests as u64));

    group.bench_function("disabled", |b| {
        b.iter_batched(
            || fresh_group(None),
            |mut replicas| {
                let decided = order_stream(&mut replicas, requests);
                assert_eq!(decided, N * requests);
                decided
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.bench_function("enabled", |b| {
        b.iter_batched(
            || {
                let registry = Arc::new(Registry::new());
                let handles: Vec<Telemetry> = (0..N as u64)
                    .map(|id| Telemetry::new(id, Arc::clone(&registry), DEFAULT_TRACE_CAPACITY))
                    .collect();
                fresh_group(Some(&handles))
            },
            |mut replicas| {
                let decided = order_stream(&mut replicas, requests);
                assert_eq!(decided, N * requests);
                decided
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
