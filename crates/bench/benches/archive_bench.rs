//! Benchmarks the juridical archive's read and write paths: certified
//! segment ingestion (re-verification + indexing), point lookups,
//! indexed time-range scans, and audit-bundle build/verify — the
//! baselines recorded in `BENCH_archive.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zugchain_archive::{Archive, FleetArchive, IngestLock};
use zugchain_blockchain::{Block, BlockBuilder, LoggedRequest};
use zugchain_crypto::{KeyPair, Keystore};
use zugchain_export::CertifiedSegment;
use zugchain_mvb::PortAddress;
use zugchain_pbft::{Checkpoint, CheckpointProof, Message, NodeId};
use zugchain_signals::{Request, SignalValue, TrainEvent};
use zugchain_wire::TrainId;

const QUORUM: usize = 3;
const BLOCK_SIZE: usize = 10;

fn signal_payload(sn: u64) -> Vec<u8> {
    let time_ms = sn * 64;
    zugchain_wire::to_bytes(&Request {
        cycle: sn,
        time_ms,
        events: vec![TrainEvent {
            name: "v_actual".to_string(),
            port: PortAddress(0x42),
            cycle: sn,
            time_ms,
            value: SignalValue::U16((sn % 4_000) as u16),
        }],
    })
}

fn certify(pairs: &[KeyPair], sn: u64, head: &Block) -> CheckpointProof {
    let checkpoint = Checkpoint {
        sn,
        state_digest: head.hash(),
    };
    let message = zugchain_wire::to_bytes(&Message::Checkpoint(checkpoint));
    CheckpointProof {
        checkpoint,
        signatures: (0..QUORUM)
            .map(|id| (NodeId(id as u64), pairs[id].sign(&message)))
            .collect(),
    }
}

/// `n_segments` contiguous certified segments of `blocks_per_segment`
/// blocks (10 signal requests per block), chained off genesis.
fn certified_chain(
    pairs: &[KeyPair],
    n_segments: usize,
    blocks_per_segment: usize,
) -> Vec<CertifiedSegment> {
    certified_chain_for_train(TrainId::DEFAULT, pairs, n_segments, blocks_per_segment)
}

/// As [`certified_chain`], tagged with an origin train.
fn certified_chain_for_train(
    train: TrainId,
    pairs: &[KeyPair],
    n_segments: usize,
    blocks_per_segment: usize,
) -> Vec<CertifiedSegment> {
    let mut builder = BlockBuilder::new(BLOCK_SIZE);
    let mut base = Block::genesis();
    let mut segments = Vec::new();
    let mut sn = 0u64;
    for _ in 0..n_segments {
        let mut blocks = Vec::new();
        while blocks.len() < blocks_per_segment {
            sn += 1;
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: sn % 4,
                    payload: signal_payload(sn),
                },
                sn * 64,
            ) {
                blocks.push(block);
            }
        }
        let head = blocks.last().expect("nonempty").clone();
        segments.push(CertifiedSegment {
            train,
            base_height: base.height(),
            base_hash: base.hash(),
            blocks,
            proof: certify(pairs, sn, &head),
        });
        base = head;
    }
    segments
}

fn populated_archive(pairs: &[KeyPair], keystore: &Keystore, n_segments: usize) -> Archive {
    let mut archive = Archive::in_memory(keystore.clone(), QUORUM);
    for segment in certified_chain(pairs, n_segments, 10) {
        archive.ingest(&segment).expect("certified segment ingests");
    }
    archive
}

/// Full ingest path: certificate + chain re-verification, Merkle
/// commitment, and all three indexes.
fn bench_ingest(c: &mut Criterion) {
    let (pairs, keystore) = Keystore::generate(4, 7);
    let mut group = c.benchmark_group("archive/ingest");
    group.sample_size(10);
    for blocks_per_segment in [10usize, 100] {
        let segments = certified_chain(&pairs, 4, blocks_per_segment);
        let requests = segments
            .iter()
            .map(|s| s.blocks.len() * BLOCK_SIZE)
            .sum::<usize>() as u64;
        group.throughput(Throughput::Elements(requests));
        group.bench_with_input(
            BenchmarkId::from_parameter(blocks_per_segment),
            &segments,
            |b, segments| {
                b.iter(|| {
                    let mut archive = Archive::in_memory(keystore.clone(), QUORUM);
                    for segment in segments {
                        archive.ingest(segment).expect("ingests");
                    }
                    std::hint::black_box(archive.request_count())
                });
            },
        );
    }
    group.finish();
}

fn bench_point_lookup(c: &mut Criterion) {
    let (pairs, keystore) = Keystore::generate(4, 7);
    let archive = populated_archive(&pairs, &keystore, 10);
    let last_sn = archive.request_count() as u64;
    c.bench_function("archive/point_lookup_by_sn", |b| {
        let mut sn = 0;
        b.iter(|| {
            sn = sn % last_sn + 1;
            std::hint::black_box(archive.block_by_sn(sn).expect("archived"))
        });
    });
}

fn bench_time_range_scan(c: &mut Criterion) {
    let (pairs, keystore) = Keystore::generate(4, 7);
    let archive = populated_archive(&pairs, &keystore, 10);
    let span_ms = archive.request_count() as u64 * 64;
    let mut group = c.benchmark_group("archive/time_range");
    // A 10%-of-journey window, decoded into requests and reduced to the
    // analysis timeline.
    let (from, to) = (span_ms * 45 / 100, span_ms * 55 / 100);
    let window = archive.requests_in(from, to).len() as u64;
    group.throughput(Throughput::Elements(window));
    group.bench_function("scan_decoded", |b| {
        b.iter(|| std::hint::black_box(archive.requests_in(from, to).len()));
    });
    group.bench_function("timeline", |b| {
        b.iter(|| std::hint::black_box(archive.timeline(from, to).findings().len()));
    });
    group.finish();
}

fn bench_audit_bundle(c: &mut Criterion) {
    let (pairs, keystore) = Keystore::generate(4, 7);
    let archive = populated_archive(&pairs, &keystore, 10);
    let (head_height, _) = archive.head().expect("nonempty");
    let mid = head_height / 2;
    c.bench_function("archive/bundle_build", |b| {
        b.iter(|| std::hint::black_box(archive.audit_bundle(mid).expect("bundle")));
    });
    let bundle = archive.audit_bundle(mid).expect("bundle");
    c.bench_function("archive/bundle_verify", |b| {
        b.iter(|| {
            std::hint::black_box(&bundle)
                .verify(&keystore, QUORUM)
                .expect("verifies")
        });
    });
}

/// Sharded fleet ingest vs the forced single-lock baseline: one thread
/// per train, each draining its train's pre-certified segments into a
/// shared [`FleetArchive`]. Under `per_shard` the only contention is the
/// brief cross-index update; `global` serializes every ingest behind one
/// mutex, which is what a fleet-unaware single archive would do.
fn bench_fleet_ingest(c: &mut Criterion) {
    let (pairs, keystore) = Keystore::generate(4, 7);
    let mut group = c.benchmark_group("archive/fleet_ingest");
    group.sample_size(10);
    for n_trains in [4usize, 16, 32] {
        let per_train: Vec<(TrainId, Vec<CertifiedSegment>)> = (0..n_trains)
            .map(|i| {
                let train = TrainId(i as u64 + 1);
                (train, certified_chain_for_train(train, &pairs, 4, 10))
            })
            .collect();
        let requests = per_train
            .iter()
            .flat_map(|(_, segments)| segments.iter())
            .map(|s| s.blocks.len() * BLOCK_SIZE)
            .sum::<usize>() as u64;
        group.throughput(Throughput::Elements(requests));
        for (mode, name) in [
            (IngestLock::PerShard, "per_shard"),
            (IngestLock::Global, "global"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, n_trains),
                &per_train,
                |b, per_train| {
                    b.iter(|| {
                        let fleet = FleetArchive::in_memory(QUORUM).with_lock_mode(mode);
                        for (train, _) in per_train {
                            fleet
                                .register_train(*train, keystore.clone())
                                .expect("fresh registration");
                        }
                        std::thread::scope(|scope| {
                            for (_, segments) in per_train {
                                let fleet = fleet.clone();
                                scope.spawn(move || {
                                    for segment in segments {
                                        fleet.ingest(segment).expect("certified segment ingests");
                                    }
                                });
                            }
                        });
                        std::hint::black_box(fleet.request_count())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_point_lookup,
    bench_time_range_scan,
    bench_audit_bundle,
    bench_fleet_ingest
);
criterion_main!(benches);
