//! Microbenchmarks of the canonical wire codec: the cost every message
//! and block pays on its way in or out of a node.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zugchain_mvb::PortAddress;
use zugchain_signals::{Request, SignalValue, TrainEvent};

fn sample_request(events: usize) -> Request {
    Request::new(
        7,
        448,
        (0..events)
            .map(|i| TrainEvent {
                name: format!("signal_{i}"),
                port: PortAddress(i as u16),
                cycle: 7,
                time_ms: 448,
                value: SignalValue::U16(i as u16 * 3),
            })
            .collect(),
    )
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/encode_request");
    for events in [1usize, 14, 64] {
        let request = sample_request(events);
        let size = zugchain_wire::to_bytes(&request).len();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(events), &request, |b, r| {
            b.iter(|| zugchain_wire::to_bytes(std::hint::black_box(r)));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/decode_request");
    for events in [1usize, 14, 64] {
        let bytes = zugchain_wire::to_bytes(&sample_request(events));
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(events), &bytes, |b, bytes| {
            b.iter(|| zugchain_wire::from_bytes::<Request>(std::hint::black_box(bytes)).unwrap());
        });
    }
    group.finish();
}

fn bench_varint(c: &mut Criterion) {
    c.bench_function("wire/varint_round_trip", |b| {
        b.iter(|| {
            let mut w = zugchain_wire::Writer::new();
            for value in [0u64, 127, 300, 1 << 20, u64::MAX] {
                w.write_varint(std::hint::black_box(value));
            }
            let bytes = w.into_bytes();
            let mut r = zugchain_wire::Reader::new(&bytes);
            let mut sum = 0u64;
            for _ in 0..5 {
                sum = sum.wrapping_add(r.read_varint().unwrap());
            }
            sum
        });
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_varint);
criterion_main!(benches);
