//! Benchmarks of the ZugChain filtering path: the `inLog` sliding-window
//! check (Alg. 1) and the JRU on-change signal filter — the per-request
//! overhead the communication layer adds on top of PBFT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zugchain::DedupLog;
use zugchain_crypto::Digest;
use zugchain_mvb::PortAddress;
use zugchain_signals::{ChangeFilter, SignalValue, TrainEvent};

fn bench_dedup_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("filtering/inlog_lookup");
    for window_entries in [100usize, 10_000, 100_000] {
        let mut log = DedupLog::new(8);
        for i in 0..window_entries {
            log.record(Digest::of(&(i as u64).to_le_bytes()), i as u64);
        }
        let hit = Digest::of(&((window_entries / 2) as u64).to_le_bytes());
        let miss = Digest::of(b"not present");
        group.bench_with_input(
            BenchmarkId::from_parameter(window_entries),
            &(hit, miss),
            |b, (hit, miss)| {
                b.iter(|| {
                    log.contains(std::hint::black_box(hit)) as u8
                        + log.contains(std::hint::black_box(miss)) as u8
                });
            },
        );
    }
    group.finish();
}

fn bench_dedup_window_slide(c: &mut Criterion) {
    c.bench_function("filtering/checkpoint_slide_1k_entries", |b| {
        b.iter_batched(
            || {
                let mut log = DedupLog::new(2);
                for i in 0..3_000u64 {
                    log.record(Digest::of(&i.to_le_bytes()), i);
                    if i % 1_000 == 999 {
                        log.on_checkpoint();
                    }
                }
                log
            },
            |mut log| {
                log.on_checkpoint();
                log
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_change_filter(c: &mut Criterion) {
    let events: Vec<TrainEvent> = (0..14u16)
        .map(|port| TrainEvent {
            name: format!("sig_{port}"),
            port: PortAddress(port),
            cycle: 0,
            time_ms: 0,
            value: SignalValue::U16(port),
        })
        .collect();
    c.bench_function("filtering/on_change_14_signals", |b| {
        let mut filter = ChangeFilter::new();
        let mut toggle = 0u16;
        b.iter(|| {
            toggle = toggle.wrapping_add(1);
            let mut admitted = 0;
            for event in &events {
                // Half the signals change each round.
                let mut event = event.clone();
                if event.port.0 % 2 == 0 {
                    event.value = SignalValue::U16(toggle);
                }
                admitted += filter.admit(std::hint::black_box(&event)) as u32;
            }
            admitted
        });
    });
}

criterion_group!(
    benches,
    bench_dedup_lookup,
    bench_dedup_window_slide,
    bench_change_filter
);
criterion_main!(benches);
