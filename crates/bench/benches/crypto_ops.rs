//! Microbenchmarks of the cryptographic primitives that dominate
//! ZugChain's CPU budget: Ed25519 signing/verification and SHA-256
//! hashing (the constants behind `CostModel`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zugchain_crypto::{Digest, KeyPair};

fn bench_sign(c: &mut Criterion) {
    let key = KeyPair::from_seed(1);
    let message = vec![0xAB; 1024];
    c.bench_function("crypto/ed25519_sign_1k", |b| {
        b.iter(|| key.sign(std::hint::black_box(&message)));
    });
}

fn bench_verify(c: &mut Criterion) {
    let key = KeyPair::from_seed(1);
    let message = vec![0xAB; 1024];
    let signature = key.sign(&message);
    let public = key.public_key();
    c.bench_function("crypto/ed25519_verify_1k", |b| {
        b.iter(|| {
            public
                .verify(std::hint::black_box(&message), &signature)
                .unwrap()
        });
    });
}

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/sha256");
    for size in [32usize, 1024, 8192, 65536] {
        let data = vec![0x5A; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Digest::of(std::hint::black_box(data)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sign, bench_verify, bench_hash);
criterion_main!(benches);
