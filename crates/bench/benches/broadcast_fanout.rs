//! Broadcast fan-out cost: per-peer re-encoding (what the TCP transport
//! did before frames) versus the serialize-once [`Frame`], at cluster
//! sizes 4, 8 and 16. The frame encodes the message exactly once per
//! broadcast and hands every peer the same reference-counted bytes, so
//! its cost should stay flat while per-peer encoding grows linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zugchain::{LayerMessage, NodeMessage, SignedRequest};
use zugchain_crypto::Keystore;
use zugchain_machine::Frame;
use zugchain_pbft::{NodeId, ProposedRequest};

/// A representative broadcast: a signed 1 KiB consolidated bus request.
fn broadcast_message() -> NodeMessage {
    let (pairs, _) = Keystore::generate(4, 4242);
    let request = ProposedRequest::application(vec![0xAB; 1024], NodeId(0));
    NodeMessage::Layer(LayerMessage::BroadcastRequest(SignedRequest::sign(
        request, &pairs[0],
    )))
}

fn bench_fanout(c: &mut Criterion) {
    let message = broadcast_message();
    let wire_len = zugchain_wire::to_bytes(&message).len() as u64;

    let mut group = c.benchmark_group("broadcast/per_peer_encode");
    for n in [4usize, 8, 16] {
        group.throughput(Throughput::Bytes(wire_len * (n as u64 - 1)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                // The pre-frame transport: encode the same message again
                // for every peer.
                let mut sent = 0usize;
                for _ in 0..n - 1 {
                    sent += zugchain_wire::to_bytes(std::hint::black_box(&message)).len();
                }
                sent
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("broadcast/serialize_once");
    for n in [4usize, 8, 16] {
        group.throughput(Throughput::Bytes(wire_len * (n as u64 - 1)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                // The frame path: one encode per broadcast, every peer
                // writes the same shared bytes.
                let frame = Frame::new(std::hint::black_box(message.clone()));
                let mut sent = 0usize;
                for _ in 0..n - 1 {
                    sent += frame.bytes().len();
                }
                assert_eq!(frame.encode_count(), 1);
                sent
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
