//! Benchmarks block creation and durable disk persistence — the §V-B JRU
//! requirement check measures ~5 ms per block write on the testbed; on a
//! host SSD this is far faster, but the requirement (≪ 500 ms) is what
//! matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zugchain_blockchain::{Block, BlockBuilder, DiskStore, LoggedRequest};

fn block_with(requests: usize, payload: usize) -> Block {
    let mut builder = BlockBuilder::new(requests);
    let mut block = None;
    for sn in 1..=requests as u64 {
        block = builder.push(
            LoggedRequest {
                sn,
                origin: sn % 4,
                payload: vec![0xEF; payload],
            },
            sn * 64,
        );
    }
    block.expect("builder completes at block size")
}

fn bench_block_creation(c: &mut Criterion) {
    let mut group = c.benchmark_group("blockchain/create_block_of_10");
    for payload in [128usize, 1024, 8192] {
        group.throughput(Throughput::Bytes((payload * 10) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(payload),
            &payload,
            |b, &payload| {
                b.iter(|| block_with(10, std::hint::black_box(payload)));
            },
        );
    }
    group.finish();
}

fn bench_disk_write(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("zugchain-bench-{}", std::process::id()));
    let store = DiskStore::open(&dir).expect("temp dir");
    let mut group = c.benchmark_group("blockchain/disk_write_block");
    group.sample_size(30);
    for payload in [1024usize, 8192] {
        let block = block_with(10, payload);
        group.throughput(Throughput::Bytes(block.encoded_size() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(payload), &block, |b, block| {
            b.iter(|| store.write_block(std::hint::black_box(block)).unwrap());
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_chain_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("blockchain/verify_chain");
    for n_blocks in [10usize, 100] {
        let mut builder = BlockBuilder::new(10);
        let mut blocks = vec![Block::genesis()];
        for sn in 1..=(n_blocks * 10) as u64 {
            if let Some(block) = builder.push(
                LoggedRequest {
                    sn,
                    origin: 0,
                    payload: vec![0xAA; 1024],
                },
                sn * 64,
            ) {
                blocks.push(block);
            }
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(n_blocks),
            &blocks,
            |b, blocks| {
                b.iter(|| {
                    zugchain_blockchain::verify_chain(std::hint::black_box(blocks), None).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_block_creation,
    bench_disk_write,
    bench_chain_verify
);
criterion_main!(benches);
