//! Causal-tracing overhead on the consensus hot path: orders the same
//! request stream as `pbft/scale/all-to-all/4` (64 distinct 256-byte
//! requests, 4 replicas, all-to-all votes) with span emission disabled
//! (the default — every handle is an inert `None`) and enabled (each
//! replica publishing spans into a cluster-shared [`TraceStore`]).
//!
//! The acceptance gate is that the **disabled** path stays within 2% of
//! the recorded pre-tracing `pbft/scale/all-to-all/4` baseline in
//! `BENCH_pbft.json` — instrumenting the pipeline must cost nothing
//! when tracing is off. The enabled delta is the true cost of deriving
//! ids and recording spans.
//!
//! Set `ZUGCHAIN_BENCH_QUICK=1` for the CI smoke variant.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use zugchain_crypto::Keystore;
use zugchain_machine::Effect;
use zugchain_pbft::{Config, NodeId, ProposedRequest, Replica, ReplicaEvent};
use zugchain_telemetry::{Registry, Telemetry, TraceStore, DEFAULT_TRACE_CAPACITY};

const N: usize = 4;

fn fresh_group(telemetry: Option<&[Telemetry]>) -> Vec<Replica> {
    let config = Config::new(N).unwrap();
    let (pairs, keystore) = Keystore::generate(N, 7);
    pairs
        .into_iter()
        .enumerate()
        .map(|(id, key)| {
            let mut replica =
                Replica::new(NodeId(id as u64), config.clone(), key, keystore.clone());
            if let Some(handles) = telemetry {
                replica.set_telemetry(&handles[id]);
            }
            replica
        })
        .collect()
}

fn traced_handles() -> (Vec<Telemetry>, Arc<TraceStore>) {
    let registry = Arc::new(Registry::new());
    let store = Arc::new(TraceStore::new());
    let handles = (0..N as u64)
        .map(|id| {
            Telemetry::new_with_store(
                id,
                Arc::clone(&registry),
                DEFAULT_TRACE_CAPACITY,
                Some(Arc::clone(&store)),
            )
        })
        .collect();
    (handles, store)
}

/// Same ordering loop as `pbft_scale`: propose the stream on the
/// primary, pump the group until quiet, count per-request decides.
fn order_stream(replicas: &mut [Replica], requests: usize) -> usize {
    for tag in 0..requests {
        let mut payload = vec![0u8; 256];
        payload[..8].copy_from_slice(&(tag as u64).to_le_bytes());
        replicas[0].propose(ProposedRequest::application(payload, NodeId(0)));
    }
    let mut decided = 0usize;
    loop {
        let mut traffic = Vec::new();
        for replica in replicas.iter_mut() {
            for effect in replica.drain_effects() {
                match effect {
                    Effect::Broadcast { message } => traffic.push(message),
                    Effect::Output(ReplicaEvent::Decide { .. }) => decided += 1,
                    _ => {}
                }
            }
        }
        if traffic.is_empty() {
            break;
        }
        for message in traffic {
            for replica in replicas.iter_mut() {
                replica.on_message(message.clone());
            }
        }
    }
    decided
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let quick = std::env::var_os("ZUGCHAIN_BENCH_QUICK").is_some();
    let requests = if quick { 16usize } else { 64 };
    let mut group = c.benchmark_group("pbft/tracing_overhead");
    group.sample_size(if quick { 3 } else { 10 });
    group.throughput(Throughput::Elements(requests as u64));

    group.bench_function("disabled", |b| {
        b.iter_batched(
            || fresh_group(None),
            |mut replicas| {
                let decided = order_stream(&mut replicas, requests);
                assert_eq!(decided, N * requests);
                decided
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.bench_function("enabled", |b| {
        b.iter_batched(
            || {
                let (handles, store) = traced_handles();
                (fresh_group(Some(&handles)), store)
            },
            |(mut replicas, store)| {
                let decided = order_stream(&mut replicas, requests);
                assert_eq!(decided, N * requests);
                store.trace_count()
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.finish();

    // Untimed sanity pass: the enabled path must actually trace — one
    // joined trace per request, spans from every replica.
    let (handles, store) = traced_handles();
    let mut replicas = fresh_group(Some(&handles));
    let decided = order_stream(&mut replicas, requests);
    assert_eq!(decided, N * requests);
    assert_eq!(
        store.trace_count(),
        requests,
        "every ordered request must leave a joined trace"
    );
    println!(
        "bench-result: pbft/tracing_overhead_traces/{requests} traces={} spans_per_trace_min={}",
        store.trace_count(),
        store
            .trace_ids()
            .iter()
            .map(|&id| store.assemble(id).len())
            .min()
            .unwrap_or(0)
    );
}

criterion_group!(benches, bench_tracing_overhead);
criterion_main!(benches);
